#!/usr/bin/env python
"""Regenerate ``docs/cli.md`` from the live ``argparse`` definitions.

Usage (from the repository root)::

    PYTHONPATH=src python docs/generate_cli.py

``tests/test_docs.py`` and the CI docs job compare the committed file
against a fresh rendering, so run this after any change to
``src/repro/cli.py``'s parsers.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    """Write the generated reference next to this script."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import render_cli_reference

    target = REPO_ROOT / "docs" / "cli.md"
    target.write_text(render_cli_reference())
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
