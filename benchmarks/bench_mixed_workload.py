"""Mixed ingest/query (HTAP) workload — query p99 under concurrent refresh.

The serving layers promise that ingest never blocks reads: a
:meth:`~repro.service.DiversityService.refresh` builds the next epoch's
index off to the side and swaps it in atomically, while queries in
flight keep their epoch's snapshot.  This benchmark prices that promise.
For each dtype (float64, and the float32 fast path cast from the same
index) it runs :func:`repro.service.measure_mixed_workload`:

* a **query-only** open-loop pass — requests arrive at a fixed rate on a
  warm service and the scheduled-send-to-answer latency is sampled;
* a **mixed** pass — the identical request schedule, while a background
  refresher ingests a deterministic stream of new points at a fixed rate
  through the epoch'd plane.

Gates:

* **epoch purity** (unconditional): zero requests whose answers span
  more than one epoch — every batch sees one consistent index;
* **verify** (unconditional): the float32 mixed pass runs with the
  float64 shadow verify on every sampled solve; zero value and zero
  index mismatches while epochs churn underneath;
* **tail latency** (>= 4-cpu runners): mixed-pass query p99 <=
  ``REPRO_MIXED_P99_FACTOR`` (default 5.0) x the query-only p99, for
  both dtypes.  On smaller machines the refresher and the query pool
  timeshare one core, so the factor is recorded without the gate.

Arrival rate via ``REPRO_MIXED_RATE_QPS`` (default 40 — comfortably
under-capacity on the CI runners, so the baseline tail is queueing-free
and the factor isolates refresh interference).  Machine-readable results
land in ``benchmarks/results/BENCH_mixed_workload.json`` with both dtype
blocks head-to-head.
"""

from __future__ import annotations

import os

import numpy as np
from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.metricspace.points import PointSet
from repro.service import build_coreset_index, measure_mixed_workload

K_MAX = 8
NUM_REQUESTS = 48
QUERIES_PER_REQUEST = 2
REFRESH_HZ = 2.0
INGEST_BATCH = 400
GATED_CPUS = 4


def _available_cpus() -> int:
    """CPUs this process may actually schedule on (cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _refresh_source(ingest_round: int) -> PointSet:
    """Deterministic ingest batch per round (identical across dtypes)."""
    rng = np.random.default_rng(7_000 + ingest_round)
    return PointSet(rng.normal(size=(INGEST_BATCH, 3)))


def _measure():
    n = int(os.environ.get("REPRO_SERVICE_N", "20000"))
    rate_qps = float(os.environ.get("REPRO_MIXED_RATE_QPS", "40"))
    points = sphere_shell(n, K_MAX, dim=3, seed=23)
    index64 = build_coreset_index(points, K_MAX, parallelism=4, seed=0)
    index32 = index64.astype("float32")
    reports = {}
    for label, index in (("float64", index64), ("float32", index32)):
        reports[label] = measure_mixed_workload(
            index, _refresh_source,
            rate_qps=rate_qps,
            num_requests=NUM_REQUESTS,
            queries_per_request=QUERIES_PER_REQUEST,
            refresh_hz=REFRESH_HZ,
            verify_dtype=(label == "float32"),
            seed=0,
        )
    return n, rate_qps, reports


def test_mixed_workload(benchmark):
    n, rate_qps, reports = run_once(benchmark, _measure)
    emit("mixed_workload", format_table(
        ["dtype / pass", "p99 ms", "p99 factor"],
        [row
         for label, report in reports.items()
         for row in (
             [f"{label} query-only",
              f"{report.query_only_latency['p99_ms']:.2f}", "1.00x"],
             [f"{label} mixed (+{report.refreshes_completed} refreshes)",
              f"{report.mixed_latency['p99_ms']:.2f}",
              f"{report.p99_factor:.2f}x"])],
        title=f"Mixed ingest/query workload (n={n}, {rate_qps:.0f} req/s, "
              f"{NUM_REQUESTS}x{QUERIES_PER_REQUEST} queries, "
              f"refresh {REFRESH_HZ:.0f} Hz, {_available_cpus()} cpu)",
    ))
    emit_json("mixed_workload", {
        "n": n,
        "rate_qps": rate_qps,
        "cpu_count": _available_cpus(),
        "float64": reports["float64"].as_dict(),
        "float32": reports["float32"].as_dict(),
    })
    factor_bound = float(os.environ.get("REPRO_MIXED_P99_FACTOR", "5.0"))
    for label, report in reports.items():
        # Gate 1 (unconditional): every request's answers came from one
        # epoch — refresh never leaks a half-swapped index into a batch.
        assert report.epochs_mixed == 0, (
            f"{label}: {report.epochs_mixed} requests mixed epochs")
        # Gate 2 (unconditional): ingest actually happened during the
        # mixed pass, or the factor gates nothing.
        assert report.refreshes_completed >= 1, (
            f"{label}: refresher completed no ingest rounds")
        # Gate 3 (multi-core only): refresh interference is bounded.
        if _available_cpus() >= GATED_CPUS:
            assert report.p99_factor <= factor_bound, (
                f"{label}: mixed p99 {report.p99_factor:.2f}x query-only "
                f"(gate: <= {factor_bound:.2f}x on {_available_cpus()} "
                f"schedulable cpus)")
    # Gate 4 (unconditional): the float32 mixed pass was float64-shadow
    # verified across epoch churn — zero mismatches.
    verify = reports["float32"].verify
    assert verify["enabled"] and verify["checks"] > 0, (
        "float32 mixed pass must run the float64 shadow verify")
    assert verify["value_mismatches"] == 0, (
        f"{verify['value_mismatches']} float64-verify value mismatches")
    assert verify["index_mismatches"] == 0, (
        f"{verify['index_mismatches']} float64-verify index mismatches")
