"""Query planner benchmark — predicted-vs-measured error and auto speedup.

Calibrates the cost model on this machine (``repro calibrate``'s
:func:`repro.service.run_calibration`), then replays one mixed workload
— solve-heavy large batches on the biggest ladder rungs interleaved with
single-query requests — twice over the same prebuilt index: once with
today's static routing (``plan="static"``, serial default) and once with
the cost-model planner choosing the executor per batch
(``plan="auto"``).  Matrices and the process pool are warmed before
timing, so the replay prices dispatch and solve work, not cold builds.

Gates:

* **bit-identity** (unconditional): the auto replay's answers — indices
  and objective values — equal the static replay's, query for query.
  The planner moves work, never results.
* **prediction error** (unconditional): the planner's running mean
  predicted-vs-measured relative error stays <=
  ``REPRO_PLANNER_MAX_REL_ERROR`` (default 0.5) across the replay —
  the same ``stats()["planner"]["mean_rel_error"]`` metric a serving
  daemon exports.
* **speedup** (>= 4-cpu runners): auto throughput >=
  ``REPRO_PLANNER_MIN_SPEEDUP`` (default 1.1) x static throughput.  On
  smaller machines the process backend has no cores to win with, so the
  ratio is recorded without the gate.

Machine-readable results land in
``benchmarks/results/BENCH_planner.json``: both replays' qps, the
calibrated model, and the planner's per-batch
predicted-vs-measured sample log.
"""

from __future__ import annotations

import os
import time

from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.service import (
    CostModel,
    DiversityService,
    Query,
    QueryPlanner,
    build_coreset_index,
    run_calibration,
)

K_MAX = 32
WORKERS = 4
GATED_CPUS = 4
#: Solve-heavy batches: the three most expensive sequential solvers on
#: their mid-ladder gmm-ext rung (k' = 64; a few hundred ms per solve)
#: — enough work for the process backend to amortize its dispatch.
LARGE_OBJECTIVES = ("remote-star", "remote-clique", "remote-bipartition")
LARGE_K_RANGE = range(9, 13)
LARGE_BATCHES = 2
SMALL_QUERIES = 12


def _available_cpus() -> int:
    """CPUs this process may actually schedule on (cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _workload() -> list[list[Query]]:
    """The replayed batch sequence — identical for both modes."""
    large = [Query(objective, k)
             for objective in LARGE_OBJECTIVES
             for k in LARGE_K_RANGE]
    batches: list[list[Query]] = [large] * LARGE_BATCHES
    batches += [[Query("remote-edge", 4 + i % 6)]
                for i in range(SMALL_QUERIES)]
    return batches


def _replay(index, *, plan: str, planner=None):
    """Run the workload once; returns (results, wall, planner stats)."""
    with DiversityService(index, cache_size=512, plan=plan,
                          planner=planner,
                          executor_workers=WORKERS) as service:
        for rung in index.all_rungs():
            service._matrix_for(service._matrices, 0, rung)
        service.warm_executor("process", WORKERS)
        results = []
        started = time.perf_counter()
        for batch in _workload():
            results.extend(service.query_batch(batch))
            # Fresh result-cache per batch: every replayed batch pays
            # its solves, in both modes alike.
            service.cache = service.cache.successor()
        wall = time.perf_counter() - started
        stats = service.stats()["planner"]
        samples = service._planner.samples()
    return results, wall, stats, samples


def _measure():
    n = int(os.environ.get("REPRO_SERVICE_N", "20000"))
    points = sphere_shell(n, K_MAX, dim=3, seed=29)
    index = build_coreset_index(points, K_MAX, parallelism=4, seed=0)
    calibration = run_calibration(workers=WORKERS)
    auto_planner = QueryPlanner(CostModel.from_payload(calibration))
    static_results, static_wall, _, _ = _replay(index, plan="static")
    auto_results, auto_wall, planner_stats, samples = _replay(
        index, plan="auto", planner=auto_planner)
    return {
        "n": n,
        "calibration": calibration,
        "static": (static_results, static_wall),
        "auto": (auto_results, auto_wall),
        "planner": planner_stats,
        "samples": samples,
    }


def test_planner(benchmark):
    measured = run_once(benchmark, _measure)
    static_results, static_wall = measured["static"]
    auto_results, auto_wall = measured["auto"]
    planner = measured["planner"]
    queries = sum(len(batch) for batch in _workload())
    static_qps = queries / static_wall
    auto_qps = queries / auto_wall
    speedup = auto_qps / static_qps
    cpus = _available_cpus()

    emit("planner", format_table(
        ["mode", "wall s", "qps", "plans"],
        [["static", f"{static_wall:.2f}", f"{static_qps:.1f}", "serial"],
         ["auto", f"{auto_wall:.2f}", f"{auto_qps:.1f}",
          ", ".join(f"{name} x{count}"
                    for name, count in planner["plans"].items() if count)]],
        title=f"Query planner replay (n={measured['n']}, {queries} queries "
              f"in {LARGE_BATCHES + SMALL_QUERIES} batches, {cpus} cpu; "
              f"auto {speedup:.2f}x static, "
              f"mean rel error {planner['mean_rel_error']:.2f})",
    ))
    emit_json("planner", {
        "n": measured["n"],
        "cpu_count": cpus,
        "queries": queries,
        "static_qps": static_qps,
        "auto_qps": auto_qps,
        "speedup": speedup,
        "planner": planner,
        "calibration": measured["calibration"],
        "samples": measured["samples"],
    })

    # Gate 1 (unconditional): the planner never changes answers.
    assert len(static_results) == len(auto_results)
    for expected, actual in zip(static_results, auto_results):
        assert list(expected.indices) == list(actual.indices), (
            "auto selection differs from static for "
            f"({expected.objective}, k={expected.k})")
        assert expected.value == actual.value

    # Gate 2 (unconditional): predictions track measurements.
    max_rel_error = float(
        os.environ.get("REPRO_PLANNER_MAX_REL_ERROR", "0.5"))
    assert planner["planned"] == LARGE_BATCHES + SMALL_QUERIES
    assert planner["mean_rel_error"] is not None
    assert planner["mean_rel_error"] <= max_rel_error, (
        f"planner mean rel error {planner['mean_rel_error']:.3f} "
        f"(gate: <= {max_rel_error})")

    # Gate 3 (multi-core only): planning pays for itself on the mixed
    # workload.  One- or two-core runners have nothing to win with.
    min_speedup = float(os.environ.get("REPRO_PLANNER_MIN_SPEEDUP", "1.1"))
    if cpus >= GATED_CPUS:
        assert speedup >= min_speedup, (
            f"auto replay {speedup:.2f}x static "
            f"(gate: >= {min_speedup:.2f}x on {cpus} schedulable cpus)")
