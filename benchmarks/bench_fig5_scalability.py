"""Figure 5 — scalability: wall time vs processors and dataset size.

Paper setup: sphere-shell datasets of 100M - 1.6B points in R^3; time of
the 2-round MR algorithm versus number of processors (1 processor runs the
streaming algorithm instead, with k' = 2048 to equalize final core-set
size).  Findings: superlinear scaling in p (each reducer does
O(n s/(k p^2)) work), linear scaling in n, and MR beats streaming even at
small p.

Scaled reproduction: 100k - 400k points, p in {1, 2, 4} with the process
executor (real parallelism).  We assert time decreases with p, grows
roughly linearly in n, and record the per-reducer work trend.  Absolute
speedups are hardware- and IPC-bound at this scale, so only the ordering
is asserted.
"""

from __future__ import annotations

import time

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream

K = 16
K_PRIME = 64
SIZES = (100_000, 200_000, 400_000)
PROCESSORS = (1, 2, 4)


def _time_configuration(points, processors: int) -> float:
    if processors == 1:
        algo = StreamingDiversityMaximizer(k=K, k_prime=K_PRIME,
                                           objective="remote-edge")
        start = time.perf_counter()
        algo.run(ArrayStream(points.points))
        return time.perf_counter() - start
    algo = MRDiversityMaximizer(k=K, k_prime=K_PRIME, objective="remote-edge",
                                parallelism=processors, seed=0,
                                executor="process", partition_strategy="chunk")
    start = time.perf_counter()
    algo.run(points)
    return time.perf_counter() - start


def _sweep():
    rows = []
    times = {}
    for n in SIZES:
        points = sphere_shell(n, K, dim=3, seed=n)
        for processors in PROCESSORS:
            # Best of two runs: process start-up jitter dominates at this
            # scale, and the minimum is the standard scalability statistic.
            seconds = min(_time_configuration(points, processors)
                          for _ in range(2))
            times[(n, processors)] = seconds
            rows.append([n, processors, round(seconds, 3)])
    return rows, times


def test_fig5_scalability(benchmark):
    rows, times = run_once(benchmark, _sweep)
    emit("fig5_scalability", format_table(
        ["n", "processors", "time (s)"], rows,
        title="Figure 5 (scaled): wall time vs processors and dataset size",
    ))
    n = SIZES[-1]
    # Shape 1: MR (any p >= 2) beats the 1-processor streaming run by a
    # wide margin — the paper's headline ordering.
    assert times[(n, 2)] < 0.5 * times[(n, 1)]
    # Shape 2: p=4 is not worse than p=2 beyond IPC noise (the superlinear
    # regime needs the paper's 10^8-point partitions; here per-reducer work
    # is tens of milliseconds and process start-up dominates).
    assert times[(n, 4)] < times[(n, 2)] * 1.35
    # Shape 3: at fixed processors, time grows with n (roughly linearly).
    for processors in PROCESSORS:
        series = [times[(n, processors)] for n in SIZES]
        assert series[-1] > series[0]
