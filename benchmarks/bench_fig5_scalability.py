"""Figure 5 — scalability: wall time vs processors and dataset size.

Paper setup: sphere-shell datasets of 100M - 1.6B points in R^3; time of
the 2-round MR algorithm versus number of processors, with the *final
core-set size equalized across configurations* (their 1-processor run uses
k' = 2048 for the same reason).  Findings: superlinear scaling in p (each
reducer does O(n s/(k p^2)) work because both its partition and its kernel
budget shrink with p), linear scaling in n, and MR beats the streaming
algorithm even at small p.

Scaled reproduction: 100k - 400k points, p in {1, 2, 4}, all through the
process executor with the persistent worker pool and zero-copy
shared-memory partitions.  The per-partition kernel budget is
``TOTAL_KERNEL / p``, so the aggregated core-set the final round solves on
has the same size for every p — the paper's equalization — and total
round-1 work shrinks as ``n * TOTAL_KERNEL / p``.  We assert wall time
*strictly decreasing* in p at every dataset size, roughly-linear growth in
n, and the classic MR-vs-streaming ordering against the point-wise
streaming baseline.  Results (plus the kernel-layer tiling in effect) are
emitted machine-readably to ``BENCH_fig5_scalability.json`` for the CI
trajectory.

Environment knobs (for CI-sized runs):

* ``REPRO_FIG5_SIZES`` — comma-separated dataset sizes (default
  ``100000,200000,400000``).
* ``REPRO_FIG5_KERNEL`` — total kernel budget ``s`` (default 256).
"""

from __future__ import annotations

import os
import time

from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream
from repro.tuning import recommend_tile_rows

K = 16
TOTAL_KERNEL = int(os.environ.get("REPRO_FIG5_KERNEL", "256"))
SIZES = tuple(
    int(raw) for raw in
    os.environ.get("REPRO_FIG5_SIZES", "100000,200000,400000").split(",")
)
PROCESSORS = (1, 2, 4)
STREAM_BATCH = 4096


def _time_mapreduce(points, processors: int) -> float:
    """Best-of-two wall time of the 2-round MR run at *processors*.

    The maximizer (hence the worker pool and its warm-up cost) is shared
    by both repetitions: the minimum measures the steady-state round time,
    which is the paper's scalability statistic.
    """
    with MRDiversityMaximizer(
            k=K, k_prime=TOTAL_KERNEL // processors, objective="remote-edge",
            parallelism=processors, seed=0, executor="process",
            partition_strategy="chunk") as algo:
        times = []
        for _ in range(2):
            start = time.perf_counter()
            algo.run(points)
            times.append(time.perf_counter() - start)
    return min(times)


def _time_streaming(points, batch_size: int | None) -> float:
    algo = StreamingDiversityMaximizer(k=K, k_prime=TOTAL_KERNEL,
                                       objective="remote-edge",
                                       batch_size=batch_size)
    start = time.perf_counter()
    algo.run(ArrayStream(points.points))
    return time.perf_counter() - start


def _sweep():
    rows = []
    times: dict[tuple[int, int], float] = {}
    stream_times: dict[tuple[int, str], float] = {}
    for n in SIZES:
        points = sphere_shell(n, K, dim=3, seed=n)
        for processors in PROCESSORS:
            seconds = _time_mapreduce(points, processors)
            times[(n, processors)] = seconds
            rows.append([n, processors, TOTAL_KERNEL // processors,
                         round(seconds, 3)])
        stream_times[(n, "pointwise")] = _time_streaming(points, None)
        stream_times[(n, "batched")] = _time_streaming(points, STREAM_BATCH)
    return rows, times, stream_times


def test_fig5_scalability(benchmark):
    rows, times, stream_times = run_once(benchmark, _sweep)
    emit("fig5_scalability", format_table(
        ["n", "processors", "k' per reducer", "time (s)"], rows,
        title="Figure 5 (scaled): wall time vs processors and dataset size",
    ))
    # Kernel tiling in effect for the round-1 partition kernels at the
    # largest size: part of the recorded perf trajectory.
    tuning = recommend_tile_rows("euclidean", SIZES[-1] // PROCESSORS[-1],
                                 TOTAL_KERNEL // PROCESSORS[-1], 3)
    emit_json("fig5_scalability", {
        "k": K,
        "total_kernel": TOTAL_KERNEL,
        "executor": "process",
        "pool": "persistent",
        "zero_copy": True,
        "mapreduce_seconds": {
            f"n={n},p={p}": round(seconds, 6)
            for (n, p), seconds in sorted(times.items())
        },
        "streaming_seconds": {
            f"n={n},{variant}": round(seconds, 6)
            for (n, variant), seconds in sorted(stream_times.items())
        },
        "kernel_tuning": tuning.as_dict(),
    })
    for n in SIZES:
        # Shape 1 (the acceptance gate): wall time strictly decreases in p.
        # Total round-1 work is n*s/p, so this holds even on a single core;
        # real parallelism only widens the gaps.
        series = [times[(n, p)] for p in PROCESSORS]
        assert all(a > b for a, b in zip(series, series[1:])), (n, series)
        # Shape 2: MR (any p >= 2) beats the 1-processor point-wise
        # streaming run — the paper's headline ordering.
        assert times[(n, 2)] < 0.5 * stream_times[(n, "pointwise")]
    # Shape 3: at fixed processors, time grows with n (roughly linearly).
    for processors in PROCESSORS:
        series = [times[(n, processors)] for n in SIZES]
        assert series[-1] > series[0]
