"""Figure 2 — streaming approximation ratio on the synthetic 3-d workload.

Paper setup: remote-edge ratios of the streaming algorithm on a 100M-point
sphere-shell dataset in R^3, k in {8, 32, 128} and k' in
{k, k+4, k+16, k+64} (linear progression because R^3's doubling dimension
is small); ratios are large for k'=k (up to ~40 at k=128, because the
planted far points overwhelm a too-small core-set) and collapse toward 1
as k' grows.

Scaled reproduction: 50,000 points, same distribution, k in {8, 16, 32},
same additive k' progression, 3 shuffled trials per cell.
"""

from __future__ import annotations

import numpy as np

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream

N = 50_000
KS = (8, 16, 32)
ADDENDA = (0, 4, 16, 64)
TRIALS = 3


def _sweep() -> list[list[object]]:
    rows = []
    for k in KS:
        points = sphere_shell(N, k, dim=3, seed=1000 + k)
        reference = reference_value(points, k, "remote-edge")
        for addend in ADDENDA:
            k_prime = k + addend
            values = []
            for trial in range(TRIALS):
                order = np.random.default_rng(trial).permutation(N)
                algo = StreamingDiversityMaximizer(
                    k=k, k_prime=k_prime, objective="remote-edge",
                )
                result = algo.run(ArrayStream(points.points[order]))
                values.append(result.value)
            ratio = approximation_ratio(reference, float(np.mean(values)))
            rows.append([k, f"k+{addend}", k_prime, round(ratio, 4)])
    return rows


def test_fig2_streaming_ratio_synth(benchmark):
    rows = run_once(benchmark, _sweep)
    emit("fig2_streaming_ratio_synth", format_table(
        ["k", "k'", "k'(abs)", "approx ratio"], rows,
        title="Figure 2 (scaled): streaming remote-edge ratio, sphere-shell R^3",
    ))
    for k in KS:
        ratios = [r[3] for r in rows if r[0] == k]
        # Largest k' must (weakly) beat k'=k, and land near 1.
        assert ratios[-1] <= ratios[0] + 0.05
        assert ratios[-1] < 1.6
