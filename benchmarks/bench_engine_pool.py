"""Engine smoke benchmark: persistent pool vs per-round pool dispatch.

PR 1's follow-up work made the MapReduce engine's worker pool persistent:
it is created once and reused across every round (and every job) instead of
being spawned and torn down per round.  This benchmark isolates exactly the
overhead that change removes — the reducers are trivial, so wall time is
process management plus IPC, not algorithm work — and gates the persistent
pool's advantage at a modest >= 1.5x so 2-core CI runners pass with margin
(locally the gap is typically >= 5x).

The persistent engine is warmed with one untimed round first: steady-state
dispatch is what multi-round jobs experience, and the per-round mode cannot
be warmed *by construction* — respawning the pool every round is precisely
the measured regression.

Emits ``BENCH_engine_pool.json`` for the CI trajectory.
"""

from __future__ import annotations

import time

from common import emit, emit_json, run_once
from repro.experiments.report import format_table
from repro.mapreduce.engine import MapReduceEngine

ROUNDS = 6
REDUCERS = 4
PARALLELISM = 2
#: CI gate: persistent-pool rounds must beat per-round pools by this factor.
MIN_SPEEDUP = 1.5


def _echo_reducer(payload):
    """Trivial module-level reducer: pure dispatch overhead."""
    return payload


def _time_rounds(engine: MapReduceEngine) -> float:
    inputs = [[i] for i in range(REDUCERS)]
    start = time.perf_counter()
    for _ in range(ROUNDS):
        engine.run_round(inputs, _echo_reducer)
    return time.perf_counter() - start


def _measure():
    with MapReduceEngine(parallelism=PARALLELISM, executor="process",
                         pool_mode="persistent") as engine:
        engine.run_round([[0], [1]], _echo_reducer)  # warm the pool
        persistent = _time_rounds(engine)
    per_round = _time_rounds(
        MapReduceEngine(parallelism=PARALLELISM, executor="process",
                        pool_mode="per-round"))
    return persistent, per_round


def test_engine_pool_overhead(benchmark):
    persistent, per_round = run_once(benchmark, _measure)
    speedup = per_round / persistent
    emit("engine_pool", format_table(
        ["pool mode", f"{ROUNDS} rounds (s)", "per round (ms)"],
        [
            ["persistent", round(persistent, 4),
             round(1000 * persistent / ROUNDS, 2)],
            ["per-round", round(per_round, 4),
             round(1000 * per_round / ROUNDS, 2)],
        ],
        title=f"Engine dispatch overhead ({REDUCERS} trivial reducers, "
              f"parallelism {PARALLELISM}; speedup {speedup:.1f}x)",
    ))
    emit_json("engine_pool", {
        "rounds": ROUNDS,
        "reducers": REDUCERS,
        "parallelism": PARALLELISM,
        "persistent_seconds": round(persistent, 6),
        "per_round_seconds": round(per_round, 6),
        "speedup": round(speedup, 3),
        "min_speedup_gate": MIN_SPEEDUP,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"persistent pool only {speedup:.2f}x faster than per-round pools "
        f"(gate: {MIN_SPEEDUP}x)"
    )
