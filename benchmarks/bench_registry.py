"""Multi-tenant registry under zipf-skewed load — the ``registry-smoke`` gate.

The :class:`~repro.service.IndexRegistry` promises that serving many
datasets from one process fleet and one shared-memory matrix plane costs
only tiering (faults and evictions at the cold tail), never correctness
or unbounded memory.  This benchmark registers ``REPRO_REGISTRY_TENANTS``
tenants (default 8) under a matrix budget sized for only
``recommend_registry_budget_mb(..., hot_tenants=2)`` of them, drives an
open-loop query schedule whose tenant choices follow a zipf law (a few
hot tenants, a long cold tail), and compares the observed tail against a
single-tenant always-hot baseline registry driven at the same rate.

Gates (the acceptance criteria of the registry PR):

* zero mismatches — every answer from the tiered multi-tenant registry
  is bit-identical to a per-tenant :class:`DiversityService` oracle;
* global resident matrix bytes (the shared in-process cache plus the
  pooled /dev/shm segments), sampled after every request, never exceed
  the 2-hot-tenant budget even with 8 tenants registered;
* tiering demonstrably ran: faults and evictions are non-zero and the
  resident count respects ``max_resident``;
* ``build_calls == 0`` on every tenant — the query path never rebuilds
  a core-set;
* zero leaked shared-memory segments after ``close()``;
* on runners with >= ``GATED_CPUS`` schedulable cpus, the skewed
  multi-tenant p99 stays within ``REPRO_REGISTRY_P99_FACTOR`` (default
  25x) of the single-tenant hot p99.  Single-core machines record the
  percentiles without the factor gate.

A second experiment (:func:`test_registry_qos_hot_flood`, the CI
``qos-smoke`` step) gates the tenant-QoS layer: a hot tenant drives a
pipelined retry storm against its own small queue while a cold tenant
trickles at a fixed rate, once through the classic shared FIFO and once
under ``--qos`` weighted deficit-round-robin.  Gates: answered cold
requests bit-identical to the in-process oracle in every configuration;
under WDRR zero cold rejections with every rejection attributed to the
hot tenant; and (>= ``GATED_CPUS`` cpus) the flooded cold p99 within
``REPRO_QOS_COLD_P99_FACTOR`` (default 20x) of the unloaded cold p99.

Machine-readable results land in
``benchmarks/results/BENCH_registry.json`` and
``benchmarks/results/BENCH_registry_qos.json`` for the CI artifacts.
Knobs: ``REPRO_REGISTRY_TENANTS`` (default 8), ``REPRO_REGISTRY_N``
points per tenant (default 1500), ``REPRO_REGISTRY_REQUESTS`` (default
240), ``REPRO_REGISTRY_QPS`` offered rate (default 120),
``REPRO_REGISTRY_MAX_RESIDENT`` (default 3), ``REPRO_REGISTRY_EXECUTOR``
(default ``process``), ``REPRO_REGISTRY_ZIPF_S`` skew exponent (default
1.5); for the QoS block ``REPRO_QOS_N`` (default 1200),
``REPRO_QOS_COLD_REQUESTS`` (default 40), ``REPRO_QOS_COLD_QPS``
(default 50) and ``REPRO_QOS_FLOOD_WAVE`` (default 32).
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.service import (
    DiversityServer,
    DiversityService,
    IndexRegistry,
    ServerConfig,
    TenantQuota,
    build_coreset_index,
    protocol,
)
from repro.service.workload import latency_summary, make_workload
from repro.tuning import recommend_registry_budget_mb

K_MAX = 6
HOT_TENANTS = 2
QUERIES_PER_TENANT = 6
GATED_CPUS = 4


def _available_cpus() -> int:
    """CPUs this process may actually schedule on (cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _shm_segments() -> set[str]:
    """Names of the POSIX shared-memory segments currently linked."""
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except FileNotFoundError:  # non-Linux fallback
        return set()


def _result_key(result) -> tuple:
    return (result.value, tuple(result.indices), result.rung)


def _resident_bytes(registry: IndexRegistry) -> int:
    """Global matrix residency: local cache plus pooled /dev/shm blocks."""
    matrices = registry.stats()["matrices"]
    total = matrices["local"]["resident_bytes"]
    shared = matrices.get("shared") or {}
    return total + shared.get("resident_bytes", 0)


def _drive(registry: IndexRegistry, names: list[str], queries: list,
           schedule, expected: dict, rate_qps: float,
           sample=None) -> tuple[list[float], int]:
    """Open-loop client: send times follow the schedule, not completions."""
    latencies = []
    mismatches = 0
    start = time.perf_counter()
    for step, (tenant_pick, query_pick) in enumerate(schedule):
        due = start + step / rate_qps
        now = time.perf_counter()
        if now < due:
            time.sleep(due - now)
        name = names[tenant_pick]
        result = registry.query_batch([queries[query_pick]], name)[0]
        latencies.append(time.perf_counter() - due)
        if _result_key(result) != expected[name][query_pick]:
            mismatches += 1
        if sample is not None:
            sample(registry)
    return latencies, mismatches


def _measure():
    tenants = int(os.environ.get("REPRO_REGISTRY_TENANTS", "8"))
    n = int(os.environ.get("REPRO_REGISTRY_N", "1500"))
    requests = int(os.environ.get("REPRO_REGISTRY_REQUESTS", "240"))
    rate_qps = float(os.environ.get("REPRO_REGISTRY_QPS", "120"))
    max_resident = int(os.environ.get("REPRO_REGISTRY_MAX_RESIDENT", "3"))
    executor = os.environ.get("REPRO_REGISTRY_EXECUTOR", "process")
    zipf_s = float(os.environ.get("REPRO_REGISTRY_ZIPF_S", "1.5"))

    names = [f"tenant-{i:02d}" for i in range(tenants)]
    indexes = {
        name: build_coreset_index(sphere_shell(n, K_MAX, dim=3, seed=11 + i),
                                  K_MAX, parallelism=2, seed=0)
        for i, name in enumerate(names)}
    # The whole point: a budget sized for the two hottest tenants only.
    budget_mb = recommend_registry_budget_mb(
        [[len(rung.coreset) for rung in index.all_rungs()]
         for index in indexes.values()],
        hot_tenants=HOT_TENANTS)

    queries = make_workload(K_MAX, QUERIES_PER_TENANT, seed=3)
    expected = {}
    for name, index in indexes.items():
        with DiversityService(index, cache_size=32) as oracle:
            expected[name] = [_result_key(result)
                              for result in oracle.query_batch(queries)]

    # Zipf-skewed tenant choices: tenant rank r drawn with weight r^-s.
    rng = np.random.default_rng(0)
    weights = 1.0 / np.arange(1, tenants + 1, dtype=np.float64) ** zipf_s
    weights /= weights.sum()
    tenant_picks = rng.choice(tenants, size=requests, p=weights)
    query_picks = rng.integers(0, len(queries), size=requests)
    schedule = list(zip(tenant_picks.tolist(), query_picks.tolist()))

    peak = {"bytes": 0}

    def sample(registry: IndexRegistry) -> None:
        peak["bytes"] = max(peak["bytes"], _resident_bytes(registry))

    registry = IndexRegistry(matrix_budget_mb=budget_mb,
                             max_resident=max_resident, executor=executor)
    try:
        for name, index in indexes.items():
            registry.register(name, index)
        # Spin the worker fleet up before the clock starts, on the
        # hottest tenant (the baseline primes its sole tenant the same
        # way, keeping the comparison symmetric).
        registry.query_batch([queries[0]], names[0])
        multi_latencies, multi_mismatches = _drive(
            registry, names, queries, schedule, expected, rate_qps,
            sample=sample)
        stats = registry.stats()
        # Capture the published segments while the hot tenants are still
        # resident — the build_calls sweep below cycles every tenant
        # through the cold tier, retiring their planes as it goes.
        segments_during = set(registry.segment_names())
        build_calls = {}
        for name in names:
            with registry.attach(name) as service:
                build_calls[name] = \
                    service.stats()["counters"]["build_calls"]
    finally:
        registry.close()
    segments_after = set(registry.segment_names())
    leaked = segments_during & _shm_segments()

    # Single-tenant hot baseline: the same rate and query picks, every
    # request aimed at one always-resident tenant.
    solo_schedule = [(0, query_pick) for _, query_pick in schedule]
    solo = IndexRegistry(matrix_budget_mb=budget_mb, executor=executor)
    try:
        solo.register(names[0], indexes[names[0]])
        solo.query_batch([queries[0]], names[0])
        solo_latencies, solo_mismatches = _drive(
            solo, names, queries, solo_schedule, expected, rate_qps)
    finally:
        solo.close()

    return {
        "tenants": tenants, "n": n, "requests": requests,
        "rate_qps": rate_qps, "max_resident": max_resident,
        "executor": executor, "zipf_s": zipf_s,
        "budget_mb": budget_mb, "budget_bytes": budget_mb * 2**20,
        "peak_resident_bytes": peak["bytes"],
        "multi": latency_summary(multi_latencies),
        "multi_mismatches": multi_mismatches,
        "solo": latency_summary(solo_latencies),
        "solo_mismatches": solo_mismatches,
        "build_calls": build_calls,
        "tenant_stats": stats["tenants"],
        "matrices": stats["matrices"],
        "segments_during": sorted(segments_during),
        "segments_after": sorted(segments_after),
        "leaked_segments": sorted(leaked),
    }


def test_registry_tiering(benchmark):
    report = run_once(benchmark, _measure)
    tenant_stats = report["tenant_stats"]
    multi, solo = report["multi"], report["solo"]
    emit("registry", format_table(
        ["metric", "value"],
        [["tenants (budget sized for)",
          f"{report['tenants']} ({HOT_TENANTS} hot)"],
         ["matrix budget", f"{report['budget_mb']} MiB"],
         ["peak resident (local + shm)",
          f"{report['peak_resident_bytes']} B"],
         ["offered rate", f"{report['rate_qps']:.0f} req/s"],
         ["requests (zipf s={})".format(report["zipf_s"]),
          str(report["requests"])],
         ["mismatches (multi / solo)",
          f"{report['multi_mismatches']} / {report['solo_mismatches']}"],
         ["faults / evictions",
          f"{tenant_stats['faults']} / {tenant_stats['evictions']}"],
         ["resident / max_resident",
          f"{tenant_stats['resident']} / {tenant_stats['max_resident']}"],
         ["multi-tenant p50 / p99",
          f"{multi['p50_ms']:.2f} / {multi['p99_ms']:.2f} ms"],
         ["single-tenant p50 / p99",
          f"{solo['p50_ms']:.2f} / {solo['p99_ms']:.2f} ms"]],
        title=f"Multi-tenant registry, zipf-skewed open loop "
              f"(n={report['n']}, k_max={K_MAX}, "
              f"executor {report['executor']}, {_available_cpus()} cpu)",
    ))
    emit_json("registry", {
        "k_max": K_MAX,
        "hot_tenants": HOT_TENANTS,
        "cpu_count": _available_cpus(),
        **report,
    })
    # Gate 1 (acceptance): tiering never changes answers — bit-identical
    # to the per-tenant single-index oracles, in both runs.
    assert report["multi_mismatches"] == 0, (
        f"{report['multi_mismatches']} multi-tenant answers differed "
        f"from the single-tenant oracle")
    assert report["solo_mismatches"] == 0
    # Gate 2 (acceptance): 8 tenants, a budget sized for 2 — the global
    # matrix plane (local cache + /dev/shm segments) never exceeds it.
    assert report["peak_resident_bytes"] <= report["budget_bytes"], (
        f"resident matrices peaked at {report['peak_resident_bytes']} B, "
        f"over the {report['budget_bytes']} B budget")
    # Gate 3: tiering demonstrably ran and respected max_resident.
    assert tenant_stats["faults"] > 0, "no tenant ever faulted in"
    assert tenant_stats["evictions"] > 0, "no tenant was ever evicted"
    assert tenant_stats["resident"] <= report["max_resident"]
    # Gate 4 (acceptance): the query path never rebuilds a core-set.
    assert set(report["build_calls"].values()) == {0}, report["build_calls"]
    # Gate 5 (acceptance): close() leaves no shared-memory segments —
    # and the gate is not vacuous: in process mode the data plane was
    # demonstrably publishing segments while the traffic ran.
    if report["executor"] == "process":
        assert report["segments_during"], \
            "process registry never published a shared segment"
    assert report["segments_after"] == [], report["segments_after"]
    assert report["leaked_segments"] == [], (
        f"segments leaked past close(): {report['leaked_segments']}")
    # Gate 6 (multi-core only): the skewed tail stays within a bounded
    # factor of the always-hot baseline.  Faults (load .npz, rebuild the
    # service, recompute matrices) dominate the cold tail, so the factor
    # is generous; single-core runners record without gating.
    factor = float(os.environ.get("REPRO_REGISTRY_P99_FACTOR", "25"))
    if _available_cpus() >= GATED_CPUS:
        assert multi["p99_ms"] <= factor * solo["p99_ms"], (
            f"multi-tenant p99 {multi['p99_ms']:.1f}ms over "
            f"{factor:.0f}x the single-tenant hot p99 "
            f"{solo['p99_ms']:.2f}ms ({_available_cpus()} cpus)")


# ------------------------------------------------------------ tenant QoS


def _qos_drive(hot_index, cold_index, queries, hot_queries, expected, *,
               qos: bool, with_flood: bool, cold_qps: float,
               cold_requests: int, wave: int) -> dict:
    """One daemon run: optional hot retry-storm + a paced cold trickle.

    The flood client pipelines waves of hot requests for as long as the
    cold client is still running (rejected requests are immediately
    re-offered — a retry storm), so the hot backlog stays saturated for
    the whole cold window.  Returns cold latencies/mismatches, flood
    counters and the daemon's own stats snapshot.
    """

    async def run():
        registry = IndexRegistry()
        registry.register("hot", hot_index,
                          quota=TenantQuota(weight=1.0, max_queue=16))
        registry.register("cold", cold_index)
        server = DiversityServer(registry, ServerConfig(
            qos=qos, batch_window_ms=1.0, max_batch=8, max_queue=16))
        host, port = await server.start()
        cold_done = asyncio.Event()
        try:
            async def flood_client():
                reader, writer = await asyncio.open_connection(host, port)
                answered = rejected = sent = 0
                while not cold_done.is_set():
                    for _ in range(wave):
                        writer.write(protocol.encode_request(
                            "query", sent,
                            queries=[hot_queries[sent % len(hot_queries)]],
                            dataset="hot").encode())
                        sent += 1
                    await writer.drain()
                    for _ in range(wave):
                        response = protocol.decode_response(
                            await reader.readline())
                        if response["ok"]:
                            answered += 1
                        else:
                            rejected += 1
                writer.close()
                await writer.wait_closed()
                return {"sent": sent, "answered": answered,
                        "rejected": rejected}

            async def cold_client():
                reader, writer = await asyncio.open_connection(host, port)
                loop = asyncio.get_running_loop()
                latencies, mismatches, rejected = [], 0, 0
                start = loop.time()
                for i in range(cold_requests):
                    due = start + i / cold_qps
                    await asyncio.sleep(max(0.0, due - loop.time()))
                    query_pick = i % len(queries)
                    writer.write(protocol.encode_request(
                        "query", i, queries=[queries[query_pick]],
                        dataset="cold").encode())
                    await writer.drain()
                    response = protocol.decode_response(
                        await reader.readline())
                    latencies.append(loop.time() - due)
                    if not response["ok"]:
                        rejected += 1
                    elif _result_key(protocol.results_of(response)[0]) != \
                            expected[query_pick]:
                        mismatches += 1
                writer.close()
                await writer.wait_closed()
                cold_done.set()
                return latencies, mismatches, rejected

            if with_flood:
                flood_task = asyncio.create_task(flood_client())
            latencies, mismatches, cold_rejected = await cold_client()
            flood = await flood_task if with_flood else \
                {"sent": 0, "answered": 0, "rejected": 0}
            stats = server.stats()["server"]
        finally:
            await server.shutdown()
        return {
            "qos": qos, "with_flood": with_flood,
            "cold": latency_summary(latencies),
            "cold_mismatches": mismatches,
            "cold_rejected": cold_rejected,
            "flood": flood,
            "rejected_datasets": stats["rejected_datasets"],
            "scheduler": stats["qos"],
        }

    return asyncio.run(run())


def _qos_measure():
    n = int(os.environ.get("REPRO_QOS_N", "1200"))
    cold_requests = int(os.environ.get("REPRO_QOS_COLD_REQUESTS", "40"))
    cold_qps = float(os.environ.get("REPRO_QOS_COLD_QPS", "50"))
    wave = int(os.environ.get("REPRO_QOS_FLOOD_WAVE", "32"))

    hot_index = build_coreset_index(sphere_shell(n, K_MAX, dim=3, seed=21),
                                    K_MAX, parallelism=2, seed=0)
    cold_index = build_coreset_index(sphere_shell(n, K_MAX, dim=3, seed=22),
                                     K_MAX, parallelism=2, seed=0)
    queries = make_workload(K_MAX, QUERIES_PER_TENANT, seed=5)
    # A wide hot workload defeats the result cache so the flood keeps
    # the daemon genuinely busy rather than replaying memoized answers.
    hot_queries = make_workload(K_MAX, 48, seed=7)
    with DiversityService(cold_index, cache_size=64) as oracle:
        expected = [_result_key(result)
                    for result in oracle.query_batch(queries)]

    kwargs = dict(cold_qps=cold_qps, cold_requests=cold_requests, wave=wave)
    unloaded = _qos_drive(hot_index, cold_index, queries, hot_queries,
                          expected, qos=True, with_flood=False, **kwargs)
    fifo = _qos_drive(hot_index, cold_index, queries, hot_queries,
                      expected, qos=False, with_flood=True, **kwargs)
    wdrr = _qos_drive(hot_index, cold_index, queries, hot_queries,
                      expected, qos=True, with_flood=True, **kwargs)
    return {
        "n": n, "cold_requests": cold_requests, "cold_qps": cold_qps,
        "flood_wave": wave,
        "unloaded": unloaded, "fifo": fifo, "wdrr": wdrr,
    }


def test_registry_qos_hot_flood(benchmark):
    report = run_once(benchmark, _qos_measure)
    unloaded, fifo, wdrr = \
        report["unloaded"], report["fifo"], report["wdrr"]

    def row(label, run):
        cold = run["cold"]
        return [label,
                f"{cold['p50_ms']:.2f} / {cold['p99_ms']:.2f} ms",
                str(run["cold_rejected"]),
                str(run["flood"]["rejected"])]

    emit("registry_qos", format_table(
        ["configuration", "cold p50 / p99", "cold rejected",
         "hot rejected"],
        [row("unloaded (no flood)", unloaded),
         row("flood, shared FIFO", fifo),
         row("flood, WDRR QoS", wdrr)],
        title=f"Hot-tenant retry storm vs cold trickle "
              f"(n={report['n']}, k_max={K_MAX}, "
              f"cold {report['cold_qps']:.0f} qps, "
              f"{_available_cpus()} cpu)",
    ))
    emit_json("registry_qos", {
        "k_max": K_MAX,
        "cpu_count": _available_cpus(),
        **report,
    })
    # Gate 1 (acceptance): QoS never changes answers — every answered
    # cold request is bit-identical to the in-process oracle, in every
    # configuration.
    for run in (unloaded, fifo, wdrr):
        assert run["cold_mismatches"] == 0, run
    # Gate 2 (acceptance): under WDRR the flooded hot tenant cannot
    # starve the under-quota cold tenant — zero cold rejections, and
    # every rejection the daemon did issue is attributed to ``hot``.
    assert wdrr["cold_rejected"] == 0, (
        f"{wdrr['cold_rejected']} cold requests rejected under QoS")
    assert set(wdrr["rejected_datasets"]) <= {"hot"}
    assert wdrr["flood"]["rejected"] > 0, \
        "flood never saturated the hot tenant's queue"
    # Gate 3: the scheduler block is live — per-tenant percentiles were
    # recorded for both tenants.
    scheduler = wdrr["scheduler"]
    assert scheduler["per_tenant"]["cold"]["latency"]["count"] == \
        report["cold_requests"]
    assert scheduler["per_tenant"]["cold"]["rejected"] == 0
    # Gate 4 (multi-core only): the cold tenant's p99 under a hot flood
    # stays within a bounded factor of its unloaded p99.  Dispatch still
    # shares one executor, so the factor is generous; slower runners
    # record the percentiles without the gate.
    factor = float(os.environ.get("REPRO_QOS_COLD_P99_FACTOR", "20"))
    if _available_cpus() >= GATED_CPUS:
        assert wdrr["cold"]["p99_ms"] <= \
            factor * max(unloaded["cold"]["p99_ms"], 1.0), (
            f"cold p99 under flood {wdrr['cold']['p99_ms']:.1f}ms over "
            f"{factor:.0f}x the unloaded cold p99 "
            f"{unloaded['cold']['p99_ms']:.2f}ms "
            f"({_available_cpus()} cpus)")
