"""Ablation (Theorems 9 & 10) — generalized core-sets: memory vs quality.

The generalized constructions trade a pass (streaming) or a round (MR) for
a ~k-fold memory saving.  This ablation quantifies the trade on
remote-clique: peak memory and achieved value for

* streaming 1-pass (SMM-EXT) vs streaming 2-pass (SMM-GEN + instantiation);
* MR 2-round (GMM-EXT) vs MR 3-round (GMM-GEN + instantiation).

Asserted shape: the generalized variants use substantially less memory and
lose only a bounded fraction of the objective.
"""

from __future__ import annotations

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.streaming.stream import ArrayStream

N = 30_000
K = 16
K_PRIME = 48


def _sweep():
    points = sphere_shell(N, K, dim=3, seed=77)
    stream = ArrayStream(points.points)
    rows = []

    one = StreamingDiversityMaximizer(k=K, k_prime=K_PRIME,
                                      objective="remote-clique").run(stream)
    two = TwoPassStreamingDiversityMaximizer(k=K, k_prime=K_PRIME,
                                             objective="remote-clique").run(stream)
    rows.append(["streaming 1-pass (EXT)", one.peak_memory_points,
                 round(one.value, 3)])
    rows.append(["streaming 2-pass (GEN)", two.peak_memory_points,
                 round(two.value, 3)])

    algo = MRDiversityMaximizer(k=K, k_prime=K_PRIME,
                                objective="remote-clique",
                                parallelism=8, seed=0)
    mr2 = algo.run(points)
    mr3 = algo.run_three_round(points)
    rows.append(["MR 2-round (EXT)", mr2.coreset_size, round(mr2.value, 3)])
    rows.append(["MR 3-round (GEN)", mr3.coreset_size, round(mr3.value, 3)])
    return rows, (one, two, mr2, mr3)


def test_ablation_generalized(benchmark):
    rows, (one, two, mr2, mr3) = run_once(benchmark, _sweep)
    emit("ablation_generalized", format_table(
        ["algorithm", "memory (points / core-set size)", "remote-clique value"],
        rows,
        title="Ablation: generalized core-sets (memory vs quality), "
              f"n={N}, k={K}, k'={K_PRIME}",
    ))
    # Memory: the generalized variants save a large factor.
    assert two.peak_memory_points * 3 < one.peak_memory_points
    assert mr3.coreset_size * 3 < mr2.coreset_size
    # Quality: bounded loss (alpha + eps still holds; in practice small).
    assert two.value >= 0.5 * one.value
    assert mr3.value >= 0.7 * mr2.value
