"""Table 3 — memory requirements of the streaming and MapReduce algorithms.

Paper content: Table 3 is analytical — streaming memory Theta((1/eps)^D k)
for remote-edge/cycle vs Theta((1/eps)^D k^2) for the other four (1 pass),
dropping back to Theta((1/eps)^D k) with 2 passes; MR local memory
sqrt((1/eps)^D k n) vs k sqrt((1/eps)^D n), dropping to sqrt((1/eps)^D k n)
with the 3-round generalized algorithm.

Empirical verification: we run every algorithm variant at fixed (k, k')
and record observed peak memory (streaming, in points) and M_L (MapReduce,
in points), asserting the orderings the table claims:

* streaming: SMM ~ SMM-GEN << SMM-EXT (factor ~k);
* MapReduce: 3-round M_L < 2-round M_L for injective objectives;
* everything is far below n.
"""

from __future__ import annotations

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.streaming.stream import ArrayStream

N = 30_000
K = 16
K_PRIME = 64


def _sweep():
    points = sphere_shell(N, K, dim=3, seed=3)
    stream = ArrayStream(points.points)
    rows = []
    memory = {}

    one_pass_edge = StreamingDiversityMaximizer(
        k=K, k_prime=K_PRIME, objective="remote-edge").run(stream)
    memory["stream-edge-1pass"] = one_pass_edge.peak_memory_points
    rows.append(["streaming 1-pass", "remote-edge",
                 one_pass_edge.peak_memory_points])

    one_pass_clique = StreamingDiversityMaximizer(
        k=K, k_prime=K_PRIME, objective="remote-clique").run(stream)
    memory["stream-clique-1pass"] = one_pass_clique.peak_memory_points
    rows.append(["streaming 1-pass", "remote-clique",
                 one_pass_clique.peak_memory_points])

    two_pass_clique = TwoPassStreamingDiversityMaximizer(
        k=K, k_prime=K_PRIME, objective="remote-clique").run(stream)
    memory["stream-clique-2pass"] = two_pass_clique.peak_memory_points
    rows.append(["streaming 2-pass", "remote-clique",
                 two_pass_clique.peak_memory_points])

    mr_edge = MRDiversityMaximizer(k=K, k_prime=K_PRIME,
                                   objective="remote-edge",
                                   parallelism=8, seed=0).run(points)
    memory["mr-edge-2round"] = mr_edge.stats.max_local_memory_points
    rows.append(["MR 2-round", "remote-edge",
                 mr_edge.stats.max_local_memory_points])

    mr_clique = MRDiversityMaximizer(k=K, k_prime=K_PRIME,
                                     objective="remote-clique",
                                     parallelism=8, seed=0).run(points)
    memory["mr-clique-2round"] = mr_clique.stats.max_local_memory_points
    rows.append(["MR 2-round", "remote-clique",
                 mr_clique.stats.max_local_memory_points])

    mr_clique3 = MRDiversityMaximizer(k=K, k_prime=K_PRIME,
                                      objective="remote-clique",
                                      parallelism=8, seed=0
                                      ).run_three_round(points)
    # The decisive round for the 3-round algorithm is the aggregation of
    # generalized core-sets (round 2); rounds 1/3 scan raw partitions in
    # both algorithms alike.  Record round 2's local memory.
    round2 = mr_clique3.stats.rounds[1].local_memory_points
    memory["mr-clique-3round-agg"] = round2
    rows.append(["MR 3-round (aggregation)", "remote-clique", round2])
    memory["mr-clique-2round-agg"] = mr_clique.stats.rounds[1].local_memory_points
    rows.append(["MR 2-round (aggregation)", "remote-clique",
                 memory["mr-clique-2round-agg"]])
    return rows, memory


def test_table3_memory(benchmark):
    rows, memory = run_once(benchmark, _sweep)
    emit("table3_memory", format_table(
        ["algorithm", "objective", "peak memory (points)"], rows,
        title=f"Table 3 (empirical): memory at n={N}, k={K}, k'={K_PRIME}",
    ))
    # Streaming: EXT costs ~k x the plain sketch; GEN matches plain.
    assert memory["stream-clique-1pass"] > 4 * memory["stream-edge-1pass"]
    assert memory["stream-clique-2pass"] <= 1.2 * memory["stream-edge-1pass"]
    # MapReduce: the 3-round aggregation is smaller than the 2-round one.
    assert memory["mr-clique-3round-agg"] < memory["mr-clique-2round-agg"]
    # Everything is sublinear in n: k sqrt((1/eps)^D n) is the worst bound
    # (MR 2-round, injective objectives) and sits well below n.
    for key, value in memory.items():
        assert value < N / 3, f"{key}: {value}"
