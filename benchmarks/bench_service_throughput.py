"""Query-service throughput — the build-once/serve-many payoff.

The paper's composability result (Definition 2) says one core-set build
serves every query with ``k <= k'``; this benchmark measures what that is
worth as a system.  A mixed ``(objective, k)`` workload is served three
ways over the same dataset:

* **rebuild-per-query** — the pre-service baseline: every query runs its
  own 2-round core-set build over the full dataset;
* **warm** — the :class:`~repro.service.DiversityService` path: queries
  route into a prebuilt ladder index and solve on shared, cached blocked
  distance matrices;
* **cached** — the identical workload replayed, answered from the LRU.

Gates (the acceptance criteria of the service PR):

* warm-path queries/sec >= 5x the rebuild-per-query baseline (in practice
  far higher once the dataset dwarfs the core-sets);
* zero core-set builds happen during queries (build-call counter);
* the cached replay beats the warm pass.

Machine-readable results land in
``benchmarks/results/BENCH_service_throughput.json`` for the CI artifact.
Dataset size via ``REPRO_SERVICE_N`` (default 100,000 — the CI smoke size;
the rebuild baseline scales with ``n`` while the warm path does not, so
larger datasets only widen the measured gap).
"""

from __future__ import annotations

import os

from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.service import measure_service_throughput

K_MAX = 8
NUM_QUERIES = 24
REBUILD_QUERIES = 3


def _measure():
    n = int(os.environ.get("REPRO_SERVICE_N", "100000"))
    points = sphere_shell(n, K_MAX, dim=3, seed=11)
    report = measure_service_throughput(
        points, K_MAX, num_queries=NUM_QUERIES,
        rebuild_queries=REBUILD_QUERIES, parallelism=4, executor="serial",
        seed=0,
    )
    return n, report


def test_service_throughput(benchmark):
    n, report = run_once(benchmark, _measure)
    emit("service_throughput", format_table(
        ["serving mode", "queries/s", "speedup"],
        [["rebuild-per-query", f"{report.rebuild_qps:.1f}", "1.0x"],
         ["warm service", f"{report.warm_qps:.1f}",
          f"{report.warm_speedup:.1f}x"],
         ["LRU-cached replay", f"{report.cached_qps:.1f}",
          f"{report.cached_speedup:.1f}x"]],
        title=f"Query service throughput (n={n}, k_max={K_MAX}, "
              f"{report.num_queries} queries)",
    ))
    emit_json("service_throughput", {
        "n": n,
        "k_max": K_MAX,
        "index_build_seconds": report.index_build_seconds,
        **report.as_dict(),
    })
    # Gate 1 (acceptance): amortizing the build is worth >= 5x.
    assert report.warm_speedup >= 5.0, (
        f"warm path only {report.warm_speedup:.2f}x over rebuild-per-query")
    # Gate 2 (acceptance): the warm path never rebuilds a core-set.
    assert report.build_calls_during_queries == 0
    # Gate 3: the LRU turns repeats into lookups — faster than solving.
    assert report.cached_qps > report.warm_qps
    assert report.cache["hits"] >= report.num_queries
