"""Query-service throughput — the build-once/serve-many payoff.

The paper's composability result (Definition 2) says one core-set build
serves every query with ``k <= k'``; this benchmark measures what that is
worth as a system.  A mixed ``(objective, k)`` workload is served over the
same dataset:

* **rebuild-per-query** — the pre-service baseline: every query runs its
  own 2-round core-set build over the full dataset;
* **warm** — the :class:`~repro.service.DiversityService` path: queries
  route into a prebuilt ladder index and solve on shared, cached blocked
  distance matrices;
* **cached** — the identical workload replayed, answered from the LRU;
* **concurrent** — the warm workload again, through
  ``query_concurrent`` at 1 / 2 / 4 worker threads vs serial
  ``query_batch`` (matrix-cold services each time).

Gates (the acceptance criteria of the service PRs):

* warm-path queries/sec >= 5x the rebuild-per-query baseline;
* zero core-set builds happen during queries (build-call counter);
* the cached replay beats the warm pass;
* concurrent answers are identical to serial, every query counts exactly
  one cache hit or miss, and each touched rung's matrix is computed
  exactly once under contention (asserted by the harness itself);
* on runners with at least 4 cpus (e.g. CI's ubuntu runners), 4 workers
  reach >= ``REPRO_SERVICE_CONCURRENCY_MIN_SPEEDUP`` (default 2.0) x the
  serial throughput — the warm workload is dominated by numpy reductions
  over the large rung matrices, which release the GIL.  With fewer cores
  the sweep is recorded without the speed gate — threads cannot beat
  serial on one core;
* a second sweep runs the same workload through ``executor="process"``
  (worker processes over the shared-memory data plane) at 1 / 2 / 4
  workers, recorded as the ``process_concurrency`` block; on >= 4-cpu
  runners 4 process workers must reach
  ``REPRO_SERVICE_PROCESS_MIN_SPEEDUP`` (default 2.5) x serial — the GIL
  is out of the picture entirely, so the bar is higher than the thread
  gate.  Pools are warmed before the timed region (spawn cost is not
  serving cost); 1-cpu machines record the sweep without the speed gate.

A ``dtype`` block additionally races float32 against float64 on a
single-rung, bandwidth-bound configuration (one large gmm rung whose
matrix oversizes a 1 MiB budget, so every query recomputes it):

* float32 rung-matrix residency must be <= 0.55x float64 under identical
  (unbudgeted) settings — asserted from the matrix cache's byte
  accounting, the shared-memory segment accounting and tracemalloc's
  retained bytes, unconditionally;
* on >= 4-cpu runners, float32 warm queries/sec must reach
  ``REPRO_DTYPE_MIN_SPEEDUP`` (default 1.3) x float64;
* both dtypes' answers are float64-shadow-verified during the measured
  pass (``REPRO_VERIFY_DTYPE`` path): zero mismatches, unconditionally.

Machine-readable results (including the ``concurrency``,
``process_concurrency`` and ``dtype`` blocks) land in
``benchmarks/results/BENCH_service_throughput.json`` for the CI artifact.
Dataset size via ``REPRO_SERVICE_N`` (default 100,000 — the CI smoke size;
the rebuild baseline scales with ``n`` while the warm path does not, so
larger datasets only widen the measured gap).
"""

from __future__ import annotations

import os
import time

from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.service import (
    DiversityService,
    build_coreset_index,
    measure_concurrent_throughput,
    measure_service_throughput,
)
from repro.service.matrices import SharedMatrixCache
from repro.service.workload import make_workload

K_MAX = 8
NUM_QUERIES = 24
REBUILD_QUERIES = 3
WORKER_COUNTS = (1, 2, 4)
GATED_WORKERS = 4


def _available_cpus() -> int:
    """CPUs this process may actually schedule on.

    ``sched_getaffinity`` respects cgroup quotas and CPU pinning
    (containerized CI), where ``cpu_count`` reports the host's cores.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _measure_dtype():
    """Race float32 against float64 on a bandwidth-bound rung.

    One big gmm-only rung (multiplier 64 -> a few thousand core-set
    points) whose pairwise matrix oversizes a 1 MiB budget: every warm
    query recomputes the full matrix, so throughput is dominated by the
    blocked kernels' memory traffic — exactly where halving the itemsize
    pays.  The float32 index is the float64 one cast, so both runs serve
    identical geometry; the float32 service runs with the float64 shadow
    verify enabled on every sampled solve.
    """
    import tracemalloc

    n = min(int(os.environ.get("REPRO_SERVICE_N", "100000")), 20_000)
    points = sphere_shell(n, K_MAX, dim=3, seed=17)
    index64 = build_coreset_index(points, K_MAX, families=("gmm",),
                                  multiplier=64, k_min=K_MAX,
                                  parallelism=4, seed=0)
    index32 = index64.astype("float32")
    rung = index64.all_rungs()[0]
    rung_points = len(rung.coreset)
    workload = make_workload(K_MAX, 12,
                             objectives=["remote-edge", "remote-cycle"],
                             seed=0)

    blocks = {}
    for label, index in (("float64", index64), ("float32", index32)):
        # Throughput: a 1 MiB budget the rung matrix cannot fit, so each
        # query pays the full blocked pairwise recompute.  The float64
        # shadow verify runs in its own pass below — inside the timed
        # region it would bill float64 recomputes to the float32 side.
        with DiversityService(index, cache_size=len(workload),
                              matrix_budget_mb=1,
                              verify_dtype=False) as service:
            started = time.perf_counter()
            for query in workload:
                service.query_batch([query])
            seconds = time.perf_counter() - started
        with DiversityService(index, cache_size=len(workload),
                              verify_dtype=(label == "float32"),
                              verify_fraction=1.0) as checker:
            for query in workload[:6]:
                checker.query_batch([query])
            verify = checker.stats()["verify"]
        # Residency: an unbudgeted service retains the rung matrix; its
        # byte accounting (plus a tracemalloc peak over the compute) is
        # the local half of the 0.55x gate.
        # tracemalloc's *retained* bytes after the query are dominated by
        # the cached rung matrix (the residency claim); the *peak* also
        # spans the tile temporaries, which by design fill the same
        # kernel budget for both dtypes, so it rides along uninstated.
        with DiversityService(index, cache_size=4) as resident:
            tracemalloc.start()
            resident.query("remote-edge", 4)
            traced_current, traced_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            local = resident.stats()["matrices"]["local"]
        # The shared-memory half: lease one epoch segment per dtype and
        # read back the segment accounting the process plane would use.
        shared = SharedMatrixCache(0)
        try:
            lease = shared.lease((0,) + rung.key, rung_points, dtype=label)
            shared_bytes = shared.nbytes
            shared.release(lease)
        finally:
            shared.close()
        blocks[label] = {
            "qps": len(workload) / max(seconds, 1e-9),
            "resident_bytes": local["resident_bytes"],
            "shared_segment_bytes": shared_bytes,
            "tracemalloc_retained_bytes": traced_current,
            "tracemalloc_peak_bytes": traced_peak,
            "verify": verify,
        }
    return {
        "n": n,
        "rung_points": rung_points,
        "float64": blocks["float64"],
        "float32": blocks["float32"],
        "speedup": blocks["float32"]["qps"] / blocks["float64"]["qps"],
        "residency_ratio": (blocks["float32"]["resident_bytes"]
                            / max(blocks["float64"]["resident_bytes"], 1)),
        "shared_ratio": (blocks["float32"]["shared_segment_bytes"]
                         / max(blocks["float64"]["shared_segment_bytes"], 1)),
    }


def _measure():
    n = int(os.environ.get("REPRO_SERVICE_N", "100000"))
    points = sphere_shell(n, K_MAX, dim=3, seed=11)
    # One ladder build, shared by both harnesses (the build dominates the
    # job's cost; measure_service_throughput would otherwise rebuild it).
    started = time.perf_counter()
    index = build_coreset_index(points, K_MAX, parallelism=4, seed=0)
    index_build_seconds = time.perf_counter() - started
    report = measure_service_throughput(
        points, K_MAX, num_queries=NUM_QUERIES,
        rebuild_queries=REBUILD_QUERIES, parallelism=4, executor="serial",
        seed=0, index=index,
    )
    # matrix_budget_mb=0 pins the gated runs to unbudgeted regardless of
    # any REPRO_MATRIX_BUDGET_MB in the environment: under a binding
    # budget, evictions trigger recomputes and the exactly-once matrix
    # gate below would fail spuriously.
    concurrency = measure_concurrent_throughput(
        points, K_MAX, num_queries=NUM_QUERIES,
        worker_counts=WORKER_COUNTS, seed=0, index=index,
        matrix_budget_mb=0,
    )
    process_concurrency = measure_concurrent_throughput(
        points, K_MAX, num_queries=NUM_QUERIES,
        worker_counts=WORKER_COUNTS, seed=0, index=index,
        matrix_budget_mb=0, executor="process",
    )
    dtype_block = _measure_dtype()
    return (n, index_build_seconds, report, concurrency,
            process_concurrency, dtype_block)


def test_service_throughput(benchmark):
    (n, index_build_seconds, report, concurrency,
     process_concurrency, dtype_block) = run_once(benchmark, _measure)
    emit("service_throughput", format_table(
        ["serving mode", "queries/s", "speedup"],
        [["rebuild-per-query", f"{report.rebuild_qps:.1f}", "1.0x"],
         ["warm service", f"{report.warm_qps:.1f}",
          f"{report.warm_speedup:.1f}x"],
         ["LRU-cached replay", f"{report.cached_qps:.1f}",
          f"{report.cached_speedup:.1f}x"],
         ["serial query_batch", f"{concurrency.serial_qps:.1f}", "—"],
         *[[f"query_concurrent x{workers} threads", f"{qps:.1f}",
            f"{concurrency.speedup(workers):.2f}x vs serial"]
           for workers, qps in sorted(concurrency.qps_by_workers.items())],
         *[[f"query_concurrent x{workers} processes", f"{qps:.1f}",
            f"{process_concurrency.speedup(workers):.2f}x vs serial"]
           for workers, qps in sorted(
               process_concurrency.qps_by_workers.items())],
         ["recompute-bound float64", f"{dtype_block['float64']['qps']:.1f}",
          "1.0x"],
         ["recompute-bound float32", f"{dtype_block['float32']['qps']:.1f}",
          f"{dtype_block['speedup']:.2f}x vs float64"]],
        title=f"Query service throughput (n={n}, k_max={K_MAX}, "
              f"{report.num_queries} queries, "
              f"{_available_cpus()} cpu)",
    ))
    payload = {
        "n": n,
        "k_max": K_MAX,
        "cpu_count": _available_cpus(),
        "concurrency": concurrency.as_dict(),
        "process_concurrency": process_concurrency.as_dict(),
        "dtype": dtype_block,
        **report.as_dict(),
    }
    payload["index_build_seconds"] = index_build_seconds  # the shared build
    emit_json("service_throughput", payload)
    # Gate 1 (acceptance): amortizing the build is worth >= 5x.
    assert report.warm_speedup >= 5.0, (
        f"warm path only {report.warm_speedup:.2f}x over rebuild-per-query")
    # Gate 2 (acceptance): the warm path never rebuilds a core-set —
    # serial or concurrent (the harness asserts the concurrent side too).
    assert report.build_calls_during_queries == 0
    assert concurrency.build_calls_during_queries == 0
    # Gate 3: the LRU turns repeats into lookups — faster than solving.
    assert report.cached_qps > report.warm_qps
    assert report.cache["hits"] >= report.num_queries
    # Gate 4: single-flight — one matrix compute per rung touched, even
    # at the widest worker count.
    assert concurrency.matrix_computes == concurrency.distinct_rungs
    # Gate 5 (acceptance, multi-core only): 4 workers beat serial >= 2x.
    # Fewer cores than workers cannot honestly clear a 2x bar, so the
    # sweep is recorded there but the speedup is not gated.
    min_speedup = float(os.environ.get(
        "REPRO_SERVICE_CONCURRENCY_MIN_SPEEDUP", "2.0"))
    speedup = concurrency.speedup(GATED_WORKERS)
    if _available_cpus() >= GATED_WORKERS:
        assert speedup >= min_speedup, (
            f"query_concurrent x{GATED_WORKERS} only {speedup:.2f}x over "
            f"serial query_batch (gate: {min_speedup:.2f}x on "
            f"{_available_cpus()} schedulable cpus)")
    # Gate 6: the process sweep shares the correctness invariants
    # unconditionally (bit-identical answers, zero builds, exactly-once
    # matrix fills across processes — asserted by the harness), and on
    # multi-core runners 4 GIL-free workers must beat the thread gate.
    assert process_concurrency.build_calls_during_queries == 0
    assert (process_concurrency.matrix_computes
            == process_concurrency.distinct_rungs)
    process_min = float(os.environ.get(
        "REPRO_SERVICE_PROCESS_MIN_SPEEDUP", "2.5"))
    process_speedup = process_concurrency.speedup(GATED_WORKERS)
    if _available_cpus() >= GATED_WORKERS:
        assert process_speedup >= process_min, (
            f"query_concurrent x{GATED_WORKERS} processes only "
            f"{process_speedup:.2f}x over serial query_batch "
            f"(gate: {process_min:.2f}x on {_available_cpus()} "
            f"schedulable cpus)")
    # Gate 7 (acceptance): float32 halves resident matrix bytes — local
    # cache accounting, shared-memory segment accounting and tracemalloc
    # peak all agree, on any machine.
    assert dtype_block["residency_ratio"] <= 0.55, (
        f"float32 rung-matrix residency {dtype_block['residency_ratio']:.3f}x "
        "float64 (gate: <= 0.55x)")
    assert dtype_block["shared_ratio"] <= 0.55, (
        f"float32 shared-segment bytes {dtype_block['shared_ratio']:.3f}x "
        "float64 (gate: <= 0.55x)")
    assert (dtype_block["float32"]["tracemalloc_retained_bytes"]
            <= 0.55 * dtype_block["float64"]["tracemalloc_retained_bytes"]), (
        "float32 tracemalloc retained bytes after the rung-matrix compute "
        "exceed 0.55x the float64 retained bytes")
    # Gate 8: the float32 pass ran with the float64 shadow verify on —
    # sampled solves must agree (values within rtol, selections identical
    # or tie-explained), unconditionally.
    assert dtype_block["float32"]["verify"]["checks"] > 0
    assert dtype_block["float32"]["verify"]["value_mismatches"] == 0
    assert dtype_block["float32"]["verify"]["index_mismatches"] == 0
    # Gate 9 (acceptance, multi-core only): the bandwidth-bound rung must
    # convert the halved itemsize into throughput.
    dtype_min = float(os.environ.get("REPRO_DTYPE_MIN_SPEEDUP", "1.3"))
    if _available_cpus() >= GATED_WORKERS:
        assert dtype_block["speedup"] >= dtype_min, (
            f"float32 warm queries/sec only {dtype_block['speedup']:.2f}x "
            f"float64 (gate: {dtype_min:.2f}x on {_available_cpus()} "
            f"schedulable cpus)")
