"""Ablation (Theorem 8) — recursive multi-round MapReduce.

Theorem 8 trades rounds for local memory: with memory target M_L, the
recursive strategy needs O((1-gamma)/gamma) levels (n^gamma ~ M_L) while
keeping an alpha + eps guarantee.  This ablation sweeps the memory target
on a fixed dataset and records levels used, final core-set size, and the
achieved remote-edge value.

Asserted shape: smaller memory targets force more levels; quality degrades
only mildly (each level compounds a (1 + eps') factor).
"""

from __future__ import annotations

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer

N = 60_000
K = 8
K_PRIME = 32
TARGETS = (20_000, 2_000, 400)


def _sweep():
    points = sphere_shell(N, K, dim=3, seed=88)
    reference = reference_value(points, K, "remote-edge")
    algo = MRDiversityMaximizer(k=K, k_prime=K_PRIME, objective="remote-edge",
                                parallelism=8, seed=0)
    rows = []
    outcomes = []
    for target in TARGETS:
        result = algo.run_multi_round(points, memory_target=target)
        ratio = approximation_ratio(reference, result.value)
        outcomes.append((target, result.extra["levels"], ratio))
        rows.append([target, result.extra["levels"], result.coreset_size,
                     round(ratio, 4)])
    return rows, outcomes


def test_ablation_multiround(benchmark):
    rows, outcomes = run_once(benchmark, _sweep)
    emit("ablation_multiround", format_table(
        ["memory target (points)", "levels", "final core-set", "approx ratio"],
        rows,
        title=f"Ablation: recursive multi-round MR, n={N}, k={K}, k'={K_PRIME}",
    ))
    levels = [levels for _, levels, _ in outcomes]
    ratios = [ratio for *_, ratio in outcomes]
    # Tighter memory -> at least as many levels, strictly more at the extremes.
    assert levels[0] <= levels[1] <= levels[2]
    assert levels[2] > levels[0]
    # Quality stays within a modest envelope of the single-level run.
    assert max(ratios) <= ratios[0] * 1.3 + 0.05
