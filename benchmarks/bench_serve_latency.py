"""Serving-daemon latency under open-loop load — the ``serve-smoke`` gate.

``repro serve`` promises that putting a network front-end over the
:class:`~repro.service.DiversityService` costs only transport and
queueing, never correctness: daemon answers are bit-identical to
in-process ``query_batch``, backpressure is explicit, and micro-batching
coalesces concurrent requests into shared dispatches.  This benchmark
drives a real daemon (ephemeral TCP port) with
:func:`~repro.service.workload.measure_serve_latency`'s open-loop
client — send times follow a fixed schedule independent of completions,
so server slowness surfaces as tail latency rather than silently
throttling the generator.

Gates (the acceptance criteria of the serving PR):

* zero ``errors`` and zero ``mismatches`` — every request is answered,
  and every answer matches the in-process oracle bit-exactly;
* zero rejections: the offered rate is deliberately under capacity, so
  any ``overloaded`` response means admission control misfired;
* ``batched_requests > 0`` — micro-batching demonstrably coalesced
  requests into shared ``query_batch`` dispatches;
* on runners with >= 4 schedulable cpus, client-observed p99 stays
  under ``REPRO_SERVE_P99_MS`` (default 500).  Single-core machines
  record the percentiles without the latency gate — the daemon, the
  load generator, and the solver all compete for one cpu there.

Machine-readable results (client percentiles, admission counters, the
daemon's final ``server`` stats block) land in
``benchmarks/results/BENCH_serve_latency.json`` for the CI artifact.
Knobs: ``REPRO_SERVE_N`` dataset size (default 20,000),
``REPRO_SERVE_QPS`` offered rate (default 150), ``REPRO_SERVE_REQUESTS``
request count (default 200).
"""

from __future__ import annotations

import os

from common import emit, emit_json, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.report import format_table
from repro.service import build_coreset_index, measure_serve_latency

K_MAX = 6
QUERIES_PER_REQUEST = 2
BATCH_WINDOW_MS = 10.0
GATED_CPUS = 4


def _available_cpus() -> int:
    """CPUs this process may actually schedule on (cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _measure():
    n = int(os.environ.get("REPRO_SERVE_N", "20000"))
    rate_qps = float(os.environ.get("REPRO_SERVE_QPS", "150"))
    num_requests = int(os.environ.get("REPRO_SERVE_REQUESTS", "200"))
    points = sphere_shell(n, K_MAX, dim=3, seed=7)
    index = build_coreset_index(points, K_MAX, parallelism=4, seed=0)
    report = measure_serve_latency(
        index, num_requests=num_requests,
        queries_per_request=QUERIES_PER_REQUEST, rate_qps=rate_qps,
        batch_window_ms=BATCH_WINDOW_MS, seed=0, verify=True,
    )
    return n, report


def test_serve_latency(benchmark):
    n, report = run_once(benchmark, _measure)
    latency = report.latency
    server = report.server
    emit("serve_latency", format_table(
        ["metric", "value"],
        [["offered rate", f"{report.rate_qps:.0f} req/s"],
         ["requests (x{} queries)".format(report.queries_per_request),
          str(report.requests)],
         ["answered / rejected / errors",
          f"{report.answered} / {report.rejected} / {report.errors}"],
         ["mismatches vs in-process oracle", str(report.mismatches)],
         ["client p50", f"{latency['p50_ms']:.2f} ms"],
         ["client p95", f"{latency['p95_ms']:.2f} ms"],
         ["client p99", f"{latency['p99_ms']:.2f} ms"],
         ["client max", f"{latency['max_ms']:.2f} ms"],
         ["batches dispatched", str(server["batches_dispatched"])],
         ["requests sharing a dispatch", str(server["batched_requests"])]],
        title=f"Serving daemon open-loop latency (n={n}, k_max={K_MAX}, "
              f"window {BATCH_WINDOW_MS:.0f}ms, {_available_cpus()} cpu)",
    ))
    emit_json("serve_latency", {
        "n": n,
        "k_max": K_MAX,
        "cpu_count": _available_cpus(),
        "batch_window_ms": BATCH_WINDOW_MS,
        **report.as_dict(),
    })
    # Gate 1 (acceptance): the daemon answers everything, bit-exactly.
    assert report.errors == 0, f"{report.errors} requests failed"
    assert report.mismatches == 0, (
        f"{report.mismatches} daemon answers differed from in-process "
        f"query_batch — the serving layer changed results")
    assert report.answered == report.requests
    assert server["internal_errors"] == 0
    # Gate 2: the offered rate is under capacity — no request may be
    # rejected; an overload here is an admission-control bug.
    assert report.rejected == 0, (
        f"{report.rejected} requests rejected at an under-capacity rate")
    # Gate 3 (acceptance): micro-batching actually coalesced requests.
    assert server["batched_requests"] > 0, (
        "no two requests ever shared a dispatch — micro-batching inactive")
    assert server["batches_dispatched"] < report.requests
    # Gate 4 (multi-core only): the latency tail stays bounded.  On a
    # single cpu the client and server fight for the same core, so the
    # percentiles are recorded but not gated.
    p99_bound = float(os.environ.get("REPRO_SERVE_P99_MS", "500"))
    if _available_cpus() >= GATED_CPUS:
        assert latency["p99_ms"] <= p99_bound, (
            f"client p99 {latency['p99_ms']:.1f}ms over the "
            f"{p99_bound:.0f}ms bound ({_available_cpus()} cpus)")
