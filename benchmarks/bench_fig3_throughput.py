"""Figure 3 — throughput of the streaming kernel on the text workload.

Paper setup: points/second sustained by the core-set construction alone
(excluding stream I/O) on musiXmatch, for k in {8, 32, 128} and k' in
{k, 2k, 4k, 8k}; throughput is inversely proportional to both k and k',
ranging 3,078 - 544,920 points/s on their hardware.  The synthetic R^3
variant is faster (78k - 850k points/s) because distances are cheaper.

Scaled reproduction: same sweep shape at k in {8, 16, 32} on 1,500 docs
(vocab 400); absolute numbers depend on hardware, the monotone shape and
the text-slower-than-synthetic ordering are asserted.
"""

from __future__ import annotations

from common import emit, run_once
from repro.coresets.smm import SMM
from repro.datasets.synthetic import sphere_shell
from repro.datasets.text import zipf_bag_of_words
from repro.experiments.report import format_table
from repro.streaming.stream import ArrayStream
from repro.streaming.throughput import measure_throughput

KS = (8, 16, 32)
MULTIPLIERS = (1, 2, 4, 8)


def _sweep():
    docs = zipf_bag_of_words(1500, vocab_size=400, topics=24, seed=7)
    synth = sphere_shell(1500, 32, dim=3, seed=7)
    # Warm up numpy/BLAS paths so the first measured cell is not penalized.
    warmup = SMM(k=8, k_prime=8, metric=docs.metric)
    measure_throughput(warmup, ArrayStream(docs.points[:300]))
    rows = []
    throughputs = {}
    for dataset_name, data in (("text", docs), ("synthetic", synth)):
        for k in KS:
            for multiplier in MULTIPLIERS:
                sketch = SMM(k=k, k_prime=multiplier * k, metric=data.metric)
                report = measure_throughput(sketch, ArrayStream(data.points))
                rate = report.kernel_points_per_second
                throughputs[(dataset_name, k, multiplier)] = rate
                rows.append([dataset_name, k, f"{multiplier}k",
                             int(rate)])
    return rows, throughputs


def test_fig3_throughput(benchmark):
    rows, throughputs = run_once(benchmark, _sweep)
    emit("fig3_throughput", format_table(
        ["dataset", "k", "k'", "points/s (kernel)"], rows,
        title="Figure 3 (scaled): streaming kernel throughput",
    ))
    # Shape 1: throughput decreases as k' grows wherever the distance
    # kernel dominates — the text workload at every k, and the synthetic
    # workload at the largest k.  (At tiny k on 3-d data the per-point
    # Python overhead dominates and the trend washes out; the paper's
    # Scala kernel has the same flattening at its smallest settings.)
    for k in KS:
        first = throughputs[("text", k, 1)]
        last = throughputs[("text", k, 8)]
        assert last < first, f"text, k={k}: {first} -> {last}"
    assert throughputs[("synthetic", 32, 8)] < throughputs[("synthetic", 32, 1)]
    # Shape 2: the synthetic (cheap-distance) workload is faster than text
    # at the heaviest setting, as in the paper.
    assert throughputs[("synthetic", 32, 8)] > throughputs[("text", 32, 8)]
