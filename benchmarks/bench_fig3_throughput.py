"""Figure 3 — throughput of the streaming kernel on the text workload.

Paper setup: points/second sustained by the core-set construction alone
(excluding stream I/O) on musiXmatch, for k in {8, 32, 128} and k' in
{k, 2k, 4k, 8k}; throughput is inversely proportional to both k and k',
ranging 3,078 - 544,920 points/s on their hardware.  The synthetic R^3
variant is faster (78k - 850k points/s) because distances are cheaper.

Scaled reproduction: same sweep shape at k in {8, 16, 32} on 1,500 docs
(vocab 400); absolute numbers depend on hardware, the monotone shape and
the text-slower-than-synthetic ordering are asserted.  Every cell is also
measured through the batched ``process_batch`` ingestion path, which must
produce the same sketch while running far faster; the dedicated speedup
test pins that ratio at >= 5x on a >= 50k-point synthetic stream (the CI
smoke input; raise it with REPRO_FIG3_SPEEDUP_N).  Machine-readable
results land in benchmarks/results/BENCH_fig3_*.json for the CI artifact.
"""

from __future__ import annotations

import os

from common import emit, emit_json, run_once
from repro.coresets.smm import SMM
from repro.datasets.synthetic import sphere_shell
from repro.datasets.text import zipf_bag_of_words
from repro.experiments.report import format_table
from repro.streaming.stream import ArrayStream
from repro.streaming.throughput import measure_throughput

KS = (8, 16, 32)
MULTIPLIERS = (1, 2, 4, 8)
BATCH_SIZE = 1024


def _sweep():
    docs = zipf_bag_of_words(1500, vocab_size=400, topics=24, seed=7)
    synth = sphere_shell(1500, 32, dim=3, seed=7)
    # Warm up numpy/BLAS paths so the first measured cell is not penalized.
    warmup = SMM(k=8, k_prime=8, metric=docs.metric)
    measure_throughput(warmup, ArrayStream(docs.points[:300]))
    rows = []
    throughputs = {}
    batched_throughputs = {}
    for dataset_name, data in (("text", docs), ("synthetic", synth)):
        for k in KS:
            for multiplier in MULTIPLIERS:
                sketch = SMM(k=k, k_prime=multiplier * k, metric=data.metric)
                report = measure_throughput(sketch, ArrayStream(data.points))
                rate = report.kernel_points_per_second
                batched_sketch = SMM(k=k, k_prime=multiplier * k,
                                     metric=data.metric)
                batched_report = measure_throughput(
                    batched_sketch, ArrayStream(data.points),
                    batch_size=BATCH_SIZE)
                batched_rate = batched_report.kernel_points_per_second
                throughputs[(dataset_name, k, multiplier)] = rate
                batched_throughputs[(dataset_name, k, multiplier)] = batched_rate
                rows.append([dataset_name, k, f"{multiplier}k", int(rate),
                             int(batched_rate), f"{batched_rate / rate:.1f}x"])
    return rows, throughputs, batched_throughputs


def test_fig3_throughput(benchmark):
    rows, throughputs, batched_throughputs = run_once(benchmark, _sweep)
    emit("fig3_throughput", format_table(
        ["dataset", "k", "k'", "points/s (kernel)", "points/s (batched)",
         "speedup"], rows,
        title="Figure 3 (scaled): streaming kernel throughput",
    ))
    emit_json("fig3_throughput", {
        "batch_size": BATCH_SIZE,
        "cells": [
            {"dataset": dataset, "k": k, "k_prime_multiplier": multiplier,
             "per_point_pps": throughputs[(dataset, k, multiplier)],
             "batched_pps": batched_throughputs[(dataset, k, multiplier)]}
            for (dataset, k, multiplier) in sorted(throughputs)
        ],
    })
    # Shape 1: throughput decreases as k' grows wherever the distance
    # kernel dominates — the text workload at every k, and the synthetic
    # workload at the largest k.  (At tiny k on 3-d data the per-point
    # Python overhead dominates and the trend washes out; the paper's
    # Scala kernel has the same flattening at its smallest settings.)
    for k in KS:
        first = throughputs[("text", k, 1)]
        last = throughputs[("text", k, 8)]
        assert last < first, f"text, k={k}: {first} -> {last}"
    assert throughputs[("synthetic", 32, 8)] < throughputs[("synthetic", 32, 1)]
    # Shape 2: the synthetic (cheap-distance) workload is faster than text
    # at the heaviest setting, as in the paper.
    assert throughputs[("synthetic", 32, 8)] > throughputs[("text", 32, 8)]
    # Shape 3: batching never hurts the kernel rate at the heavy settings
    # where the per-point Python dispatch is the bottleneck.
    assert batched_throughputs[("text", 32, 8)] > throughputs[("text", 32, 8)]


#: Swept by the speedup probe so the recorded trajectory carries a real
#: (batch_size -> speedup) signal for ``tuning.recommend_batch_size``
#: to arg-max over, instead of a single point.
SPEEDUP_BATCH_SIZES = (256, BATCH_SIZE, 4096)


def _speedup_run():
    n = int(os.environ.get("REPRO_FIG3_SPEEDUP_N", "50000"))
    data = sphere_shell(n, 32, dim=3, seed=7)
    warmup = SMM(k=8, k_prime=32)
    measure_throughput(warmup, ArrayStream(data.points[:2000]),
                       batch_size=BATCH_SIZE)
    per_point = measure_throughput(SMM(k=8, k_prime=32),
                                   ArrayStream(data.points))
    batched = {
        size: measure_throughput(SMM(k=8, k_prime=32),
                                 ArrayStream(data.points), batch_size=size)
        for size in SPEEDUP_BATCH_SIZES
    }
    return n, per_point, batched


def test_fig3_batched_speedup(benchmark):
    """The batched ingestion path is the order-of-magnitude claim of the
    batching refactor: >= 5x the per-point kernel rate on a >= 50k-point
    synthetic stream (in practice it lands far higher).  The sweep over
    batch sizes feeds ``tuning.recommend_batch_size``."""
    n, per_point, batched = run_once(benchmark, _speedup_run)
    base = per_point.kernel_points_per_second
    speedups = {size: report.kernel_points_per_second / base
                for size, report in batched.items()}
    emit("fig3_batched_speedup", format_table(
        ["ingestion", "batch size", "points/s (kernel)", "speedup"],
        [["per-point", 1, int(base), "1.0x"]] +
        [["batched", size, int(batched[size].kernel_points_per_second),
          f"{speedups[size]:.1f}x"] for size in SPEEDUP_BATCH_SIZES],
        title=f"Batched vs per-point kernel ingestion (synthetic, n={n})",
    ))
    emit_json("fig3_batched_speedup", {
        "n": n,
        # Canonical single-point fields (the CI gate's batch size)...
        "batch_size": BATCH_SIZE,
        "per_point_pps": base,
        "batched_pps": batched[BATCH_SIZE].kernel_points_per_second,
        "speedup": speedups[BATCH_SIZE],
        # ...plus the full sweep recommend_batch_size arg-maxes over.
        "sweep": [
            {"batch_size": size,
             "batched_pps": batched[size].kernel_points_per_second,
             "speedup": speedups[size]}
            for size in SPEEDUP_BATCH_SIZES
        ],
    })
    assert per_point.points == n
    assert all(report.points == n for report in batched.values())
    assert speedups[BATCH_SIZE] >= 5.0, \
        f"batched speedup only {speedups[BATCH_SIZE]:.2f}x"
