"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark module reproduces one table or figure from Section 7 of the
paper at laptop scale (dataset sizes documented per module in DESIGN.md
section 4).  Conventions:

* each benchmark prints its paper-style table and also writes it to
  ``benchmarks/results/<experiment>.txt`` so the artifact survives pytest's
  output capture;
* each benchmark *asserts the qualitative shape* the paper reports (who
  wins, monotone trends), making the reproduction self-checking;
* timing of one representative configuration goes through the
  ``benchmark`` fixture so ``pytest benchmarks/ --benchmark-only`` shows a
  timing table per experiment.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def emit_json(experiment: str, payload: dict) -> None:
    """Persist machine-readable results as benchmarks/results/BENCH_<name>.json.

    These files are the perf trajectory: CI's benchmark smoke job uploads
    them as artifacts on every run, so regressions show up as a diffable
    number rather than a feeling.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the pytest-benchmark fixture.

    The experiments are deterministic sweeps; repeating them only to
    tighten timing variance would multiply runtimes for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
