"""Ablation (Section 7 text) — all six objectives through both models.

The paper reports remote-edge only, noting "we observed similar behaviors
for the other diversity measures, which are all implemented in our
software".  This ablation substantiates the claim for the reproduction:
for every objective, both the streaming and the MapReduce pipeline achieve
a ratio close to 1 against the strong reference, and increasing k' never
hurts.
"""

from __future__ import annotations

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.diversity.objectives import list_objectives
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream

N = 10_000
K = 8
K_PRIME = 32


def _sweep():
    points = sphere_shell(N, K, dim=3, seed=66)
    stream = ArrayStream(points.points)
    rows = []
    ratios = {}
    for objective in list_objectives():
        reference = reference_value(points, K, objective)
        mr = MRDiversityMaximizer(k=K, k_prime=K_PRIME, objective=objective,
                                  parallelism=4, seed=0).run(points)
        st = StreamingDiversityMaximizer(k=K, k_prime=K_PRIME,
                                         objective=objective).run(stream)
        mr_ratio = approximation_ratio(reference, mr.value)
        st_ratio = approximation_ratio(reference, st.value)
        ratios[objective] = (mr_ratio, st_ratio)
        rows.append([objective, round(mr_ratio, 4), round(st_ratio, 4)])
    return rows, ratios


def test_ablation_objectives(benchmark):
    rows, ratios = run_once(benchmark, _sweep)
    emit("ablation_objectives", format_table(
        ["objective", "MR ratio", "streaming ratio"], rows,
        title=f"Ablation: all six objectives, n={N}, k={K}, k'={K_PRIME}",
    ))
    for objective, (mr_ratio, st_ratio) in ratios.items():
        assert mr_ratio <= 1.8, f"{objective}: MR ratio {mr_ratio}"
        assert st_ratio <= 2.5, f"{objective}: streaming ratio {st_ratio}"
