"""Table 4 — CPPU (this paper) versus AFZ [4] on remote-clique.

Paper setup: 4M points in R^2 (sphere-shell distribution), 16 reducers,
k in {4, 6, 8}, CPPU run with k' = 128.  Result: CPPU achieves slightly
better ratios and is >= 3 orders of magnitude faster, because AFZ's
local-search core-set construction is superlinear in the partition size
while CPPU's GMM is O(n k' / l) per reducer.

Scaled reproduction: sphere-shell R^2 with 4 reducers, same k values and
k' = 128, at two dataset sizes (10k and 40k points).  At laptop scale the
absolute gap is smaller than three orders of magnitude, so the asserted
shape is (a) CPPU wins on time at both sizes, (b) the speedup *grows* with
n — the asymmetry that produces the paper's huge factor at 4M points —
and (c) CPPU's ratio is at least as good as AFZ's (within noise).
"""

from __future__ import annotations

from common import emit, run_once
from repro.baselines.afz import AFZDiversityMaximizer
from repro.datasets.synthetic import sphere_shell
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer

SIZES = (10_000, 40_000)
KS = (4, 6, 8)
PARALLELISM = 4
K_PRIME = 128


def _run_pair(points, k):
    reference = reference_value(points, k, "remote-clique")
    afz = AFZDiversityMaximizer(k=k, objective="remote-clique",
                                parallelism=PARALLELISM, seed=0)
    cppu = MRDiversityMaximizer(k=k, k_prime=K_PRIME,
                                objective="remote-clique",
                                parallelism=PARALLELISM, seed=0)
    afz_result = afz.run(points)
    cppu_result = cppu.run(points)
    return {
        "afz_ratio": approximation_ratio(reference, afz_result.value),
        "cppu_ratio": approximation_ratio(reference, cppu_result.value),
        "afz_time": afz_result.stats.total_wall_seconds,
        "cppu_time": cppu_result.stats.total_wall_seconds,
    }


def _sweep():
    rows = []
    cells = {}
    for n in SIZES:
        points = sphere_shell(n, max(KS), dim=2, seed=4242)
        for k in KS:
            cell = _run_pair(points, k)
            cells[(n, k)] = cell
            rows.append([
                n, k,
                round(cell["afz_ratio"], 4), round(cell["cppu_ratio"], 4),
                round(cell["afz_time"], 3), round(cell["cppu_time"], 3),
                round(cell["afz_time"] / cell["cppu_time"], 1),
            ])
    return rows, cells


def test_table4_cppu_vs_afz(benchmark):
    rows, cells = run_once(benchmark, _sweep)
    emit("table4_cppu_vs_afz", format_table(
        ["n", "k", "AFZ ratio", "CPPU ratio", "AFZ time (s)", "CPPU time (s)",
         "speedup"],
        rows,
        title="Table 4 (scaled): CPPU vs AFZ, remote-clique, sphere-shell R^2",
    ))
    large = SIZES[-1]
    small = SIZES[0]
    for k in KS:
        # (a) CPPU wins on time at the larger scale, clearly.
        assert cells[(large, k)]["afz_time"] > 2.0 * cells[(large, k)]["cppu_time"], (
            f"k={k}: AFZ {cells[(large, k)]['afz_time']:.2f}s vs "
            f"CPPU {cells[(large, k)]['cppu_time']:.2f}s"
        )
        # (b) the speedup grows with n (AFZ is superlinear, CPPU ~linear).
        speedup_small = cells[(small, k)]["afz_time"] / cells[(small, k)]["cppu_time"]
        speedup_large = cells[(large, k)]["afz_time"] / cells[(large, k)]["cppu_time"]
        assert speedup_large > speedup_small, (
            f"k={k}: speedup {speedup_small:.2f} -> {speedup_large:.2f}"
        )
        # (c) quality at least comparable (paper: CPPU slightly better).
        assert cells[(large, k)]["cppu_ratio"] <= cells[(large, k)]["afz_ratio"] * 1.05 + 0.02
