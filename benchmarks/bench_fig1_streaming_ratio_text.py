"""Figure 1 — streaming approximation ratio on the musiXmatch-like workload.

Paper setup: remote-edge ratios of the streaming algorithm on the
musiXmatch dataset (cosine distance) for k in {8, 32, 128} and
k' in {k, 2k, 4k, 8k}; ratios start around 1.2-1.4 for k'=k and drop
toward 1 as k' grows.

Scaled reproduction: synthetic Zipf bag-of-words (2,000 docs, vocab 400,
cosine distance), k in {8, 16, 32}, same k' multipliers, 3 shuffled trials
per cell (paper: >= 10 runs at 237k docs).
"""

from __future__ import annotations

import numpy as np

from common import emit, run_once
from repro.datasets.text import zipf_bag_of_words
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream

KS = (8, 16, 32)
MULTIPLIERS = (1, 2, 4, 8)
TRIALS = 3


def _sweep() -> list[list[object]]:
    docs = zipf_bag_of_words(2000, vocab_size=400, topics=24, seed=42)
    rows = []
    for k in KS:
        reference = reference_value(docs, k, "remote-edge")
        for multiplier in MULTIPLIERS:
            k_prime = multiplier * k
            values = []
            for trial in range(TRIALS):
                order = np.random.default_rng(trial).permutation(len(docs))
                algo = StreamingDiversityMaximizer(
                    k=k, k_prime=k_prime, objective="remote-edge",
                    metric="cosine",
                )
                result = algo.run(ArrayStream(docs.points[order]))
                values.append(result.value)
            ratio = approximation_ratio(reference, float(np.mean(values)))
            rows.append([k, f"{multiplier}k", k_prime, round(ratio, 4)])
    return rows


def test_fig1_streaming_ratio_text(benchmark):
    rows = run_once(benchmark, _sweep)
    emit("fig1_streaming_ratio_text", format_table(
        ["k", "k'", "k'(abs)", "approx ratio"], rows,
        title="Figure 1 (scaled): streaming remote-edge ratio, bag-of-words/cosine",
    ))
    # Shape check: for each k, the largest k' is at least as good as k'=k.
    by_k = {k: [r[3] for r in rows if r[0] == k] for k in KS}
    for k, ratios in by_k.items():
        assert ratios[-1] <= ratios[0] + 0.05, f"k={k}: {ratios}"
        assert all(r < 2.6 for r in ratios), f"k={k}: ratios out of envelope"
