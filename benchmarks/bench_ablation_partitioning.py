"""Ablation (Section 7.2 text) — adversarial vs random partitioning.

The paper: "we also experimented with an 'adversarial' partitioning of the
input: each reducer was given points coming from a region of small volume
... the approximation ratios worsen by up to 10%."

Reproduction: 2-round MR remote-edge on sphere-shell R^3 with random,
chunk, and adversarial (principal-axis slab) partitionings, averaged over
3 seeds.  Asserted shape: adversarial is never better than random, and the
degradation stays within a modest band (composability holds for arbitrary
partitions — it costs percent, not factors).
"""

from __future__ import annotations

import numpy as np

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer

N = 30_000
K = 16
K_PRIME = 32
TRIALS = 3


def _sweep():
    points = sphere_shell(N, K, dim=3, seed=55)
    reference = reference_value(points, K, "remote-edge")
    rows = []
    ratios = {}
    for strategy in ("random", "chunk", "adversarial"):
        values = []
        for trial in range(TRIALS):
            algo = MRDiversityMaximizer(
                k=K, k_prime=K_PRIME, objective="remote-edge",
                parallelism=8, partition_strategy=strategy, seed=trial,
            )
            values.append(algo.run(points).value)
        ratio = approximation_ratio(reference, float(np.mean(values)))
        ratios[strategy] = ratio
        rows.append([strategy, round(ratio, 4)])
    return rows, ratios


def test_ablation_partitioning(benchmark):
    rows, ratios = run_once(benchmark, _sweep)
    emit("ablation_partitioning", format_table(
        ["partitioning", "approx ratio"], rows,
        title="Ablation: partitioning strategy (MR remote-edge)",
    ))
    assert ratios["adversarial"] >= ratios["random"] - 0.02
    # Composability bounds the damage: stay within ~25% of random.
    assert ratios["adversarial"] <= ratios["random"] * 1.25 + 0.02
