"""Ablation (extension) — matroid-constrained diversity via core-sets.

The matroid extension ([1] in the paper's related work) inherits the
core-set scaling of the unconstrained problems: the GMM-EXT core-set path
should match the direct local search's quality at a fraction of its cost,
with the gap widening as n grows (local search touches the full pairwise
matrix, the core-set path only O(n k') distances).
"""

from __future__ import annotations

import time

import numpy as np

from common import emit, run_once
from repro.diversity.matroid import PartitionMatroid, solve_matroid_clique
from repro.experiments.report import format_table
from repro.metricspace.points import PointSet

SIZES = (2_000, 8_000)
CATEGORIES = 6
RANK_PER_CATEGORY = 1


def _instance(n: int) -> tuple[PointSet, PartitionMatroid]:
    rng = np.random.default_rng(n)
    points = PointSet(rng.random((n, 3)) * 10.0)
    categories = rng.integers(0, CATEGORIES, size=n)
    matroid = PartitionMatroid(categories,
                               {c: RANK_PER_CATEGORY for c in range(CATEGORIES)})
    return points, matroid


def _sweep():
    rows = []
    cells = {}
    for n in SIZES:
        points, matroid = _instance(n)
        start = time.perf_counter()
        _, direct_value = solve_matroid_clique(points, matroid,
                                               use_coreset=False)
        direct_time = time.perf_counter() - start
        start = time.perf_counter()
        _, coreset_value = solve_matroid_clique(points, matroid,
                                                use_coreset=True,
                                                k_prime=8 * matroid.rank)
        coreset_time = time.perf_counter() - start
        cells[n] = (direct_value, coreset_value, direct_time, coreset_time)
        rows.append([n, round(direct_value, 3), round(coreset_value, 3),
                     round(direct_time, 3), round(coreset_time, 3),
                     round(direct_time / max(coreset_time, 1e-9), 1)])
    return rows, cells


def test_ablation_matroid(benchmark):
    rows, cells = run_once(benchmark, _sweep)
    emit("ablation_matroid", format_table(
        ["n", "direct value", "core-set value", "direct time (s)",
         "core-set time (s)", "speedup"],
        rows,
        title="Ablation (extension): matroid-constrained remote-clique",
    ))
    for n, (direct_value, coreset_value, direct_time, coreset_time) in cells.items():
        # Quality: core-set path keeps >= 90% of direct local search.
        assert coreset_value >= 0.9 * direct_value, f"n={n}"
    # Cost: the core-set path wins at the larger size, and the gap grows.
    small_speedup = cells[SIZES[0]][2] / max(cells[SIZES[0]][3], 1e-9)
    large_speedup = cells[SIZES[1]][2] / max(cells[SIZES[1]][3], 1e-9)
    assert large_speedup > 1.0
    assert large_speedup > small_speedup
