"""Figure 4 — MapReduce approximation ratio vs parallelism and k'.

Paper setup: remote-edge ratios of the 2-round MR algorithm on the
100M-point synthetic dataset, k = 128 fixed, parallelism in {2, 4, 8, 16},
k' in {k, 2k, 4k, 8k}; ratios sit between 1.00 and 1.10, decrease with k',
and decrease with parallelism at fixed k' (a bigger aggregate core-set).

Scaled reproduction: 50,000 points, k = 32, same sweep shape, averaged
over 3 random partitionings.
"""

from __future__ import annotations

import numpy as np

from common import emit, run_once
from repro.datasets.synthetic import sphere_shell
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.experiments.report import format_table
from repro.mapreduce.algorithm import MRDiversityMaximizer

N = 50_000
K = 32
PARALLELISMS = (2, 4, 8, 16)
MULTIPLIERS = (1, 2, 4, 8)
TRIALS = 3


def _sweep():
    points = sphere_shell(N, K, dim=3, seed=99)
    reference = reference_value(points, K, "remote-edge")
    rows = []
    ratios = {}
    for parallelism in PARALLELISMS:
        for multiplier in MULTIPLIERS:
            values = []
            for trial in range(TRIALS):
                algo = MRDiversityMaximizer(
                    k=K, k_prime=multiplier * K, objective="remote-edge",
                    parallelism=parallelism, seed=trial,
                )
                values.append(algo.run(points).value)
            ratio = approximation_ratio(reference, float(np.mean(values)))
            ratios[(parallelism, multiplier)] = ratio
            rows.append([parallelism, f"{multiplier}k", round(ratio, 4)])
    return rows, ratios


def test_fig4_mr_ratio(benchmark):
    rows, ratios = run_once(benchmark, _sweep)
    emit("fig4_mr_ratio", format_table(
        ["parallelism", "k'", "approx ratio"], rows,
        title=f"Figure 4 (scaled): MR remote-edge ratio, sphere-shell R^3, k={K}",
    ))
    # Shape 1: at fixed parallelism, k'=8k is at least as good as k'=k.
    for parallelism in PARALLELISMS:
        assert ratios[(parallelism, 8)] <= ratios[(parallelism, 1)] + 0.02
    # Shape 2: all ratios live in the paper's tight band (close to 1).
    assert max(ratios.values()) < 1.35
    assert min(ratios.values()) >= 1.0 - 1e-6
    # Shape 3: at fixed k', more parallelism (bigger aggregate core-set)
    # does not hurt much; compare the extremes.
    assert ratios[(16, 1)] <= ratios[(2, 1)] + 0.05
