"""Seeded trial running and ratio bookkeeping.

Experiments in the paper average over at least ten runs; here every
configuration runs ``trials`` times with generators spawned from one master
seed, and :func:`summarize` reports mean/min/max, which the benchmark
modules print in paper-figure shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.utils.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class TrialOutcome:
    """One trial's achieved value and timing."""

    value: float
    seconds: float
    extra: dict = field(default_factory=dict)


def approximation_ratio(reference: float, achieved: float) -> float:
    """Paper-style ratio ``reference / achieved`` (>= 1 up to reference noise).

    A zero achieved value (possible for remote-edge when duplicates sneak
    into a solution) maps to ``inf``.
    """
    if achieved <= 0.0:
        return float("inf")
    return reference / achieved


def run_trials(run: Callable[[np.random.Generator], tuple[float, dict]],
               trials: int, seed: RngLike = 0) -> list[TrialOutcome]:
    """Execute *run* once per spawned RNG, timing each trial.

    *run* receives a fresh generator and returns ``(value, extra)``.
    """
    outcomes: list[TrialOutcome] = []
    for rng in spawn_rngs(seed, trials):
        start = time.perf_counter()
        value, extra = run(rng)
        seconds = time.perf_counter() - start
        outcomes.append(TrialOutcome(value=value, seconds=seconds, extra=extra))
    return outcomes


@dataclass(frozen=True)
class Summary:
    """Aggregate of a trial batch."""

    mean_value: float
    min_value: float
    max_value: float
    mean_seconds: float
    trials: int

    def ratio_against(self, reference: float) -> float:
        """Mean approximation ratio against a reference value."""
        return approximation_ratio(reference, self.mean_value)


def summarize(outcomes: list[TrialOutcome]) -> Summary:
    """Mean/min/max of trial values and mean wall time."""
    if not outcomes:
        raise ValueError("cannot summarize zero trials")
    values = np.asarray([o.value for o in outcomes])
    seconds = np.asarray([o.seconds for o in outcomes])
    return Summary(
        mean_value=float(values.mean()),
        min_value=float(values.min()),
        max_value=float(values.max()),
        mean_seconds=float(seconds.mean()),
        trials=len(outcomes),
    )
