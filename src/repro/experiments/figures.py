"""ASCII line charts for benchmark figures.

The benchmarks print paper-style tables; for quick visual inspection in a
terminal (or in ``benchmarks/results/``), this module renders one or more
``(x, y)`` series as a fixed-size ASCII chart, one glyph per series —
enough to see the monotone trends and crossovers the reproduction asserts.
"""

from __future__ import annotations

from typing import Sequence

GLYPHS = "ox+*#@%&"


def render_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named ``(xs, ys)`` series as an ASCII chart.

    Values are linearly mapped into a ``width x height`` grid; each series
    gets a glyph from :data:`GLYPHS` and a legend line.  Degenerate ranges
    (constant x or y) collapse to a single column/row gracefully.

    >>> chart = render_chart({"a": ([0, 1], [0, 1])}, width=10, height=4)
    >>> "a" in chart and "o" in chart
    True
    """
    if not series:
        raise ValueError("render_chart needs at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to render")
    all_x = [float(x) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    if not all_x:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for x, y in zip(xs, ys):
            column = round((float(x) - x_lo) / x_span * (width - 1))
            row = round((float(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][column] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_line = (" " * (margin + 1) + f"{x_lo:.4g}").ljust(margin + width - 6)
    lines.append(x_line + f"{x_hi:.4g}" + (f"  {x_label}" if x_label else ""))
    lines.extend(" " * (margin + 1) + entry for entry in legend)
    return "\n".join(lines)
