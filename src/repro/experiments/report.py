"""Plain-text rendering of paper-style tables and series.

Benchmarks print their reproduced figures as aligned text tables — one row
per parameter setting, matching the rows/series the paper plots — so the
terminal output of ``pytest benchmarks/`` doubles as the EXPERIMENTS.md
evidence.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table.

    >>> print(format_table(["k", "ratio"], [[8, 1.02], [32, 1.10]]))
    k   ratio
    --  -----
    8   1.02
    32  1.1
    """
    cells = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one figure series as ``name: (x -> y)`` pairs."""
    pairs = ", ".join(f"{_render(x)} -> {_render(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.001):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
