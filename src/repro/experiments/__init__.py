"""Experiment harness: reference solutions, trial running, and reports.

The paper computes approximation ratios against "the best solution found by
many runs of our MapReduce algorithm with maximum parallelism and large
local memory" (Section 7); :mod:`repro.experiments.reference` implements
that methodology, :mod:`repro.experiments.harness` runs seeded repeated
trials, and :mod:`repro.experiments.report` renders the paper-style tables
and series.
"""

from repro.experiments.reference import reference_value
from repro.experiments.harness import (
    TrialOutcome,
    approximation_ratio,
    run_trials,
    summarize,
)
from repro.experiments.report import format_table, format_series

__all__ = [
    "reference_value",
    "TrialOutcome",
    "approximation_ratio",
    "run_trials",
    "summarize",
    "format_table",
    "format_series",
]
