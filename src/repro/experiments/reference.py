"""Reference ("best known") solution values for approximation ratios.

Optimal values are intractable at experiment scale, so — following
Section 7 — the denominator of every reported ratio is the best value found
by strong reference runs: the core-set pipeline with generous ``k'`` and
parallelism, plus a local-search polish for remote-clique.  Ratios are
therefore ``reference / achieved >= achieved-agnostic lower bound`` and can
dip below the worst-case guarantee, exactly as in the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.coresets.gmm import gmm
from repro.diversity.local_search import local_search_remote_clique
from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_on_matrix
from repro.metricspace.points import PointSet
from repro.utils.validation import check_k_le_n


def reference_value(points: PointSet, k: int, objective: str | Objective,
                    kernel_multiplier: int = 16,
                    num_starts: int = 4) -> float:
    """Best diversity value found by strong reference runs.

    Strategy: build one large GMM kernel (``kernel_multiplier * k`` points,
    from several starting points), then on the kernel's pairwise matrix run
    the sequential solver from each start and — for the sum-type objectives —
    a local-search polish, keeping the best value observed.
    """
    objective = get_objective(objective)
    k = check_k_le_n(k, len(points))
    kernel_size = min(len(points), max(kernel_multiplier * k, k + 1))
    best = -np.inf
    starts = np.linspace(0, len(points) - 1, num=max(num_starts, 1), dtype=int)
    for start in starts:
        kernel = gmm(points, kernel_size, first_index=int(start))
        sub = points.subset(kernel.indices)
        dist = sub.pairwise()
        indices = solve_on_matrix(dist, k, objective)
        value = objective.value(dist[np.ix_(indices, indices)])
        best = max(best, value)
        if objective.name in ("remote-clique", "remote-star"):
            polished, _ = local_search_remote_clique(dist, k, initial=indices)
            value = objective.value(dist[np.ix_(polished, polished)])
            best = max(best, value)
    return float(best)
