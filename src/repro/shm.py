"""Reusable POSIX shared-memory data plane.

One process publishes a numpy array into a named
:class:`multiprocessing.shared_memory.SharedMemory` segment **once**; any
number of worker processes attach by a tiny picklable descriptor
(:class:`SharedArrayRef`) and read the rows zero-copy.  Two subsystems
consume this plane:

* the MapReduce engine (:mod:`repro.mapreduce.shm`) ships dataset
  partitions to reducer processes as descriptors instead of pickled rows;
* the query service's process executor (:mod:`repro.service.executors`)
  publishes rung core-sets and on-demand rung distance matrices so worker
  processes solve queries without ever copying the serving state through
  the IPC pipe.

Segments optionally carry an 8-byte **ready flag** ahead of the payload
(``flagged=True``), the substrate of the cross-process single-flight
protocol: the publisher allocates the (zero-filled) segment up front, and
the first worker to take the segment's stripe lock computes the payload,
writes it in place and flips the flag (:func:`fill_once`) — every later
worker sees the flag and reads instead of recomputing.

Lifecycle: :class:`SharedNDArray` owns its segment and unlinks it on
:meth:`~SharedNDArray.close` (idempotent), with a ``weakref.finalize``
backstop so crashed or careless drivers do not leak ``/dev/shm`` entries.
Worker-side attachments are cached per process
(:func:`set_attachment_cache_limit`) because attaching costs a syscall
plus a resource-tracker round trip.

Resource-tracker accounting: on CPython < 3.13 every attach registers the
segment name with the (pool-shared) resource tracker, whose per-name cache
is a set — worker registrations collapse into the publisher's own entry
and the publisher's unlink balances it.  Explicitly unregistering after
an attach would *break* that accounting (see the PR 2 engine notes); on
3.13+ attachments simply opt out via ``track=False``.  Either way worker
processes never double-register and the tracker stays silent.
"""

from __future__ import annotations

import inspect
import os
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

#: Where Linux exposes POSIX shm segments as files; attachment pruning
#: is a no-op on platforms without it.
_SHM_DIR = "/dev/shm"

#: Bytes reserved for the ready flag of ``flagged`` segments (one int64).
FLAG_BYTES = 8

#: Whether this interpreter's ``SharedMemory`` supports ``track=`` (3.13+),
#: letting attachments skip resource-tracker registration entirely.
_SUPPORTS_TRACK = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__).parameters

# Per-process cache of attached segments, keyed by segment name.  The
# limit bounds how much unlinked-but-mapped memory a worker can pin:
# MapReduce workers touch one dataset-sized segment at a time (limit 1,
# the historical default), while service query workers juggle several
# small core-set and matrix segments per batch and raise the limit in
# their pool initializer.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_ATTACH_CACHE_LIMIT = 1


def set_attachment_cache_limit(limit: int) -> None:
    """Set this process's attached-segment cache capacity (evicts now).

    Parameters
    ----------
    limit:
        Maximum number of segments kept mapped between calls; must be at
        least 1.  Raising the limit helps workers that revisit many small
        segments (the service's process executor); the default of 1 suits
        workers that stream through one large segment at a time.
    """
    global _ATTACH_CACHE_LIMIT
    _ATTACH_CACHE_LIMIT = max(int(limit), 1)
    _evict_attachments()


def _evict_attachments() -> None:
    while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
        _, stale = _ATTACHED.popitem(last=False)
        try:
            stale.close()
        except BufferError:  # pragma: no cover - a view still lives
            pass


def _prune_dead_attachments() -> None:
    """Drop cached attachments whose segment has been unlinked.

    A publisher-side eviction (or epoch retirement) unlinks a segment,
    but a worker's cached mapping keeps the pages alive — and since
    publishers never reuse names, such a mapping can never be hit again;
    it is pure pinned waste.  Pruning on every *new* attach bounds that
    waste to the window until the next unseen segment arrives, which
    under cache churn is exactly when dead segments accumulate.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return
    for name in list(_ATTACHED):
        if not os.path.exists(os.path.join(_SHM_DIR, name)):
            stale = _ATTACHED.pop(name)
            try:
                stale.close()
            except BufferError:  # pragma: no cover - a view still lives
                pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to the named segment, reusing this process's cached mapping.

    On CPython 3.13+ the attachment opts out of resource-tracker
    registration (``track=False``); on older interpreters the
    registration collapses into the publisher's entry (set semantics in
    the shared tracker) and is balanced by the publisher's unlink.
    """
    segment = _ATTACHED.get(name)
    if segment is None:
        _prune_dead_attachments()
        if _SUPPORTS_TRACK:  # pragma: no cover - 3.13+ only
            segment = shared_memory.SharedMemory(name=name, track=False)
        else:
            segment = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = segment
        _evict_attachments()
    else:
        _ATTACHED.move_to_end(name)
    return segment


def close_attachments() -> None:
    """Drop every cached attachment (best effort; views may pin some)."""
    while _ATTACHED:
        _, stale = _ATTACHED.popitem(last=False)
        try:
            stale.close()
        except BufferError:  # pragma: no cover - a view still lives
            pass


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable descriptor of one array living in a shared segment.

    A few dozen bytes cross the IPC pipe instead of the array's contents.
    ``flagged`` marks segments that reserve :data:`FLAG_BYTES` of header
    for the single-flight ready flag ahead of the payload.
    """

    name: str
    shape: tuple
    dtype: str
    flagged: bool = False

    @property
    def nbytes(self) -> int:
        """Total segment bytes (payload plus flag header when flagged)."""
        payload = int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize
        return payload + (FLAG_BYTES if self.flagged else 0)

    def resolve(self) -> np.ndarray:
        """The referenced array as a view over this process's attachment.

        Treat the view as read-only shared state unless this process is
        the one filling a flagged segment under its stripe lock.
        """
        segment = attach_segment(self.name)
        offset = FLAG_BYTES if self.flagged else 0
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                          buffer=segment.buf, offset=offset)

    def resolve_flag(self) -> np.ndarray:
        """The 0-d int64 ready-flag view of a flagged segment."""
        if not self.flagged:
            raise ValueError(f"segment {self.name!r} carries no ready flag")
        segment = attach_segment(self.name)
        return np.ndarray((), dtype=np.int64, buffer=segment.buf)


def fill_once(ref: SharedArrayRef, lock,
              compute: Callable[[], np.ndarray]) -> tuple[np.ndarray, bool]:
    """Fill a flagged segment exactly once under *lock*; return its array.

    The cross-process single-flight primitive: the caller holding *lock*
    (a :class:`multiprocessing.Lock`, typically one of a striped set)
    checks the ready flag, runs *compute* and publishes the result if the
    segment is still empty, and otherwise reads what an earlier holder
    published.  Returns ``(array, computed)`` where *computed* reports
    whether this call did the work — the publisher's stats accounting
    relies on exactly one caller per segment reporting ``True``.
    """
    flag = ref.resolve_flag()
    data = ref.resolve()
    with lock:
        if flag[()] == 0:
            data[...] = compute()
            flag[()] = 1
            return data, True
    return data, False


class SharedNDArray:
    """Publisher-side owner of one array in a shared-memory segment.

    Parameters
    ----------
    shape, dtype:
        Geometry of the payload array.  The segment is created zero-filled
        (the kernel guarantees this for fresh POSIX shm), which doubles as
        the "not ready" state of flagged segments.
    flagged:
        Reserve :data:`FLAG_BYTES` of header for a single-flight ready
        flag ahead of the payload.

    Example
    -------
    >>> owner = SharedNDArray.publish(np.arange(6.0).reshape(2, 3))
    >>> float(owner.ref.resolve()[1, 2])
    5.0
    >>> owner.close()
    """

    def __init__(self, shape: tuple, dtype="float64", flagged: bool = False):
        shape = tuple(int(side) for side in shape)
        dtype = np.dtype(dtype)
        payload = int(np.prod(shape)) * dtype.itemsize
        size = payload + (FLAG_BYTES if flagged else 0)
        self._segment = shared_memory.SharedMemory(create=True,
                                                   size=max(size, 1))
        self.ref = SharedArrayRef(name=self._segment.name, shape=shape,
                                  dtype=dtype.str, flagged=flagged)
        offset = FLAG_BYTES if flagged else 0
        self._array: np.ndarray | None = np.ndarray(
            shape, dtype=dtype, buffer=self._segment.buf, offset=offset)
        self._closed = False
        self._finalizer = weakref.finalize(self, release_segment,
                                           self._segment)

    @classmethod
    def publish(cls, array: np.ndarray, flagged: bool = False,
                ready: bool = True) -> "SharedNDArray":
        """Copy *array* into a fresh segment (its one IPC-visible copy).

        With ``flagged=True`` the ready flag is set according to *ready*
        — publishers of precomputed payloads mark them ready, publishers
        of to-be-filled slots leave them empty.
        """
        array = np.ascontiguousarray(array)
        owner = cls(array.shape, array.dtype, flagged=flagged)
        owner.array[...] = array
        if flagged and ready:
            np.ndarray((), dtype=np.int64,
                       buffer=owner._segment.buf)[()] = 1
        return owner

    @property
    def array(self) -> np.ndarray:
        """The publisher's own view of the payload."""
        if self._array is None:
            raise RuntimeError("SharedNDArray is closed")
        return self._array

    @property
    def nbytes(self) -> int:
        """Total bytes of the backing segment."""
        return self.ref.nbytes

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if not self._closed:
            self._closed = True
            self._array = None
            self._finalizer.detach()
            release_segment(self._segment)

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink *segment*, tolerating live views and double calls.

    A ``BufferError`` from ``close`` (some view still maps the buffer —
    possible when a finalizer fires before the views die) must not stop
    the unlink: removing the name is what prevents a ``/dev/shm`` leak,
    and the mapping itself dies with its holders.
    """
    try:
        segment.close()
    except BufferError:  # pragma: no cover - views outliving the owner
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
