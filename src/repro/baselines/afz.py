"""The AFZ baseline [4]: composable core-sets via local search.

Aghamolaei, Farhadi and Zarrabi-Zadeh build, for remote-clique, a
per-partition core-set by running the 1-swap local-search algorithm to a
local optimum — each swap costs ``O(n k)`` and the number of swaps is not
bounded by a small polynomial, which is why Table 4 of the paper finds AFZ
three orders of magnitude slower than the GMM-based CPPU while achieving
slightly worse ratios.  For remote-edge their construction coincides with
``GMM(S, k)``, so the interesting comparison (and the one Table 4 reports)
is remote-clique.

Structure mirrors :class:`~repro.mapreduce.algorithm.MRDiversityMaximizer`:
2 rounds, same partitioners, same engine — only the round-1 core-set
construction differs, exactly as in the paper's experimental setup ("we
implemented it in MapReduce with the same optimizations used for CPPU").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.diversity.local_search import local_search_remote_clique
from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_sequential
from repro.coresets.gmm import gmm
from repro.exceptions import ValidationError
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.model import JobStats
from repro.mapreduce.partition import partition_points
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int


def afz_local_search_coreset(partition: PointSet, size: int) -> PointSet:
    """AFZ round-1 core-set: local-search max-sum subset of *size* points.

    The cost is superlinear in the partition size because every swap
    re-scans all ``(outside, inside)`` pairs and the swap count grows with
    the data — the asymmetry Table 4 measures.
    """
    n = len(partition)
    if n <= size:
        return partition
    dist = partition.pairwise()
    indices, _ = local_search_remote_clique(dist, size)
    return partition.subset(indices)


def _afz_solve_reducer(coreset: PointSet, k: int, objective_name: str):
    """Final-round reducer: sequential solve on the aggregated core-set."""
    return solve_sequential(coreset, k, objective_name)


def _afz_reducer(partition: PointSet, size: int, use_local_search: bool) -> PointSet:
    if use_local_search:
        return afz_local_search_coreset(partition, size)
    n = len(partition)
    if n <= size:
        return partition
    return partition.subset(gmm(partition, size).indices)


@dataclass
class AFZResult:
    """Outcome of an AFZ run (same shape as :class:`MRResult` essentials)."""

    solution: PointSet
    value: float
    coreset_size: int
    partitions: int
    stats: JobStats
    swaps: int = 0


class AFZDiversityMaximizer:
    """2-round MapReduce driver for the AFZ composable core-sets.

    Supports ``remote-clique`` (local-search core-sets — the AFZ column of
    Table 4) and ``remote-edge`` (GMM core-sets of size exactly ``k``,
    which the paper notes makes AFZ equivalent to CPPU with ``k' = k``).
    """

    def __init__(self, k: int, objective: str | Objective = "remote-clique",
                 parallelism: int = 2, metric: str | Metric = "euclidean",
                 partition_strategy: str = "random", seed: RngLike = None,
                 executor: str = "serial"):
        self.k = check_positive_int(k, "k")
        self.objective = get_objective(objective)
        if self.objective.name not in ("remote-clique", "remote-edge"):
            raise ValidationError(
                "the AFZ baseline is implemented for remote-clique and "
                f"remote-edge, not {self.objective.name}"
            )
        self.parallelism = check_positive_int(parallelism, "parallelism")
        self.metric = get_metric(metric)
        self.partition_strategy = partition_strategy
        self.seed = seed
        # Persistent engine, mirroring MRDiversityMaximizer: repeated runs
        # (the Table 4 sweep) reuse one engine rather than rebuilding it.
        # The process executor ships pickled partitions (AFZ's round-1 cost
        # is dominated by the local search, not IPC, so the baseline does
        # not get the zero-copy treatment).
        self.engine = MapReduceEngine(parallelism=self.parallelism,
                                      executor=executor)

    def close(self) -> None:
        """Release engine resources (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "AFZDiversityMaximizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, points: PointSet) -> AFZResult:
        """Two rounds: local-search core-sets, then sequential solve."""
        engine = self.engine
        stats = engine.begin_job()
        partitions = partition_points(points, self.parallelism,
                                      strategy=self.partition_strategy,
                                      seed=self.seed)
        use_local_search = self.objective.name == "remote-clique"
        reducer = partial(_afz_reducer, size=self.k,
                          use_local_search=use_local_search)
        coresets = engine.run_round(partitions, reducer)
        union = coresets[0]
        for part in coresets[1:]:
            union = union.concat(part)
        # Round 2 (through the engine, like CPPU, so timings are comparable).
        outputs = engine.run_round(
            [union],
            partial(_afz_solve_reducer, k=self.k, objective_name=self.objective.name),
        )
        indices, value = outputs[0]
        return AFZResult(
            solution=union.subset(indices), value=value,
            coreset_size=len(union), partitions=len(partitions),
            stats=stats,
        )
