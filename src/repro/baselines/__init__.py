"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.afz` — Aghamolaei, Farhadi, Zarrabi-Zadeh (CCCG'15)
  composable core-sets: local search per partition for remote-clique (the
  AFZ column of Table 4) and GMM for remote-edge.
* :mod:`repro.baselines.immm` — Indyk, Mahabadi, Mahdian, Mirrokni
  (PODS'14): the streaming recipe that splits the stream into
  ``sqrt(n/k)`` blocks of ``sqrt(nk)`` points and keeps a size-``k``
  core-set per block.
* :mod:`repro.baselines.random_subset` — the naive uniform-sample baseline.
"""

from repro.baselines.afz import AFZDiversityMaximizer, afz_local_search_coreset
from repro.baselines.immm import IMMMStreamingMaximizer
from repro.baselines.random_subset import random_subset_solution

__all__ = [
    "AFZDiversityMaximizer",
    "afz_local_search_coreset",
    "IMMMStreamingMaximizer",
    "random_subset_solution",
]
