"""The naive baseline: a uniform random size-``k`` subset.

Useful as a floor in experiments — any core-set pipeline should beat it
decisively on the adversarial sphere-shell datasets, whose diverse points
are a vanishing fraction of the input.
"""

from __future__ import annotations

import numpy as np

from repro.diversity.objectives import Objective, get_objective
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_k_le_n


def random_subset_solution(points: PointSet, k: int,
                           objective: str | Objective,
                           seed: RngLike = None) -> tuple[PointSet, float]:
    """Uniformly sample ``k`` points and evaluate the objective on them."""
    objective = get_objective(objective)
    k = check_k_le_n(k, len(points))
    rng = ensure_rng(seed)
    indices = rng.choice(len(points), size=k, replace=False)
    solution = points.subset(indices)
    return solution, objective.value(solution.pairwise())
