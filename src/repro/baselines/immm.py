"""The IMMM streaming baseline [23] (Indyk et al., PODS 2014).

Their streaming recipe partitions the stream of ``n`` points into
``sqrt(n/k)`` consecutive blocks of ``sqrt(nk)`` points, computes a
size-``k`` composable core-set of each block, and keeps the union —
``sqrt(kn)`` points of memory, *growing with the stream*, versus the
stream-length-independent memory of SMM (the comparison motivating
Section 4).  Core-sets per block use GMM (their construction for
remote-edge; also a valid 3-composable core-set in general spaces).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.coresets.gmm import gmm
from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_sequential
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.points import PointSet
from repro.streaming.stream import Stream
from repro.utils.validation import check_positive_int


@dataclass
class IMMMResult:
    """Outcome of an IMMM streaming run."""

    solution: PointSet
    value: float
    coreset_size: int
    blocks: int
    peak_memory_points: int


class IMMMStreamingMaximizer:
    """Block-based streaming diversity maximization of [23].

    Parameters
    ----------
    k:
        Solution size (also the per-block core-set size).
    expected_n:
        Expected stream length, used to size blocks at ``sqrt(k * n)`` as
        in the paper; the last block may be shorter.
    """

    def __init__(self, k: int, expected_n: int,
                 objective: str | Objective = "remote-edge",
                 metric: str | Metric = "euclidean"):
        self.k = check_positive_int(k, "k")
        self.expected_n = check_positive_int(expected_n, "expected_n")
        self.objective = get_objective(objective)
        self.metric = get_metric(metric)
        self.block_size = max(self.k, int(math.ceil(math.sqrt(self.k * self.expected_n))))

    def run(self, stream: Stream) -> IMMMResult:
        """One pass: per-block GMM core-sets, union, sequential solve."""
        kept: list[np.ndarray] = []
        block: list[np.ndarray] = []
        blocks = 0
        peak_memory = 0
        for point in stream:
            block.append(np.asarray(point, dtype=np.float64).reshape(-1))
            peak_memory = max(peak_memory, len(kept) + len(block))
            if len(block) == self.block_size:
                kept.extend(self._summarize_block(block))
                blocks += 1
                block = []
        if block:
            kept.extend(self._summarize_block(block))
            blocks += 1
        peak_memory = max(peak_memory, len(kept))
        coreset = PointSet(np.vstack(kept), self.metric)
        indices, value = solve_sequential(coreset, self.k, self.objective)
        return IMMMResult(
            solution=coreset.subset(indices), value=value,
            coreset_size=len(coreset), blocks=blocks,
            peak_memory_points=peak_memory,
        )

    def _summarize_block(self, block: list[np.ndarray]) -> list[np.ndarray]:
        points = PointSet(np.vstack(block), self.metric)
        if len(points) <= self.k:
            return [row for row in points.points]
        result = gmm(points, self.k)
        return [points.points[i] for i in result.indices]
