"""MapReduce bookkeeping records.

The model's two resource parameters are the local memory ``M_L`` available
to one reducer and the total memory ``M_T`` across the round.  Memory is
counted in *points*, the natural unit for these algorithms (a point is a
fixed-size vector; counting bytes would only multiply by ``8 d``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundStats:
    """Resources used by one MapReduce round.

    ``local_memory_points`` is the maximum, over reducers, of the reducer's
    input size plus its output size — the M_L actually needed to run it.
    """

    round_index: int
    num_reducers: int
    local_memory_points: int
    total_memory_points: int
    wall_seconds: float


@dataclass
class JobStats:
    """Accumulated statistics for a multi-round MapReduce job."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Rounds recorded so far."""
        return len(self.rounds)

    @property
    def max_local_memory_points(self) -> int:
        """``M_L``: the largest per-reducer memory over all rounds."""
        return max((r.local_memory_points for r in self.rounds), default=0)

    @property
    def max_total_memory_points(self) -> int:
        """``M_T``: the largest round-total memory."""
        return max((r.total_memory_points for r in self.rounds), default=0)

    @property
    def total_wall_seconds(self) -> float:
        """Wall time summed over all recorded rounds."""
        return sum(r.wall_seconds for r in self.rounds)

    def add(self, stats: RoundStats) -> None:
        """Record one completed round."""
        self.rounds.append(stats)
