"""The simulated MapReduce engine.

A *round* takes a list of reducer inputs (one per reducer), applies a
reducer function to each, and returns the outputs.  The engine measures
wall time and memory (in points, via a caller-provided sizing function) per
round, and can run reducers serially or on a ``ProcessPoolExecutor`` —
real processes, so the scalability experiment measures genuine parallel
speedup rather than GIL-bound threads.

Pool lifecycle
--------------
The process pool is **persistent**: it is created lazily on the first
process round and reused across every subsequent round and job until
:meth:`MapReduceEngine.close` (or the context manager exit, or garbage
collection) shuts it down.  The per-round alternative — spawn a fresh pool,
fork workers, tear it down — costs tens of milliseconds per round and used
to dominate the scalability benchmark; ``pool_mode="per-round"`` keeps that
behaviour available as a measurable baseline
(``benchmarks/bench_engine_pool.py`` gates the persistent pool's advantage
in CI).

Reducer functions submitted to the process executor must be picklable
(module-level functions); the library's algorithm module obeys this.
Payloads may be :class:`~repro.mapreduce.shm.SharedPartition` descriptors,
which ship zero-copy through the pipe and resolve against shared memory
inside the worker.
"""

from __future__ import annotations

import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.exceptions import MemoryBudgetExceededError, ValidationError
from repro.mapreduce.model import JobStats, RoundStats

SizeFn = Callable[[Any], int]


def _default_size(payload: Any) -> int:
    """Best-effort size of a payload in points."""
    try:
        return len(payload)
    except TypeError:
        return 1


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    # wait=False: GC-triggered cleanup must not block the caller; the
    # workers exit as soon as they drain their current item.
    pool.shutdown(wait=False)


class MapReduceEngine:
    """Round-based executor with memory accounting.

    Parameters
    ----------
    parallelism:
        Number of worker processes for the ``"process"`` executor (and the
        nominal reducer count reported in stats).
    executor:
        ``"serial"`` (default; deterministic, zero IPC overhead) or
        ``"process"`` (real multiprocessing, for timing experiments).
    local_memory_limit:
        Optional hard cap on per-reducer memory in points; exceeding it
        raises :class:`MemoryBudgetExceededError`, which is how tests pin
        down the ``M_L`` guarantees of Theorems 6-10.
    pool_mode:
        ``"persistent"`` (default): one pool reused across all rounds and
        jobs.  ``"per-round"``: a fresh pool per round — the historical
        behaviour, kept as the baseline the engine-overhead benchmark
        measures against.
    """

    def __init__(self, parallelism: int = 1, executor: str = "serial",
                 local_memory_limit: int | None = None,
                 pool_mode: str = "persistent"):
        if parallelism < 1:
            raise ValidationError(f"parallelism must be >= 1, got {parallelism}")
        if executor not in ("serial", "process"):
            raise ValidationError(f"executor must be 'serial' or 'process', got {executor!r}")
        if pool_mode not in ("persistent", "per-round"):
            raise ValidationError(
                f"pool_mode must be 'persistent' or 'per-round', got {pool_mode!r}")
        self.parallelism = parallelism
        self.executor = executor
        self.local_memory_limit = local_memory_limit
        self.pool_mode = pool_mode
        self.stats = JobStats()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None

    # -- pool lifecycle ----------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.parallelism)
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        The engine stays usable: the next process round starts a fresh
        pool.
        """
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- job accounting ----------------------------------------------------------
    def begin_job(self) -> JobStats:
        """Start a fresh :class:`JobStats` (the pool, if any, is kept warm).

        The engine outlives individual jobs; each driver-level ``run``
        calls this so its result reports only its own rounds.
        """
        self.stats = JobStats()
        return self.stats

    # -- rounds ------------------------------------------------------------------
    def run_round(
        self,
        inputs: Sequence[Any],
        reducer: Callable[[Any], Any],
        size_fn: SizeFn = _default_size,
    ) -> list[Any]:
        """Apply *reducer* to every input, recording a :class:`RoundStats`."""
        if not inputs:
            raise ValidationError("a MapReduce round needs at least one reducer input")
        start = time.perf_counter()
        if self.executor == "process" and len(inputs) > 1:
            if self.pool_mode == "persistent":
                try:
                    outputs = list(self._ensure_pool().map(reducer, inputs))
                except BrokenExecutor:
                    # A dead worker (OOM kill, native crash) poisons the
                    # whole executor.  Drop it so the next round starts a
                    # fresh pool instead of failing forever — the
                    # self-healing the per-round mode had by construction.
                    self.close()
                    raise
            else:
                with ProcessPoolExecutor(max_workers=self.parallelism) as pool:
                    outputs = list(pool.map(reducer, inputs))
        else:
            outputs = [reducer(payload) for payload in inputs]
        wall = time.perf_counter() - start

        local_memories = [
            size_fn(payload) + size_fn(output)
            for payload, output in zip(inputs, outputs)
        ]
        local_memory = max(local_memories)
        total_memory = sum(size_fn(payload) for payload in inputs)
        stats = RoundStats(
            round_index=self.stats.num_rounds,
            num_reducers=len(inputs),
            local_memory_points=local_memory,
            total_memory_points=total_memory,
            wall_seconds=wall,
        )
        if self.local_memory_limit is not None and local_memory > self.local_memory_limit:
            raise MemoryBudgetExceededError(
                local_memory, self.local_memory_limit,
                context=f"round {stats.round_index}",
            )
        self.stats.add(stats)
        return outputs
