"""The simulated MapReduce engine.

A *round* takes a list of reducer inputs (one per reducer), applies a
reducer function to each, and returns the outputs.  The engine measures
wall time and memory (in points, via a caller-provided sizing function) per
round, and can run reducers serially or on a ``ProcessPoolExecutor`` —
real processes, so the scalability experiment measures genuine parallel
speedup rather than GIL-bound threads.

Reducer functions submitted to the process executor must be picklable
(module-level functions); the library's algorithm module obeys this.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.exceptions import MemoryBudgetExceededError, ValidationError
from repro.mapreduce.model import JobStats, RoundStats

SizeFn = Callable[[Any], int]


def _default_size(payload: Any) -> int:
    """Best-effort size of a payload in points."""
    try:
        return len(payload)
    except TypeError:
        return 1


class MapReduceEngine:
    """Round-based executor with memory accounting.

    Parameters
    ----------
    parallelism:
        Number of worker processes for the ``"process"`` executor (and the
        nominal reducer count reported in stats).
    executor:
        ``"serial"`` (default; deterministic, zero IPC overhead) or
        ``"process"`` (real multiprocessing, for timing experiments).
    local_memory_limit:
        Optional hard cap on per-reducer memory in points; exceeding it
        raises :class:`MemoryBudgetExceededError`, which is how tests pin
        down the ``M_L`` guarantees of Theorems 6-10.
    """

    def __init__(self, parallelism: int = 1, executor: str = "serial",
                 local_memory_limit: int | None = None):
        if parallelism < 1:
            raise ValidationError(f"parallelism must be >= 1, got {parallelism}")
        if executor not in ("serial", "process"):
            raise ValidationError(f"executor must be 'serial' or 'process', got {executor!r}")
        self.parallelism = parallelism
        self.executor = executor
        self.local_memory_limit = local_memory_limit
        self.stats = JobStats()

    def run_round(
        self,
        inputs: Sequence[Any],
        reducer: Callable[[Any], Any],
        size_fn: SizeFn = _default_size,
    ) -> list[Any]:
        """Apply *reducer* to every input, recording a :class:`RoundStats`."""
        if not inputs:
            raise ValidationError("a MapReduce round needs at least one reducer input")
        start = time.perf_counter()
        if self.executor == "process" and len(inputs) > 1:
            with ProcessPoolExecutor(max_workers=self.parallelism) as pool:
                outputs = list(pool.map(reducer, inputs))
        else:
            outputs = [reducer(payload) for payload in inputs]
        wall = time.perf_counter() - start

        local_memories = [
            size_fn(payload) + size_fn(output)
            for payload, output in zip(inputs, outputs)
        ]
        local_memory = max(local_memories)
        total_memory = sum(size_fn(payload) for payload in inputs)
        stats = RoundStats(
            round_index=self.stats.num_rounds,
            num_reducers=len(inputs),
            local_memory_points=local_memory,
            total_memory_points=total_memory,
            wall_seconds=wall,
        )
        if self.local_memory_limit is not None and local_memory > self.local_memory_limit:
            raise MemoryBudgetExceededError(
                local_memory, self.local_memory_limit,
                context=f"round {stats.round_index}",
            )
        self.stats.add(stats)
        return outputs
