"""MapReduce diversity maximization (Theorems 6, 7, 8 and 10).

Four drivers over the composable core-set constructions:

* :meth:`MRDiversityMaximizer.run` — the deterministic 2-round algorithm:
  round one builds a per-partition core-set (GMM or GMM-EXT), round two
  solves sequentially on the union (Theorem 6).
* ``randomized=True`` — the randomized 2-round variant (Theorem 7): random
  partitioning lets every reducer keep only
  ``Theta(max(log n, k/l))`` delegates per kernel point.
* :meth:`MRDiversityMaximizer.run_three_round` — generalized core-sets
  (GMM-GEN) with a third round that re-materializes delegates, saving a
  factor ``sqrt(k)`` of local memory (Theorem 10).
* :meth:`MRDiversityMaximizer.run_multi_round` — the recursive strategy of
  Theorem 8 for local memories too small for one aggregation level.

All reducer work is dispatched through
:class:`~repro.mapreduce.engine.MapReduceEngine`, so per-round memory and
timing are recorded uniformly, and reducer functions are module-level (hence
picklable) for the process-pool executor.

Zero-copy execution
-------------------
With ``executor="process"`` the driver publishes the dataset to shared
memory once per job (:class:`~repro.mapreduce.shm.SharedDataset`), ships
partitions as :class:`~repro.mapreduce.shm.SharedPartition` descriptors,
and receives round outputs as *index sets* into the shared block wherever
the construction is a point subset (GMM / GMM-EXT rounds, and the 3-round
algorithm's delegate-instantiation round).  Only the generalized-core-set
payloads — ``O(k')`` kernel points with multiplicities — ever cross the
pipe as point data.  The engine's worker pool is persistent: it is reused
across rounds and across ``run`` / ``run_three_round`` / ``run_multi_round``
calls on the same maximizer (use the maximizer as a context manager, or
call :meth:`MRDiversityMaximizer.close`, to shut it down deterministically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Any

import numpy as np

from repro.coresets.composable import (
    build_composable_coreset,
    composable_coreset_indices,
    union_coresets,
)
from repro.coresets.generalized import GeneralizedCoreset
from repro.diversity.generalized import instantiate_offline, solve_generalized
from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_sequential
from repro.exceptions import ValidationError
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.model import JobStats
from repro.mapreduce.partition import (
    materialize_selector,
    partition_selectors,
)
from repro.mapreduce.shm import SharedDataset, SharedPartition, resolve_payload
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int


@dataclass
class MRResult:
    """Outcome of a MapReduce diversity run."""

    solution: PointSet
    value: float
    coreset_size: int
    partitions: int
    rounds: int
    stats: JobStats
    extra: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Size of the returned solution."""
        return len(self.solution)


@dataclass
class MRCoresetResult:
    """Outcome of a coreset-only MapReduce build (round one, no solve).

    The build-once/serve-many query service
    (:mod:`repro.service`) consumes these: the aggregated core-set is the
    cached substrate every ``k <= k'`` query is answered from, so the
    expensive round-1 pass is amortized across arbitrarily many queries.
    """

    coreset: PointSet
    k: int
    k_prime: int
    partitions: int
    stats: JobStats
    extra: dict = field(default_factory=dict)


def randomized_delegate_cap(n: int, k: int, parts: int) -> int:
    """Per-cluster delegate budget for the randomized 2-round algorithm.

    Theorem 7's balls-into-bins argument: with random partitioning, no
    partition holds more than ``Theta(max(log n, k/l))`` points of the
    optimal solution w.h.p., so that many delegates per kernel point
    suffice.  We use ``2 * max(ceil(ln n), ceil(k/l))``, capped at ``k``.
    """
    if n < 2:
        return 1
    cap = 2 * max(math.ceil(math.log(n)), math.ceil(k / parts))
    return max(1, min(k, cap))


# -- module-level reducers (picklable for the process executor) ---------------

def _coreset_reducer(partition: PointSet | SharedPartition, k: int, k_prime: int,
                     objective_name: str, use_generalized: bool,
                     delegate_cap: int | None) -> Any:
    """Round-1 reducer: build this partition's composable core-set."""
    return build_composable_coreset(
        resolve_payload(partition), k, k_prime, objective_name,
        use_generalized=use_generalized, delegate_cap=delegate_cap,
    )


def _coreset_indices_reducer(partition: SharedPartition, k: int, k_prime: int,
                             objective_name: str,
                             delegate_cap: int | None) -> np.ndarray:
    """Round-1 reducer, zero-copy reply path: global core-set indices.

    The partition arrives as a shared-memory descriptor and the reply is an
    index set into the shared dataset — point rows never cross the pipe.
    """
    local = composable_coreset_indices(
        partition.materialize(), k, k_prime, objective_name,
        delegate_cap=delegate_cap,
    )
    return partition.global_indices(local)


def _instantiation_reducer(payload: tuple[PointSet | SharedPartition,
                                          GeneralizedCoreset | None]) -> np.ndarray:
    """Round-3 reducer: materialize delegates for local kernel points."""
    partition, subset = payload
    partition = resolve_payload(partition)
    if subset is None or subset.size == 0:
        return np.empty((0, partition.dim), dtype=partition.points.dtype)
    indices, _ = instantiate_offline(subset, partition, delta=float("inf"))
    return partition.points[indices]


def _instantiation_indices_reducer(
        payload: tuple[SharedPartition, GeneralizedCoreset | None]) -> np.ndarray:
    """Round-3 reducer, zero-copy reply path: global delegate indices."""
    ref, subset = payload
    if subset is None or subset.size == 0:
        return np.empty(0, dtype=np.intp)
    indices, _ = instantiate_offline(subset, ref.materialize(),
                                     delta=float("inf"))
    return ref.global_indices(indices)


def _payload_size(payload: Any) -> int:
    """Memory of a reducer payload, in points."""
    if payload is None:
        return 0
    if isinstance(payload, GeneralizedCoreset):
        return payload.size
    if isinstance(payload, tuple):
        return sum(_payload_size(item) for item in payload)
    try:
        return len(payload)
    except TypeError:
        return 1


class MRDiversityMaximizer:
    """Composable-core-set MapReduce algorithm (CPPU in the paper's Table 4).

    Parameters
    ----------
    k:
        Solution size.
    k_prime:
        Kernel size ``k'`` per partition; Figure 4 explores multiples of k.
    objective:
        Diversity objective (name or instance).
    parallelism:
        Number of partitions ``l`` (= reducers in round one).
    metric:
        Metric of the point space.
    partition_strategy:
        ``"random"`` (default), ``"chunk"`` or ``"adversarial"``.
    executor:
        ``"serial"`` or ``"process"`` (see :class:`MapReduceEngine`).  The
        process executor keeps a persistent worker pool and ships
        partitions zero-copy through shared memory; results are identical
        to serial execution for the same seed.

    Example
    -------
    >>> import numpy as np
    >>> points = PointSet(np.random.default_rng(0).normal(size=(500, 3)))
    >>> algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-edge",
    ...                             parallelism=4)
    >>> result = algo.run(points)
    >>> result.k, result.rounds
    (8, 2)
    """

    def __init__(self, k: int, k_prime: int, objective: str | Objective,
                 parallelism: int = 2, metric: str | Metric = "euclidean",
                 partition_strategy: str = "random", executor: str = "serial",
                 seed: RngLike = None, pool_mode: str = "persistent"):
        self.k = check_positive_int(k, "k")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        if self.k_prime < self.k:
            raise ValidationError(f"k' must be at least k, got k'={k_prime} < k={k}")
        self.objective = get_objective(objective)
        self.parallelism = check_positive_int(parallelism, "parallelism")
        self.metric = get_metric(metric)
        self.partition_strategy = partition_strategy
        self.executor = executor
        self.seed = seed
        # One engine per maximizer: its worker pool persists across rounds
        # and across run()/run_three_round()/run_multi_round() calls.
        self.engine = MapReduceEngine(parallelism=self.parallelism,
                                      executor=executor, pool_mode=pool_mode)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "MRDiversityMaximizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def _zero_copy(self) -> bool:
        return self.engine.executor == "process"

    # -- coreset-only build (round one) ------------------------------------------
    def _build_union(self, points: PointSet, selectors: list,
                     k: int, k_prime: int,
                     delegate_cap: int | None) -> PointSet:
        """Run the core-set round and aggregate the partition core-sets.

        Serial and process executors produce bit-identical unions for the
        same selectors: the zero-copy path gathers per-partition *global
        index sets* in partition order and takes those rows from the shared
        block, which is row-for-row the serial path's subset-and-concat.
        """
        if self._zero_copy:
            with SharedDataset(points) as shared:
                reducer = partial(
                    _coreset_indices_reducer, k=k, k_prime=k_prime,
                    objective_name=self.objective.name,
                    delegate_cap=delegate_cap,
                )
                outputs = self.engine.run_round(shared.partitions(selectors),
                                                reducer, size_fn=_payload_size)
                return shared.point_set(np.concatenate(outputs))
        reducer = partial(
            _coreset_reducer, k=k, k_prime=k_prime,
            objective_name=self.objective.name, use_generalized=False,
            delegate_cap=delegate_cap,
        )
        coresets = self.engine.run_round(
            [materialize_selector(points, s) for s in selectors],
            reducer, size_fn=_payload_size)
        return union_coresets(coresets)

    def build_coreset(self, points: PointSet, randomized: bool = False,
                      k: int | None = None,
                      k_prime: int | None = None) -> MRCoresetResult:
        """Round one alone: build and aggregate the composable core-set.

        This is the ingest half of the build-once/serve-many split: the
        returned core-set is a valid substrate for *every* sequential query
        with ``k <= k'`` (Definition 2), so callers — most prominently
        :class:`repro.service.DiversityService` — cache it and amortize
        this pass across many queries.  *k* / *k_prime* override the
        constructor parameters per call, letting one maximizer (and its
        persistent worker pool) build a whole ladder of resolutions.
        """
        k = self.k if k is None else check_positive_int(k, "k")
        k_prime = (self.k_prime if k_prime is None
                   else check_positive_int(k_prime, "k_prime"))
        if k_prime < k:
            raise ValidationError(f"k' must be at least k, got k'={k_prime} < k={k}")
        stats = self.engine.begin_job()
        # Theorem 7's balls-into-bins bound needs genuinely random keys.
        strategy = "random" if randomized else self.partition_strategy
        selectors = partition_selectors(points, self.parallelism,
                                        strategy=strategy, seed=self.seed)
        delegate_cap = None
        if randomized and self.objective.requires_injective_proxy:
            delegate_cap = randomized_delegate_cap(len(points), k,
                                                   len(selectors))
        union = self._build_union(points, selectors, k, k_prime, delegate_cap)
        return MRCoresetResult(
            coreset=union, k=k, k_prime=k_prime, partitions=len(selectors),
            stats=stats,
            extra={"randomized": randomized, "delegate_cap": delegate_cap,
                   "zero_copy": self._zero_copy},
        )

    # -- 2-round algorithms ------------------------------------------------------
    def run(self, points: PointSet, randomized: bool = False) -> MRResult:
        """Deterministic (or randomized, Theorem 7) 2-round algorithm."""
        build = self.build_coreset(points, randomized=randomized)
        union = build.coreset
        # Round 2: one reducer solves sequentially on the aggregated core-set.
        outputs = self.engine.run_round(
            [union], partial(_solve_reducer, k=self.k,
                             objective_name=self.objective.name),
            size_fn=_payload_size,
        )
        indices, value = outputs[0]
        solution = union.subset(indices)
        return MRResult(
            solution=solution, value=value, coreset_size=len(union),
            partitions=build.partitions, rounds=2, stats=build.stats,
            extra=build.extra,
        )

    # -- 3-round generalized algorithm (Theorem 10) -------------------------------
    def run_three_round(self, points: PointSet) -> MRResult:
        """Generalized core-sets + delegate instantiation round."""
        if not self.objective.requires_injective_proxy:
            raise ValidationError(
                f"{self.objective.name} does not need generalized core-sets; "
                "use run()"
            )
        stats = self.engine.begin_job()
        selectors = partition_selectors(points, self.parallelism,
                                        strategy=self.partition_strategy,
                                        seed=self.seed)
        shared: SharedDataset | None = None
        try:
            if self._zero_copy:
                shared = SharedDataset(points)
                partitions: list[Any] = shared.partitions(selectors)
            else:
                partitions = [materialize_selector(points, s)
                              for s in selectors]
            reducer = partial(
                _coreset_reducer, k=self.k, k_prime=self.k_prime,
                objective_name=self.objective.name, use_generalized=True,
                delegate_cap=None,
            )
            # Generalized core-sets are O(k') kernel points + counts; they
            # are the one payload kind that still travels by value.
            coresets: list[GeneralizedCoreset] = self.engine.run_round(
                partitions, reducer, size_fn=_payload_size,
            )
            union = GeneralizedCoreset.union_all(coresets)
            # Round 2: the adapted sequential algorithm picks a coherent
            # subset with expanded size exactly k (Fact 2).
            subset = self.engine.run_round(
                [union], partial(_generalized_solve_reducer, k=self.k,
                                 objective_name=self.objective.name),
                size_fn=_payload_size,
            )[0]
            # Round 3: each partition materializes delegates for its own
            # kernel points; kernel provenance is recovered from the
            # per-partition core-set sizes (partitions are disjoint).
            offsets = np.cumsum([0] + [c.size for c in coresets])
            kernel_owner = np.empty(union.size, dtype=np.intp)
            for i in range(len(coresets)):
                kernel_owner[offsets[i]:offsets[i + 1]] = i
            # Map the chosen subset's kernel points back to global kernel rows.
            subset_global = _match_kernel_rows(union, subset)
            payloads: list[tuple[Any, GeneralizedCoreset | None]] = []
            for i, partition in enumerate(partitions):
                local_rows = [
                    row for row in range(union.size)
                    if kernel_owner[row] == i and subset_global.get(row, 0) > 0
                ]
                if local_rows:
                    local = GeneralizedCoreset(
                        points=union.points[local_rows],
                        multiplicities=np.asarray(
                            [subset_global[row] for row in local_rows],
                            dtype=np.int64
                        ),
                        metric=union.metric,
                    )
                else:
                    local = None
                payloads.append((partition, local))
            if shared is not None:
                index_arrays = self.engine.run_round(
                    payloads, _instantiation_indices_reducer,
                    size_fn=_payload_size)
                delegates = shared.take(
                    np.concatenate([a for a in index_arrays if a.size]))
            else:
                delegate_arrays = self.engine.run_round(
                    payloads, _instantiation_reducer, size_fn=_payload_size)
                delegates = np.vstack([a for a in delegate_arrays if a.size])
        finally:
            if shared is not None:
                shared.close()
        solution = PointSet(delegates, self.metric)
        value = self.objective.value(solution.pairwise())
        return MRResult(
            solution=solution, value=value, coreset_size=union.size,
            partitions=len(selectors), rounds=3, stats=stats,
            extra={"expanded_size": union.expanded_size,
                   "zero_copy": self._zero_copy},
        )

    # -- multi-round recursive algorithm (Theorem 8) -------------------------------
    def run_multi_round(self, points: PointSet, memory_target: int,
                        max_levels: int = 8) -> MRResult:
        """Recursively shrink the input until it fits in ``memory_target`` points.

        Each level partitions the current set into pieces of at most
        *memory_target* points and replaces each piece by its core-set;
        Theorem 8 shows ``O((1 - gamma) / gamma)`` levels suffice with an
        ``alpha + eps`` guarantee.  With the process executor every level
        republishes the (shrinking) current set to shared memory and
        gathers core-set indices back.
        """
        check_positive_int(memory_target, "memory_target")
        floor_size = self.k_prime * (self.k if self.objective.requires_injective_proxy else 1)
        if memory_target < max(floor_size, self.k):
            raise ValidationError(
                f"memory_target={memory_target} is below one core-set "
                f"(~{floor_size} points); no recursion level can shrink the input"
            )
        stats = self.engine.begin_job()
        current = points
        levels = 0
        while len(current) > memory_target and levels < max_levels:
            parts = max(2, math.ceil(len(current) / memory_target))
            parts = min(parts, len(current))
            selectors = partition_selectors(current, parts,
                                            strategy=self.partition_strategy,
                                            seed=self.seed)
            shrunk = self._build_union(current, selectors, self.k,
                                       self.k_prime, delegate_cap=None)
            if len(shrunk) >= len(current):
                break  # cannot shrink further; fall through to final solve
            current = shrunk
            levels += 1
        outputs = self.engine.run_round(
            [current], partial(_solve_reducer, k=self.k,
                               objective_name=self.objective.name),
            size_fn=_payload_size,
        )
        indices, value = outputs[0]
        return MRResult(
            solution=current.subset(indices), value=value,
            coreset_size=len(current), partitions=self.parallelism,
            rounds=levels + 1, stats=stats,
            extra={"levels": levels, "memory_target": memory_target,
                   "zero_copy": self._zero_copy},
        )


def _solve_reducer(coreset: PointSet, k: int,
                   objective_name: str) -> tuple[np.ndarray, float]:
    """Round-2 reducer: sequential approximation on the aggregated core-set."""
    return solve_sequential(coreset, k, objective_name)


def _generalized_solve_reducer(union: GeneralizedCoreset, k: int,
                               objective_name: str) -> GeneralizedCoreset:
    """Round-2 reducer for the 3-round algorithm (Fact 2 adaptation)."""
    return solve_generalized(union, k, objective_name)


def _match_kernel_rows(union: GeneralizedCoreset,
                       subset: GeneralizedCoreset) -> dict[int, int]:
    """Map each subset kernel point to its row in the union kernel.

    ``solve_generalized`` preserves kernel order, so a forward scan with
    exact coordinate comparison recovers provenance.
    """
    mapping: dict[int, int] = {}
    cursor = 0
    for s in range(subset.size):
        target = subset.points[s]
        while cursor < union.size and not np.array_equal(union.points[cursor], target):
            cursor += 1
        if cursor == union.size:
            raise ValidationError("subset kernel point not found in union kernel")
        mapping[cursor] = int(subset.multiplicities[s])
        cursor += 1
    return mapping
