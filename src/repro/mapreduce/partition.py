"""Input partitioners for the MapReduce algorithms.

Composability (Definition 2) holds for *arbitrary* partitions, but the
realized constants differ: Section 7.2 measures the gap between a random
shuffle and an "adversarial" partition in which each reducer sees only a
small-volume region of the space (obfuscating the global geometry).  All
three flavours are implemented here.

Each strategy is expressed twice: :func:`partition_selectors` produces
lightweight row selectors (contiguous ``(start, stop)`` spans or index
arrays) that the zero-copy engine ships through shared memory, and
:func:`partition_points` materializes the same selectors into
:class:`PointSet` views for the serial executor.  Both derive from one
selector computation, so serial and process runs see byte-identical
partitions for the same seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng

#: A contiguous ``(start, stop)`` span or an explicit row-index array.
Selector = Union[tuple[int, int], np.ndarray]


def _check_parts(n: int, parts: int) -> int:
    if parts < 1:
        raise ValidationError(f"number of partitions must be >= 1, got {parts}")
    if parts > n:
        raise ValidationError(
            f"cannot split {n} points into {parts} non-empty partitions"
        )
    return parts


def _chunk_spans(n: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous spans with ``np.array_split`` boundaries."""
    base, extra = divmod(n, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def _adversarial_order(points: PointSet) -> np.ndarray:
    """Input rows sorted along the leading principal axis."""
    data = points.points
    centered = data - data.mean(axis=0, keepdims=True)
    covariance = centered.T @ centered
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    principal = eigenvectors[:, int(np.argmax(eigenvalues))]
    return np.argsort(centered @ principal)


def chunk_selectors(points: PointSet, parts: int) -> list[tuple[int, int]]:
    """Contiguous spans in input order (the arbitrary partition of Theorem 6)."""
    _check_parts(len(points), parts)
    return _chunk_spans(len(points), parts)


def random_selectors(points: PointSet, parts: int,
                     seed: RngLike = None) -> list[np.ndarray]:
    """Uniformly random index blocks (the random-keys shuffle of Theorem 7)."""
    _check_parts(len(points), parts)
    order = ensure_rng(seed).permutation(len(points))
    return list(np.array_split(order, parts))


def adversarial_selectors(points: PointSet, parts: int) -> list[np.ndarray]:
    """Region-based selectors: each reducer sees a small-volume slice.

    Points are sorted along the direction of maximum variance (the leading
    principal axis, computed from a covariance eigendecomposition) and cut
    into contiguous slabs, so every partition occupies a thin region of the
    space — the obfuscation Section 7.2 tests against.
    """
    _check_parts(len(points), parts)
    return list(np.array_split(_adversarial_order(points), parts))


_SELECTORS = {
    "chunk": chunk_selectors,
    "adversarial": adversarial_selectors,
}


def partition_selectors(points: PointSet, parts: int, strategy: str = "random",
                        seed: RngLike = None) -> list:
    """Row selectors for a partitioning, by strategy name.

    Returned selectors are either ``(start, stop)`` spans (``"chunk"``) or
    index arrays; both are cheap to pickle and resolve zero-copy (spans) or
    worker-side (index arrays) against a shared-memory dataset.
    """
    if strategy == "random":
        return random_selectors(points, parts, seed=seed)
    try:
        selector_fn = _SELECTORS[strategy]
    except KeyError:
        raise ValidationError(
            f"unknown partition strategy {strategy!r}; "
            "known: random, chunk, adversarial"
        ) from None
    return selector_fn(points, parts)


def materialize_selector(points: PointSet, selector) -> PointSet:
    """Resolve one selector into a :class:`PointSet` view of *points*."""
    if isinstance(selector, tuple):
        start, stop = selector
        return PointSet(points.points[start:stop], points.metric)
    return points.subset(selector)


def chunk_partition(points: PointSet, parts: int) -> list[PointSet]:
    """Contiguous chunks in input order (the arbitrary partition of Theorem 6)."""
    return [materialize_selector(points, span)
            for span in chunk_selectors(points, parts)]


def random_partition(points: PointSet, parts: int,
                     seed: RngLike = None) -> list[PointSet]:
    """Uniformly random partition (the random-keys shuffle of Theorem 7)."""
    return [points.subset(chunk)
            for chunk in random_selectors(points, parts, seed=seed)]


def adversarial_partition(points: PointSet, parts: int) -> list[PointSet]:
    """Region-based partition (see :func:`adversarial_selectors`)."""
    return [points.subset(chunk)
            for chunk in adversarial_selectors(points, parts)]


def partition_points(points: PointSet, parts: int, strategy: str = "random",
                     seed: RngLike = None) -> list[PointSet]:
    """Partition by strategy name: ``"random"``, ``"chunk"`` or ``"adversarial"``."""
    return [materialize_selector(points, selector)
            for selector in partition_selectors(points, parts,
                                                strategy=strategy, seed=seed)]
