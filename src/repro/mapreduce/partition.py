"""Input partitioners for the MapReduce algorithms.

Composability (Definition 2) holds for *arbitrary* partitions, but the
realized constants differ: Section 7.2 measures the gap between a random
shuffle and an "adversarial" partition in which each reducer sees only a
small-volume region of the space (obfuscating the global geometry).  All
three flavours are implemented here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng


def _check_parts(points: PointSet, parts: int) -> int:
    if parts < 1:
        raise ValidationError(f"number of partitions must be >= 1, got {parts}")
    if parts > len(points):
        raise ValidationError(
            f"cannot split {len(points)} points into {parts} non-empty partitions"
        )
    return parts


def chunk_partition(points: PointSet, parts: int) -> list[PointSet]:
    """Contiguous chunks in input order (the arbitrary partition of Theorem 6)."""
    _check_parts(points, parts)
    return points.split(parts)


def random_partition(points: PointSet, parts: int,
                     seed: RngLike = None) -> list[PointSet]:
    """Uniformly random partition (the random-keys shuffle of Theorem 7)."""
    _check_parts(points, parts)
    order = ensure_rng(seed).permutation(len(points))
    return [points.subset(chunk) for chunk in np.array_split(order, parts)]


def adversarial_partition(points: PointSet, parts: int) -> list[PointSet]:
    """Region-based partition: each reducer sees a small-volume slice.

    Points are sorted along the direction of maximum variance (the leading
    principal axis, computed from a covariance eigendecomposition) and cut
    into contiguous slabs, so every partition occupies a thin region of the
    space — the obfuscation Section 7.2 tests against.
    """
    _check_parts(points, parts)
    data = points.points
    centered = data - data.mean(axis=0, keepdims=True)
    covariance = centered.T @ centered
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    principal = eigenvectors[:, int(np.argmax(eigenvalues))]
    order = np.argsort(centered @ principal)
    return [points.subset(chunk) for chunk in np.array_split(order, parts)]


_PARTITIONERS = {
    "chunk": chunk_partition,
    "adversarial": adversarial_partition,
}


def partition_points(points: PointSet, parts: int, strategy: str = "random",
                     seed: RngLike = None) -> list[PointSet]:
    """Partition by strategy name: ``"random"``, ``"chunk"`` or ``"adversarial"``."""
    if strategy == "random":
        return random_partition(points, parts, seed=seed)
    try:
        partitioner = _PARTITIONERS[strategy]
    except KeyError:
        raise ValidationError(
            f"unknown partition strategy {strategy!r}; "
            "known: random, chunk, adversarial"
        ) from None
    return partitioner(points, parts)
