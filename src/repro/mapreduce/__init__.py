"""Simulated MapReduce model with memory accounting and real parallelism.

The MR model of [24, 29] is defined by rounds in which reducers transform
key-grouped data under a local-memory constraint ``M_L`` and a total-memory
constraint ``M_T``.  :class:`~repro.mapreduce.engine.MapReduceEngine`
simulates exactly that — each round applies a reducer function per
partition, records the local/total memory actually used, and can execute
reducers either serially (deterministic, for ratio experiments) or on a
process pool (for the scalability experiment of Figure 5).
"""

from repro.mapreduce.model import RoundStats, JobStats
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.partition import (
    chunk_partition,
    random_partition,
    adversarial_partition,
    partition_points,
    partition_selectors,
)
from repro.mapreduce.shm import SharedDataset, SharedPartition
from repro.mapreduce.algorithm import (
    MRDiversityMaximizer,
    MRResult,
    randomized_delegate_cap,
)

__all__ = [
    "RoundStats",
    "JobStats",
    "MapReduceEngine",
    "chunk_partition",
    "random_partition",
    "adversarial_partition",
    "partition_points",
    "partition_selectors",
    "SharedDataset",
    "SharedPartition",
    "MRDiversityMaximizer",
    "MRResult",
    "randomized_delegate_cap",
]
