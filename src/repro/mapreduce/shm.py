"""Zero-copy partition shipping over the shared-memory data plane.

The process-pool executor must get each reducer its partition without
pickling point arrays through the IPC pipe — at 100k+ points the pickle
bytes, not the algorithm, dominate round wall time.  The protocol here:

* the driver publishes the dataset array **once** into a shared-memory
  segment (:class:`SharedDataset`, backed by
  :class:`repro.shm.SharedNDArray`);
* each reducer receives a :class:`SharedPartition` — a tiny picklable
  descriptor ``(shm name, shape, dtype, row selector, metric)`` — and
  attaches to the block on first use (attachments are cached per worker
  process by :mod:`repro.shm`, so a multi-round job maps the segment once
  per worker);
* contiguous selectors resolve to true zero-copy views; fancy-index
  selectors copy *inside the worker*, off the IPC critical path;
* round outputs travel back as index arrays into the shared block wherever
  the algorithm allows, and the driver gathers rows locally
  (:meth:`SharedDataset.take`).

Lifecycle: ``SharedDataset`` is a context manager; the driver unlinks the
segment when the job is done (on Linux, workers holding attachments keep
the mapping alive until they drop it).  A ``weakref.finalize`` backstop
unlinks on garbage collection so crashed drivers do not leak ``/dev/shm``
segments.  Worker attachments keep the historical cache limit of one
segment — jobs touch exactly one dataset-sized block at a time, and a
stale unlinked segment kept mapped is a dataset's worth of RAM pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.metricspace.distance import Metric
from repro.metricspace.points import PointSet
from repro.shm import SharedArrayRef, SharedNDArray

#: A partition row selector: a contiguous ``(start, stop)`` span (zero-copy
#: in the worker) or an explicit index array (gathered in the worker).
Selector = Union[tuple[int, int], np.ndarray]


@dataclass(frozen=True)
class SharedPartition:
    """Picklable descriptor of one partition inside a shared dataset.

    A few dozen bytes (plus the index array for non-contiguous partitions)
    cross the IPC pipe instead of the partition's point rows.  Reducers
    call :meth:`materialize` to get a :class:`PointSet`, and
    :meth:`global_indices` to translate their local row choices back into
    dataset coordinates for the index-set reply path.
    """

    shm_name: str
    shape: tuple[int, int]
    dtype: str
    selector: Selector
    metric: Metric

    def __len__(self) -> int:
        if isinstance(self.selector, tuple):
            start, stop = self.selector
            return stop - start
        return int(self.selector.shape[0])

    def materialize(self) -> PointSet:
        """Resolve the descriptor against shared memory (worker side)."""
        block = SharedArrayRef(name=self.shm_name, shape=self.shape,
                               dtype=self.dtype).resolve()
        if isinstance(self.selector, tuple):
            start, stop = self.selector
            rows = block[start:stop]  # zero-copy view of the shared block
        else:
            rows = block[self.selector]  # gathered inside the worker
        return PointSet(rows, self.metric)

    def global_indices(self, local: Sequence[int]) -> np.ndarray:
        """Translate local row indices to rows of the shared dataset."""
        local = np.asarray(local, dtype=np.intp)
        if isinstance(self.selector, tuple):
            return self.selector[0] + local
        return np.asarray(self.selector, dtype=np.intp)[local]


def resolve_payload(payload):
    """Materialize a :class:`SharedPartition` (pass anything else through).

    Reducers accept payloads that may or may not have gone through shared
    memory; this keeps them agnostic to the executor in use.
    """
    if isinstance(payload, SharedPartition):
        return payload.materialize()
    return payload


class SharedDataset:
    """Driver-side handle for a dataset published to shared memory.

    Parameters
    ----------
    points:
        The dataset to publish.  Rows are copied into the segment once, at
        construction; every partition ships as a descriptor afterwards.

    Example
    -------
    >>> import numpy as np
    >>> ps = PointSet(np.arange(12.0).reshape(6, 2))
    >>> with SharedDataset(ps) as shared:
    ...     ref = shared.partition((2, 5))
    ...     int(ref.materialize().points[0, 0])
    4
    """

    def __init__(self, points: PointSet):
        array = np.ascontiguousarray(points.points)
        self.shape: tuple[int, int] = array.shape
        self.dtype = array.dtype.str
        self.metric = points.metric
        self._owner = SharedNDArray.publish(array)

    @property
    def name(self) -> str:
        """Name of the backing shared-memory segment."""
        return self._owner.ref.name

    def partition(self, selector: Selector) -> SharedPartition:
        """A :class:`SharedPartition` descriptor for *selector*'s rows."""
        if not isinstance(selector, tuple):
            selector = np.asarray(selector, dtype=np.intp)
        return SharedPartition(shm_name=self.name, shape=self.shape,
                               dtype=self.dtype, selector=selector,
                               metric=self.metric)

    def partitions(self, selectors: Sequence[Selector]) -> list[SharedPartition]:
        """Descriptors for a whole partitioning."""
        return [self.partition(selector) for selector in selectors]

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows by global index (driver side, one local copy)."""
        return self._owner.array[np.asarray(indices, dtype=np.intp)].copy()

    def point_set(self, indices: np.ndarray) -> PointSet:
        """The gathered rows as a :class:`PointSet` over the dataset metric."""
        return PointSet(self.take(indices), self.metric)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        self._owner.close()

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
