"""Build-once / serve-many query service over composable core-set indexes.

The ingest path (:func:`build_coreset_index`) runs the heavy MapReduce
core-set construction once per ladder rung; the query path
(:class:`DiversityService`) answers ``(objective, k, eps)`` requests from
that cached read-only state — routed to the cheapest covering rung, solved
on a shared blocked distance matrix, memoized in a lock-striped LRU.
Queries may run concurrently (:meth:`DiversityService.query_concurrent`),
rung matrices live under a memory budget (``REPRO_MATRIX_BUDGET_MB``),
and dataset growth is absorbed incrementally
(:meth:`DiversityService.refresh` / :meth:`CoresetIndex.extend`).  See
``docs/service.md`` for the operations guide and ``docs/architecture.md``
for the layer diagram.
"""

from repro.service.cache import CacheStats, LRUCache, StripedLRUCache
from repro.service.executors import (
    EXECUTOR_NAMES,
    ExecutorPool,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.service.index import (
    FAMILIES,
    CoresetIndex,
    LadderRung,
    build_coreset_index,
    family_of,
)
from repro.service.matrices import (
    MatrixCache,
    MatrixLease,
    MatrixStats,
    SharedMatrixCache,
    matrix_budget_from_env,
)
from repro.service.persist import INDEX_FORMAT_VERSION, load_index, save_index
from repro.service.planner import (
    CostModel,
    Plan,
    QueryPlanner,
    explain_plan,
    run_calibration,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_request,
    decode_response,
    encode_request,
)
from repro.service.qos import (
    QosRejection,
    TenantQuota,
    TokenBucket,
    WeightedDeficitRoundRobin,
)
from repro.service.registry import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_NAME,
    IndexRegistry,
    UnknownDatasetError,
)
from repro.service.server import DiversityServer, ServerConfig, ServerStats
from repro.service.service import (
    SCHEMA_VERSION,
    DiversityService,
    Query,
    QueryResult,
)
from repro.service.workload import (
    ConcurrencyReport,
    MixedWorkloadReport,
    ServeLatencyReport,
    ThroughputReport,
    latency_summary,
    make_workload,
    measure_concurrent_throughput,
    measure_mixed_workload,
    measure_serve_latency,
    measure_service_throughput,
    open_loop_load,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "StripedLRUCache",
    "EXECUTOR_NAMES",
    "ExecutorPool",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "create_executor",
    "FAMILIES",
    "CoresetIndex",
    "LadderRung",
    "build_coreset_index",
    "family_of",
    "MatrixCache",
    "MatrixLease",
    "MatrixStats",
    "SharedMatrixCache",
    "matrix_budget_from_env",
    "INDEX_FORMAT_VERSION",
    "load_index",
    "save_index",
    "CostModel",
    "Plan",
    "QueryPlanner",
    "explain_plan",
    "run_calibration",
    "QosRejection",
    "TenantQuota",
    "TokenBucket",
    "WeightedDeficitRoundRobin",
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_NAME",
    "IndexRegistry",
    "UnknownDatasetError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "decode_request",
    "decode_response",
    "encode_request",
    "DiversityServer",
    "ServerConfig",
    "ServerStats",
    "SCHEMA_VERSION",
    "DiversityService",
    "Query",
    "QueryResult",
    "ConcurrencyReport",
    "MixedWorkloadReport",
    "ServeLatencyReport",
    "ThroughputReport",
    "latency_summary",
    "make_workload",
    "measure_concurrent_throughput",
    "measure_mixed_workload",
    "measure_serve_latency",
    "measure_service_throughput",
    "open_loop_load",
]
