"""Build-once / serve-many query service over composable core-set indexes.

The ingest path (:func:`build_coreset_index`) runs the heavy MapReduce
core-set construction once per ladder rung; the query path
(:class:`DiversityService`) answers ``(objective, k, eps)`` requests from
that cached read-only state — routed to the cheapest covering rung, solved
on a shared blocked distance matrix, memoized in an LRU.  See the README's
"Query service" section for the architecture.
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.index import (
    FAMILIES,
    CoresetIndex,
    LadderRung,
    build_coreset_index,
    family_of,
)
from repro.service.persist import load_index, save_index
from repro.service.service import DiversityService, Query, QueryResult
from repro.service.workload import (
    ThroughputReport,
    make_workload,
    measure_service_throughput,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "FAMILIES",
    "CoresetIndex",
    "LadderRung",
    "build_coreset_index",
    "family_of",
    "load_index",
    "save_index",
    "DiversityService",
    "Query",
    "QueryResult",
    "ThroughputReport",
    "make_workload",
    "measure_service_throughput",
]
