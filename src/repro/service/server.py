"""The ``repro serve`` daemon: asyncio front-end over a DiversityService.

One :class:`DiversityServer` owns one
:class:`~repro.service.service.DiversityService` — or, in multi-tenant
mode, one :class:`~repro.service.registry.IndexRegistry` of named
tenants — and exposes it on a single TCP port.  Each accepted connection
is sniffed on its first line:
HTTP request lines (``POST /query HTTP/1.1`` ...) route to a thin
HTTP/1.1 adapter, anything else is treated as newline-delimited JSON in
the :mod:`repro.service.protocol` envelope — the native framing, which
supports pipelining (responses are matched to requests by ``id``, not
by order).

The serving pipeline, in order:

1. **Admission** — every decoded ``query`` request tries a
   ``put_nowait`` into one bounded :class:`asyncio.Queue`.  A full queue
   is an immediate ``overloaded`` rejection carrying ``retry_after_ms``
   (HTTP 429 + ``Retry-After``); a draining server rejects with
   ``shutting_down`` (HTTP 503).  The server never buffers unboundedly —
   backpressure is explicit.
2. **Micro-batching** — a single collector task takes the oldest admitted
   request, then keeps collecting until ``batch_window_ms`` elapses or
   ``max_batch`` requests are gathered, and submits the coalesced query
   list as ONE :meth:`~repro.service.service.DiversityService.query_batch`
   call, so same-rung queries from different clients share matrix
   fetches and LRU probes.  Results are split back per request in order.
3. **Dispatch** — the blocking ``query_batch`` runs on a two-slot thread
   pool: one slot for query batches, one for background ``refresh``
   (dataset absorption swaps epochs atomically service-side, so readers
   are never stalled and never see a mixed epoch).
4. **Drain** — on SIGTERM/SIGINT (or :meth:`DiversityServer.shutdown`)
   the listener stops admitting, in-flight batches finish on the epoch
   they were admitted against, their responses are written, and only
   then is the underlying service closed.  Nothing admitted is dropped;
   nothing is answered twice.

Answers are bit-identical to calling ``service.query_batch`` in-process
on the same index: coalescing only concatenates query lists, and the
service's solvers are deterministic on a fixed core-set.

Registry mode adds tenant routing on top of the same pipeline: a
``dataset`` field on ``query``/``refresh`` envelopes picks the tenant
(validated before admission; unknown names are ``unknown_dataset`` /
HTTP 404), the micro-batcher groups each coalesced batch by dataset so
one dispatch never mixes tenants, and ``GET /tenants`` (NDJSON kind
``tenants``) exposes the registry's per-tenant residency counters.

QoS mode (``repro serve --qos``, registry only) swaps step 1's single
queue for :mod:`repro.service.qos`: every tenant admits into its own
bounded queue under its manifest quota (``weight`` / ``max_queue`` /
``rate_limit_qps``), the collector pulls requests in weighted
deficit-round-robin order (batches may mix tenants; dispatch still
groups by dataset), rejections carry the tenant's ``dataset`` and its
own ``retry_after_ms``, and ``stats()["server"]["qos"]`` reports
per-tenant queue depth, deficit, admission counters and latency
percentiles.  Answers stay bit-identical — QoS reorders only *between*
tenants, never within one.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import json
import signal
import time
from dataclasses import dataclass, field

from repro.datasets.loaders import load_points
from repro.exceptions import ValidationError
from repro.service import protocol
from repro.service.protocol import ProtocolError, Request
from repro.service.qos import QosRejection, WeightedDeficitRoundRobin
from repro.service.registry import IndexRegistry, UnknownDatasetError
from repro.service.service import DiversityService
from repro.service.workload import latency_summary
from repro.utils.validation import check_positive_int

#: HTTP methods whose request line flips a connection into HTTP mode.
_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ",
                 b"OPTIONS ", b"PATCH ")

#: Longest accepted request line / HTTP body, in bytes.
_MAX_LINE = 1 << 20

_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                 405: "Method Not Allowed", 413: "Payload Too Large",
                 429: "Too Many Requests", 500: "Internal Server Error",
                 503: "Service Unavailable"}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`DiversityServer`.

    ``batch_window_ms`` is the micro-batching horizon: after the first
    request of a batch arrives, the collector waits at most this long
    for more before dispatching (0 disables coalescing).  ``max_queue``
    bounds the admission queue — the ``overloaded`` rejection threshold
    — and ``max_batch`` caps how many admitted requests one dispatch may
    coalesce.  ``retry_after_ms`` is the hint returned with rejections.
    ``drain_timeout_s`` caps how long shutdown waits for in-flight work.
    ``qos`` (registry mode only — ``repro serve --qos``) replaces the
    single admission queue with per-tenant queues drained in weighted
    deficit-round-robin order under the tenants' manifest quotas;
    ``max_queue`` then becomes the per-tenant default bound and
    ``retry_after_ms`` the scale of the tenant-specific backoff hints.
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 20.0
    max_queue: int = 64
    max_batch: int = 16
    retry_after_ms: float = 50.0
    drain_timeout_s: float = 30.0
    qos: bool = False

    def __post_init__(self):
        """Validate the queue/batch bounds and non-negative windows."""
        check_positive_int(self.max_queue, "max_queue")
        check_positive_int(self.max_batch, "max_batch")
        if self.batch_window_ms < 0 or self.retry_after_ms < 0:
            raise ValueError("windows must be non-negative")


@dataclass
class _ClientStats:
    """Per-client admission counters (keyed by peer ``host:port``)."""

    accepted: int = 0
    rejected: int = 0
    queries: int = 0

    def as_dict(self) -> dict:
        """JSON-ready counter triple."""
        return {"accepted": self.accepted, "rejected": self.rejected,
                "queries": self.queries}


@dataclass
class ServerStats:
    """Global serving counters, snapshot under ``stats()["server"]``.

    ``batched_requests`` counts requests that shared a dispatch with at
    least one other request — the micro-batching-is-actually-happening
    signal the serve benchmark gates on.  ``rejected_overload`` and
    ``rejected_draining`` split the two admission-control outcomes;
    ``internal_errors`` counts request-crashing bugs (gated to zero).
    ``rejected_datasets`` splits every rejection by the tenant it
    applied to (empty on a single-index daemon), so one hot tenant's
    backpressure is visible without grepping client logs.
    """

    connections: int = 0
    http_requests: int = 0
    accepted: int = 0
    rejected_overload: int = 0
    rejected_draining: int = 0
    bad_requests: int = 0
    internal_errors: int = 0
    batches_dispatched: int = 0
    batched_requests: int = 0
    queries_served: int = 0
    refreshes: int = 0
    clients: dict[str, _ClientStats] = field(default_factory=dict)
    rejected_datasets: dict[str, int] = field(default_factory=dict)

    def client(self, peer: str) -> _ClientStats:
        """The (created-on-first-use) counter block for *peer*."""
        if peer not in self.clients:
            self.clients[peer] = _ClientStats()
        return self.clients[peer]

    def reject(self, peer: str, dataset: str | None, *,
               draining: bool = False) -> None:
        """Count one admission rejection everywhere it must show up.

        Every rejection increments the matching global counter, the
        per-client block AND (when the request named a tenant) the
        per-dataset split — the single bookkeeping path that keeps the
        three views consistent.
        """
        self.client(peer).rejected += 1
        if draining:
            self.rejected_draining += 1
        else:
            self.rejected_overload += 1
        if dataset is not None:
            self.rejected_datasets[dataset] = \
                self.rejected_datasets.get(dataset, 0) + 1


class _Work:
    """One admitted query request awaiting dispatch.

    Carries the decoded request, the future its responder awaits, the
    peer label (for per-client accounting) and the admission timestamp
    that anchors the server-observed latency sample.
    """

    __slots__ = ("request", "future", "peer", "admitted_at")

    def __init__(self, request: Request, future: asyncio.Future,
                 peer: str):
        self.request = request
        self.future = future
        self.peer = peer
        self.admitted_at = time.perf_counter()


#: Queue item that tells the collector to exit after the current batch.
_SENTINEL = object()

#: Queue item that wakes the collector in QoS mode: the admitted work
#: lives in the WDRR scheduler, the queue only carries wake-ups (one
#: token per admitted request, so token count == scheduler backlog).
_QOS_TOKEN = object()


class DiversityServer:
    """Asyncio TCP/HTTP front-end over one :class:`DiversityService`.

    Construct with a ready service (index built or lazy-buildable),
    then either drive the pieces yourself (``await start()`` ... ``await
    shutdown()``) or call :meth:`run_until_shutdown`, which also wires
    SIGTERM/SIGINT to a graceful drain — the ``repro serve`` entry
    point.  The server owns the service lifecycle from ``start()`` on:
    shutdown drains in-flight batches, then calls ``service.close()``.
    """

    def __init__(self, service: "DiversityService | IndexRegistry",
                 config: ServerConfig | None = None):
        self.service = service
        #: The multi-tenant registry, or ``None`` on a single-index
        #: daemon.  Registry mode adds ``dataset`` routing, the
        #: ``tenants`` kind and ``GET /tenants``.
        self.registry = service if isinstance(service, IndexRegistry) \
            else None
        self.config = config or ServerConfig()
        self.stats_counters = ServerStats()
        #: WDRR scheduler over per-tenant queues, or ``None`` when the
        #: daemon runs the classic single-queue admission control.
        self.qos: WeightedDeficitRoundRobin | None = None
        if self.config.qos:
            if self.registry is None:
                raise ValidationError(
                    "QoS scheduling is per-tenant; `repro serve --qos` "
                    "needs --registry")
            self.qos = WeightedDeficitRoundRobin(
                self.registry.quotas(),
                default_max_queue=self.config.max_queue,
                base_retry_ms=self.config.retry_after_ms)
        # In QoS mode the asyncio queue is unbounded: it carries only
        # wake tokens (+ the shutdown sentinel); the per-tenant bounds
        # live in the scheduler.
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=0 if self.qos is not None else self.config.max_queue)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-query")
        self._refresh_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-refresh")
        self._latencies: list[float] = []
        self._server: asyncio.AbstractServer | None = None
        self._collector: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._handlers: set[asyncio.Task] = set()
        self._pending = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._closed = False
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` ephemerals."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind the listener, start the batch collector, return address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._collector = asyncio.create_task(self._batch_loop())
        self._started_at = time.perf_counter()
        return self.address

    async def shutdown(self) -> None:
        """Drain gracefully: stop admitting, finish in-flight, close.

        The listener closes first (no new connections), the draining
        flag flips (queued connections get ``shutting_down``), already
        admitted batches run to completion on their pinned epoch and
        their responses are written, then the collector exits via the
        queue sentinel and the underlying service is closed.  Bounded by
        ``drain_timeout_s``; idempotent.
        """
        if self._closed:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   timeout=self.config.drain_timeout_s)
        except asyncio.TimeoutError:
            pass
        await self._queue.put(_SENTINEL)
        if self._collector is not None:
            await self._collector
        if self._conn_tasks:
            # Admitted work is resolved, but its responders may still be
            # writing — wait for them so nothing admitted is dropped.
            try:
                await asyncio.wait_for(
                    asyncio.gather(*list(self._conn_tasks),
                                   return_exceptions=True),
                    timeout=self.config.drain_timeout_s)
            except asyncio.TimeoutError:  # pragma: no cover - dead peers
                for task in list(self._conn_tasks):
                    task.cancel()
        if self._handlers:
            # Idle keep-alive connections still block in readline();
            # cancel their handlers so loop teardown stays silent.
            for task in list(self._handlers):
                task.cancel()
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        self._closed = True
        self._pool.shutdown(wait=True)
        self._refresh_pool.shutdown(wait=True)
        self.service.close()

    async def run_until_shutdown(self, *,
                                 ready: asyncio.Event | None = None) -> None:
        """Serve until SIGTERM/SIGINT, then drain — the daemon main loop.

        Sets *ready* (if given) once the socket is bound, so embedding
        harnesses know when to connect.
        """
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self.start()
        if ready is not None:
            ready.set()
        try:
            await stop.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            await self.shutdown()

    # -- admission + batching --------------------------------------------------

    def _admit(self, request: Request, peer: str) -> _Work:
        """Admit a query request into the bounded queue or raise.

        Raises :class:`ProtocolError` with ``shutting_down`` while
        draining and ``overloaded`` when the queue (in QoS mode: the
        request's tenant queue or token bucket) rejects — the
        admission-control rejections; all are counted globally, per
        client and per tenant.  QoS rejections carry the tenant's
        ``dataset`` and its own ``retry_after_ms`` hint.
        """
        client = self.stats_counters.client(peer)
        if self._draining:
            self.stats_counters.reject(peer, request.dataset, draining=True)
            raise ProtocolError(protocol.ERROR_SHUTTING_DOWN,
                                "server is draining; not accepting work",
                                dataset=request.dataset)
        work = _Work(request, asyncio.get_running_loop().create_future(),
                     peer)
        if self.qos is not None:
            try:
                self.qos.admit(request.dataset, work)
            except QosRejection as exc:
                self.stats_counters.reject(peer, request.dataset)
                raise ProtocolError(
                    protocol.ERROR_OVERLOADED, str(exc),
                    retry_after_ms=exc.retry_after_ms,
                    dataset=request.dataset) from None
            self._queue.put_nowait(_QOS_TOKEN)
        else:
            try:
                self._queue.put_nowait(work)
            except asyncio.QueueFull:
                self.stats_counters.reject(peer, request.dataset)
                raise ProtocolError(
                    protocol.ERROR_OVERLOADED,
                    f"admission queue full ({self.config.max_queue}); "
                    "retry after the advertised delay",
                    dataset=request.dataset) from None
        self._pending += 1
        self._idle.clear()
        client.accepted += 1
        client.queries += len(request.queries)
        self.stats_counters.accepted += 1
        return work

    def _work_done(self) -> None:
        """Account one resolved request; wake drain when none are left."""
        self._pending -= 1
        if self._pending <= 0:
            self._idle.set()

    async def _batch_loop(self) -> None:
        """Collect admitted requests into micro-batches and dispatch.

        The single consumer of the admission queue: it blocks on the
        oldest request, gathers more until the batching window closes
        (or ``max_batch`` is hit), dispatches the coalesced batch, and
        repeats until the shutdown sentinel arrives.

        In QoS mode the queue carries wake tokens, not work: each token
        redeems one :meth:`WeightedDeficitRoundRobin.take`, so the
        batch fills in WDRR order over whatever backlog exists at that
        moment — a flooded tenant's wall of requests interleaves with
        every other backlogged tenant inside the same window, which is
        exactly the starvation-freedom bound the QoS tests gate.
        """
        loop = asyncio.get_running_loop()
        window = self.config.batch_window_ms / 1e3
        while True:
            first = await self._queue.get()
            if first is _SENTINEL:
                return
            batch = []
            work = self._redeem(first)
            if work is not None:
                batch.append(work)
            stop_after = False
            deadline = loop.time() + window
            while len(batch) < self.config.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(),
                                                  timeout)
                except asyncio.TimeoutError:
                    break
                if item is _SENTINEL:
                    stop_after = True
                    break
                work = self._redeem(item)
                if work is not None:
                    batch.append(work)
            if batch:
                await self._dispatch(batch)
            if stop_after:
                return

    def _redeem(self, item) -> "_Work | None":
        """Turn one queue item into admitted work.

        Single-queue mode: the item *is* the work.  QoS mode: the item
        is a wake token and the next request comes from the scheduler
        in WDRR order (``None`` only defensively — token and backlog
        counts match by construction).
        """
        if self.qos is None:
            return item
        return self.qos.take()

    def _query_batch_blocking(self, dataset: str | None, queries: list):
        """One coalesced ``query_batch`` call (query-slot thread)."""
        if self.registry is not None:
            return self.registry.query_batch(queries, dataset)
        return self.service.query_batch(queries)

    def _plan_signature(self, work: "_Work") -> tuple | None:
        """The batching class of one request's chosen plan.

        ``None`` everywhere static mode (or a cold tenant, or any
        planning hiccup) applies — grouping then degrades to exactly the
        dataset-only key of before.  In ``auto`` mode requests predicted
        to run on different executors dispatch as separate
        ``query_batch`` calls, so a plan chosen for one request is never
        diluted by batch-mates with different cost shapes.
        """
        if self.registry is not None:
            service = self.registry.peek_service(work.request.dataset)
        else:
            service = self.service
        if service is None:
            return None
        return service.plan_signature(work.request.queries)

    async def _dispatch(self, batch: list[_Work]) -> None:
        """Run one coalesced batch on the query slot and split results.

        Requests are grouped by ``(dataset, plan signature)`` — on a
        single-index static-mode daemon that is one group, the whole
        batch — and each group's queries are concatenated into a single
        ``query_batch`` call (results come back in input order, so the
        per-request slices are exact); each request's future is resolved
        with its slice and its server-observed latency is sampled.  A
        service-side exception fails that group's requests —
        ``unknown_dataset`` when a tenant was detached between admission
        and dispatch, ``internal`` otherwise — without killing the
        collector or the other groups.
        """
        loop = asyncio.get_running_loop()
        if len(batch) > 1:
            self.stats_counters.batched_requests += len(batch)
        groups: dict[tuple, list[_Work]] = {}
        for work in batch:
            key = (work.request.dataset, self._plan_signature(work))
            groups.setdefault(key, []).append(work)
        for (dataset, _signature), members in groups.items():
            queries = [query for work in members
                       for query in work.request.queries]
            self.stats_counters.batches_dispatched += 1
            try:
                results = await loop.run_in_executor(
                    self._pool, self._query_batch_blocking, dataset,
                    queries)
            except Exception as exc:
                if isinstance(exc, UnknownDatasetError):
                    error = ProtocolError(protocol.ERROR_UNKNOWN_DATASET,
                                          str(exc))
                else:
                    self.stats_counters.internal_errors += len(members)
                    error = ProtocolError(protocol.ERROR_INTERNAL, str(exc))
                for work in members:
                    if not work.future.done():
                        work.future.set_exception(error)
                    self._work_done()
                continue
            offset = 0
            now = time.perf_counter()
            for work in members:
                count = len(work.request.queries)
                if not work.future.done():
                    work.future.set_result(results[offset:offset + count])
                offset += count
                self.stats_counters.queries_served += count
                self._latencies.append(now - work.admitted_at)
                if self.qos is not None:
                    self.qos.record_latency(work.request.dataset,
                                            now - work.admitted_at)
                self._work_done()
        if len(self._latencies) > 65536:
            del self._latencies[:32768]

    def _refresh_blocking(self, path: str,
                          dataset: str | None = None) -> dict:
        """Load a dataset and absorb it into the index (refresh slot).

        Runs on the dedicated refresh thread so a dataset absorption
        never occupies the query-dispatch slot; the service-side epoch
        swap is atomic, so queries keep flowing throughout.  In registry
        mode the refresh lands on the named tenant only.
        """
        points = load_points(path)
        if self.registry is not None:
            dataset, epoch = self.registry.refresh(dataset, points)
            self.stats_counters.refreshes += 1
            return {"epoch": epoch, "absorbed": len(points),
                    "dataset": dataset}
        self.service.refresh(points)
        self.stats_counters.refreshes += 1
        return {"epoch": self.service.stats()["epochs"]["current"],
                "absorbed": len(points)}

    # -- request handling ------------------------------------------------------

    def _resolve_dataset(self, request: Request) -> str | None:
        """Validate and default the request's tenant routing up front.

        Single-index daemons reject any ``dataset`` field; registry
        daemons resolve a missing one to the sole tenant and reject
        unknown names with ``unknown_dataset`` *before* admission, so a
        typo never occupies a queue slot.
        """
        if self.registry is None:
            if request.dataset is not None:
                raise ProtocolError(
                    protocol.ERROR_BAD_REQUEST,
                    "this daemon serves a single index; 'dataset' "
                    "routing needs `repro serve --registry`")
            return None
        try:
            return self.registry.resolve(request.dataset)
        except UnknownDatasetError as exc:
            raise ProtocolError(protocol.ERROR_UNKNOWN_DATASET,
                                str(exc)) from exc
        except ValidationError as exc:
            raise ProtocolError(protocol.ERROR_BAD_REQUEST,
                                str(exc)) from exc

    async def _answer(self, request: Request, peer: str) -> str:
        """Serve one decoded request; returns the NDJSON response line."""
        if request.kind == "healthz":
            return protocol.encode_ok(request.id, status="ok",
                                      draining=self._draining)
        if request.kind == "stats":
            return protocol.encode_ok(request.id, stats=self.stats())
        if request.kind == "tenants":
            if self.registry is None:
                raise ProtocolError(
                    protocol.ERROR_BAD_REQUEST,
                    "this daemon serves a single index; tenants need "
                    "`repro serve --registry`")
            return protocol.encode_ok(
                request.id, tenants=self.registry.stats()["tenants"])
        if request.kind == "refresh":
            if self._draining:
                # Count this rejection like any other admission refusal
                # (it used to bump no counter at all — the per-client /
                # per-tenant accounting regression in
                # tests/test_serve_protocol.py pins the fix).
                self.stats_counters.reject(peer, request.dataset,
                                           draining=True)
                raise ProtocolError(protocol.ERROR_SHUTTING_DOWN,
                                    "server is draining",
                                    dataset=request.dataset)
            dataset = self._resolve_dataset(request)
            loop = asyncio.get_running_loop()
            try:
                summary = await loop.run_in_executor(
                    self._refresh_pool, self._refresh_blocking,
                    request.data, dataset)
            except (OSError, ValueError) as exc:
                raise ProtocolError(
                    protocol.ERROR_BAD_REQUEST,
                    f"cannot load dataset {request.data!r}: {exc}") from exc
            return protocol.encode_ok(request.id, **summary)
        dataset = self._resolve_dataset(request)
        if dataset is not None:
            request = dataclasses.replace(request, dataset=dataset)
        work = self._admit(request, peer)
        results = await work.future
        return protocol.encode_results(request.id, results)

    async def _serve_line(self, line: bytes, peer: str) -> str:
        """Decode + serve one NDJSON line, mapping failures to errors."""
        request_id = None
        try:
            request = protocol.decode_request(line)
            request_id = request.id
            return await self._answer(request, peer)
        except ProtocolError as exc:
            retry = exc.retry_after_ms
            if retry is None and exc.code == protocol.ERROR_OVERLOADED:
                retry = self.config.retry_after_ms
            if exc.code in (protocol.ERROR_BAD_REQUEST,
                            protocol.ERROR_UNSUPPORTED_VERSION):
                self.stats_counters.bad_requests += 1
            return protocol.encode_error(request_id, exc.code, exc.message,
                                         retry_after_ms=retry,
                                         dataset=exc.dataset)
        except Exception as exc:  # pragma: no cover - defensive
            self.stats_counters.internal_errors += 1
            return protocol.encode_error(request_id, protocol.ERROR_INTERNAL,
                                         str(exc))

    # -- connection plumbing ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Sniff the first line and route to the NDJSON or HTTP handler."""
        self.stats_counters.connections += 1
        peername = writer.get_extra_info("peername") or ("?", 0)
        peer = f"{peername[0]}:{peername[1]}"
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_METHODS) and b"HTTP/1." in first:
                await self._handle_http(first, reader, writer, peer)
            else:
                await self._handle_ndjson(first, reader, writer, peer)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle handlers; exit quietly so asyncio's
            # connection callback does not log the cancellation.
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    async def _handle_ndjson(self, first: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             peer: str) -> None:
        """Pipelined NDJSON loop: one responder task per request line.

        Each line spawns a task that serves the request and writes its
        response under a per-connection write lock, so slow (batched)
        queries never block stats/healthz lines behind them and
        responses are never interleaved mid-line.
        """
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(line: bytes) -> None:
            """Serve one line and write its response frame."""
            payload = await self._serve_line(line, peer)
            async with lock:
                writer.write(payload.encode())
                await writer.drain()

        line = first
        while line:
            if line.strip():
                task = asyncio.create_task(respond(line))
                tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
            line = await reader.readline()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _handle_http(self, request_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           peer: str) -> None:
        """One-shot HTTP/1.1 adapter: query/stats/healthz, then close."""
        try:
            method, target, _ = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._write_http(writer, 400,
                                   {"error": "malformed request line"})
            return
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if length > _MAX_LINE:
            await self._write_http(writer, 413, {"error": "body too large"})
            return
        if length:
            body = await reader.readexactly(length)
        self.stats_counters.http_requests += 1
        await self._route_http(method.upper(), target, body, writer, peer)

    async def _route_http(self, method: str, target: str, body: bytes,
                          writer: asyncio.StreamWriter, peer: str) -> None:
        """Map an HTTP request onto the protocol kinds and respond."""
        target = target.split("?", 1)[0]
        if method == "GET" and target == "/healthz":
            await self._write_http(writer, 200,
                                   {"status": "ok",
                                    "draining": self._draining})
            return
        if method == "GET" and target == "/stats":
            await self._write_http(writer, 200, self.stats())
            return
        if method == "GET" and target == "/tenants" \
                and self.registry is not None:
            await self._write_http(writer, 200,
                                   self.registry.stats()["tenants"])
            return
        if target == "/query" and method != "POST":
            await self._write_http(writer, 405,
                                   {"error": "use POST /query"})
            return
        if method == "POST" and target == "/query":
            envelope: dict
            try:
                parsed = json.loads(body or b"")
                if not isinstance(parsed, dict):
                    raise ValueError("body must be a JSON object")
                envelope = dict(parsed)
            except ValueError as exc:
                self.stats_counters.bad_requests += 1
                await self._write_http(writer, 400, {"error": str(exc)})
                return
            envelope.setdefault("kind", "query")
            response = json.loads(
                await self._serve_line(json.dumps(envelope).encode(), peer))
            if response.get("ok"):
                await self._write_http(writer, 200, response)
                return
            error = response.get("error", {})
            status = {protocol.ERROR_OVERLOADED: 429,
                      protocol.ERROR_SHUTTING_DOWN: 503,
                      protocol.ERROR_UNKNOWN_DATASET: 404,
                      protocol.ERROR_INTERNAL: 500}.get(
                          error.get("code"), 400)
            extra = {}
            if error.get("retry_after_ms") is not None:
                extra["Retry-After"] = str(
                    max(1, round(error["retry_after_ms"] / 1e3)))
            await self._write_http(writer, status, response, extra)
            return
        await self._write_http(writer, 404,
                               {"error": f"no route {method} {target}"})

    async def _write_http(self, writer: asyncio.StreamWriter, status: int,
                          payload: dict,
                          extra_headers: dict[str, str] | None = None
                          ) -> None:
        """Emit one ``Connection: close`` HTTP/1.1 JSON response."""
        body = json.dumps(payload).encode()
        reason = _HTTP_REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- stats -----------------------------------------------------------------

    def stats(self) -> dict:
        """The service stats snapshot plus this server's ``server`` block.

        The service portion is
        :meth:`DiversityService.stats <repro.service.service.DiversityService.stats>`
        verbatim (same versioned schema as the in-process API); the
        ``server`` section adds admission/batching counters, the
        server-observed latency percentile block
        (:func:`~repro.service.workload.latency_summary`), per-client
        accounting, the per-dataset rejection split and — on a
        QoS-enabled daemon — the WDRR scheduler's snapshot under
        ``server.qos`` (per-tenant quota knobs, queue depth, deficit,
        admission counters and latency percentiles; ``None`` when QoS
        is off).  ``GET /stats`` and the NDJSON ``stats`` kind both
        return exactly this payload.
        """
        counters = self.stats_counters
        payload = self.service.stats()
        payload["server"] = {
            "draining": self._draining,
            "in_flight": self._pending,
            "uptime_seconds": (
                time.perf_counter() - self._started_at
                if self._started_at is not None else 0.0),
            "config": {
                "batch_window_ms": self.config.batch_window_ms,
                "max_queue": self.config.max_queue,
                "max_batch": self.config.max_batch,
                "retry_after_ms": self.config.retry_after_ms,
                "qos": self.config.qos,
            },
            "connections": counters.connections,
            "http_requests": counters.http_requests,
            "accepted": counters.accepted,
            "rejected_overload": counters.rejected_overload,
            "rejected_draining": counters.rejected_draining,
            "bad_requests": counters.bad_requests,
            "internal_errors": counters.internal_errors,
            "batches_dispatched": counters.batches_dispatched,
            "batched_requests": counters.batched_requests,
            "queries_served": counters.queries_served,
            "refreshes": counters.refreshes,
            "latency": latency_summary(self._latencies),
            "clients": {peer: client.as_dict()
                        for peer, client in counters.clients.items()},
            "rejected_datasets": dict(counters.rejected_datasets),
            "qos": self.qos.stats() if self.qos is not None else None,
        }
        return payload


__all__ = ["ServerConfig", "ServerStats", "DiversityServer"]
