"""Index persistence: ``<path>.npz`` (rung point arrays) + ``<path>.json``.

A warm service loads the index from disk and skips the MapReduce build
entirely — the round-trip is exact (``np.savez`` stores float64 rows
byte-for-byte), so a reloaded index answers every query with the same bits
as the index that built it.  The JSON sidecar carries everything routing
needs (metric, dimension estimate, ladder geometry, per-rung parameters)
plus a fingerprint of the source dataset for provenance.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service.index import FAMILIES, CoresetIndex, LadderRung

#: Format version written into the sidecar; bump on incompatible layout.
INDEX_FORMAT_VERSION = 1


def _paths(path: str | Path) -> tuple[Path, Path]:
    # Append rather than Path.with_suffix: the latter would strip a dotted
    # final segment, making distinct user paths ("model.a", "model.b")
    # silently collide on the same files.
    path = Path(path)
    return (path.parent / f"{path.name}.npz",
            path.parent / f"{path.name}.json")


def save_index(index: CoresetIndex, path: str | Path) -> None:
    """Persist *index* as ``<path>.npz`` + ``<path>.json``."""
    npz_path, json_path = _paths(path)
    npz_path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    rung_records = []
    for i, rung in enumerate(index.all_rungs()):
        array_key = f"rung_{i}"
        arrays[array_key] = rung.coreset.points
        record = rung.describe()
        record["array"] = array_key
        rung_records.append(record)
    metadata = {
        "format_version": INDEX_FORMAT_VERSION,
        "metric": index.metric_name,
        "dimension_estimate": index.dimension_estimate,
        "seed": index.seed,
        "ladder": index.ladder,
        "source": index.source,
        "build_calls": index.build_calls,
        "build_seconds": index.build_seconds,
        "rungs": rung_records,
    }
    np.savez(npz_path, **arrays)
    json_path.write_text(json.dumps(metadata, indent=2, sort_keys=True) + "\n")


def load_index(path: str | Path) -> CoresetIndex:
    """Load an index saved by :func:`save_index` (exact round-trip)."""
    npz_path, json_path = _paths(path)
    if not npz_path.exists() or not json_path.exists():
        raise ValidationError(
            f"no saved index at {Path(path)} "
            f"(need both {npz_path.name} and {json_path.name})")
    metadata = json.loads(json_path.read_text())
    version = metadata.get("format_version")
    if version != INDEX_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported index format version {version!r} "
            f"(this build reads version {INDEX_FORMAT_VERSION})")
    metric = metadata["metric"]
    rungs: dict[str, list[LadderRung]] = {}
    with np.load(npz_path) as arrays:
        for record in metadata["rungs"]:
            family = record["family"]
            if family not in FAMILIES:
                raise ValidationError(f"unknown family {family!r} in {json_path}")
            rungs.setdefault(family, []).append(LadderRung(
                family=family,
                k_cap=int(record["k_cap"]),
                k_prime=int(record["k_prime"]),
                coreset=PointSet(arrays[record["array"]], metric=metric),
                build_seconds=float(record.get("build_seconds", 0.0)),
            ))
    for family_rungs in rungs.values():
        family_rungs.sort(key=lambda rung: (rung.k_cap, rung.k_prime))
    return CoresetIndex(
        metric_name=metric,
        dimension_estimate=float(metadata["dimension_estimate"]),
        rungs=rungs,
        ladder=metadata.get("ladder", {}),
        source=metadata.get("source", {}),
        seed=metadata.get("seed"),
        build_calls=int(metadata.get("build_calls", 0)),
        build_seconds=float(metadata.get("build_seconds", 0.0)),
    )
