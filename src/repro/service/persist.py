"""Index persistence: ``<path>.npz`` (rung point arrays) + ``<path>.json``.

A warm service loads the index from disk and skips the MapReduce build
entirely — the round-trip is exact (``np.savez`` stores float64 rows
byte-for-byte), so a reloaded index answers every query with the same bits
as the index that built it.  The JSON sidecar carries everything routing
needs (metric, dimension estimate, ladder geometry, per-rung parameters)
plus a fingerprint of the source dataset for provenance.

Format history:

* **version 1** (PR 3) — metric / ladder / source / rung records;
* **version 2** (this layer) — adds the ``extra`` block, which records
  the incremental-refresh history written by
  :meth:`repro.service.index.CoresetIndex.extend`.  Version-1 files load
  unchanged (their ``extra`` is empty); writes always produce version 2.
  Later version-2 writes additionally record the storage ``dtype``; the
  field is informational (the ``.npz`` arrays are authoritative — float32
  rungs round-trip bit-exactly through ``np.savez``), and files written
  before it exist load as the float64 their arrays contain.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service.index import FAMILIES, CoresetIndex, LadderRung

#: Format version written into the sidecar; bump on incompatible layout.
INDEX_FORMAT_VERSION = 2

#: Sidecar versions this build can read (v1 = PR 3-era, no ``extra``).
READABLE_FORMAT_VERSIONS = (1, 2)


def _paths(path: str | Path) -> tuple[Path, Path]:
    # Append rather than Path.with_suffix: the latter would strip a dotted
    # final segment, making distinct user paths ("model.a", "model.b")
    # silently collide on the same files.
    path = Path(path)
    return (path.parent / f"{path.name}.npz",
            path.parent / f"{path.name}.json")


def save_index(index: CoresetIndex, path: str | Path) -> None:
    """Persist *index* as ``<path>.npz`` + ``<path>.json``.

    Writes are atomic per file (temp name + ``os.replace``): an
    in-place re-save — the default of ``repro refresh`` — can crash
    mid-write without destroying the existing index, the reader at worst
    sees the old pair or a new-``npz``/old-``json`` mix from the same
    index lineage, never a truncated file.
    """
    npz_path, json_path = _paths(path)
    npz_path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    rung_records = []
    for i, rung in enumerate(index.all_rungs()):
        array_key = f"rung_{i}"
        arrays[array_key] = rung.coreset.points
        record = rung.describe()
        record["array"] = array_key
        rung_records.append(record)
    metadata = {
        "format_version": INDEX_FORMAT_VERSION,
        "metric": index.metric_name,
        "dtype": index.dtype,
        "dimension_estimate": index.dimension_estimate,
        "seed": index.seed,
        "ladder": index.ladder,
        "source": index.source,
        "build_calls": index.build_calls,
        "build_seconds": index.build_seconds,
        "extra": index.extra,
        "rungs": rung_records,
    }
    # np.savez appends ".npz" unless the name already ends with it, so
    # the temp names keep the final suffix.
    npz_tmp = npz_path.parent / f"{npz_path.stem}.tmp{os.getpid()}.npz"
    json_tmp = json_path.parent / f"{json_path.name}.tmp{os.getpid()}"
    np.savez(npz_tmp, **arrays)
    json_tmp.write_text(json.dumps(metadata, indent=2, sort_keys=True) + "\n")
    os.replace(npz_tmp, npz_path)
    os.replace(json_tmp, json_path)


def load_index(path: str | Path,
               dtype: "str | np.dtype | None" = None) -> CoresetIndex:
    """Load an index saved by :func:`save_index` (exact round-trip).

    Reads the current format and every older version listed in
    :data:`READABLE_FORMAT_VERSIONS`; anything else raises
    :class:`~repro.exceptions.ValidationError`.

    Rung arrays load in their stored dtype (float32 indexes stay
    float32; files written before the dtype field load as float64).
    Pass *dtype* to cast on load — e.g. ``dtype="float32"`` serves a
    float64 index on the fast path without re-building it.
    """
    npz_path, json_path = _paths(path)
    if not npz_path.exists() or not json_path.exists():
        raise ValidationError(
            f"no saved index at {Path(path)} "
            f"(need both {npz_path.name} and {json_path.name})")
    metadata = json.loads(json_path.read_text())
    version = metadata.get("format_version")
    if version not in READABLE_FORMAT_VERSIONS:
        raise ValidationError(
            f"unsupported index format version {version!r} "
            f"(this build reads versions {READABLE_FORMAT_VERSIONS})")
    metric = metadata["metric"]
    rungs: dict[str, list[LadderRung]] = {}
    with np.load(npz_path) as arrays:
        for record in metadata["rungs"]:
            family = record["family"]
            if family not in FAMILIES:
                raise ValidationError(f"unknown family {family!r} in {json_path}")
            rungs.setdefault(family, []).append(LadderRung(
                family=family,
                k_cap=int(record["k_cap"]),
                k_prime=int(record["k_prime"]),
                coreset=PointSet(arrays[record["array"]], metric=metric),
                build_seconds=float(record.get("build_seconds", 0.0)),
            ))
    for family_rungs in rungs.values():
        family_rungs.sort(key=lambda rung: (rung.k_cap, rung.k_prime))
    extra = metadata.get("extra")
    index = CoresetIndex(
        metric_name=metric,
        dimension_estimate=float(metadata["dimension_estimate"]),
        rungs=rungs,
        ladder=metadata.get("ladder", {}),
        source=metadata.get("source", {}),
        seed=metadata.get("seed"),
        build_calls=int(metadata.get("build_calls", 0)),
        build_seconds=float(metadata.get("build_seconds", 0.0)),
        extra=extra if isinstance(extra, dict) else {},
    )
    return index if dtype is None else index.astype(dtype)
