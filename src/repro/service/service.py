"""The build-once / serve-many diversity query service.

:class:`DiversityService` is the systems layer the paper's composability
result (Definition 2) makes possible: the dataset is ingested *once* into a
:class:`~repro.service.index.CoresetIndex` — a ladder of core-set
resolutions per construction family, built through the zero-copy MapReduce
engine — and every subsequent ``(objective, k, eps)`` query is answered
from cached read-only state:

1. **route**: pick the cheapest ladder rung covering the query;
2. **result cache**: an LRU keyed on ``(objective, k, seed, rung)`` returns
   repeated queries without touching a solver;
3. **distance-matrix reuse**: per rung, the blocked pairwise matrix is
   computed once and shared by every solver run on that rung —
   :meth:`DiversityService.query_batch` additionally groups same-rung
   queries so a mixed batch still computes each matrix at most once;
4. **solve**: the sequential approximation from
   :mod:`repro.diversity.sequential.registry` runs on the tiny core-set.

Queries never rebuild core-sets: :attr:`DiversityService.build_calls`
counts rung builds performed by this instance and stays frozen across any
number of queries (the warm-path guarantee the throughput benchmark and
tests assert).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Union

import numpy as np

from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_on_matrix
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service.cache import LRUCache
from repro.service.index import (
    CoresetIndex,
    LadderRung,
    build_coreset_index,
)
from repro.service.persist import load_index, save_index
from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class Query:
    """One diversity request: *k* points maximizing *objective*.

    ``epsilon`` is the approximation slack the caller tolerates; a smaller
    value routes to a larger (more accurate, slower) ladder rung.
    """

    objective: str
    k: int
    epsilon: float = 1.0


#: Accepted query spellings: a :class:`Query` or an
#: ``(objective, k[, epsilon])`` tuple/list.
QueryLike = Union[Query, tuple, list]


@dataclass(frozen=True)
class QueryResult:
    """Answer to one :class:`Query`.

    ``indices`` select rows of the serving rung's core-set; ``points`` are
    those rows (views into cached state — treat as read-only).  ``cached``
    marks answers served from the LRU without running a solver.
    """

    objective: str
    k: int
    epsilon: float
    indices: np.ndarray
    points: np.ndarray
    value: float
    rung: tuple[str, int, int]
    cached: bool
    solve_seconds: float


class DiversityService:
    """Serve many diversity queries from one core-set index.

    Parameters
    ----------
    index:
        A prebuilt (or loaded) :class:`CoresetIndex`.  When omitted, pass
        *points* and *k_max* instead and the index is built lazily on the
        first query (the "cold" path) or eagerly via :meth:`ensure_index`.
    points, k_max, build_options:
        Dataset and parameters for a lazy build; *build_options* are
        forwarded to :func:`repro.service.index.build_coreset_index`
        (``families``, ``multiplier``, ``parallelism``, ``executor``,
        ``seed``, ...).
    cache_size:
        Capacity of the LRU result cache.

    Example
    -------
    >>> from repro.datasets.synthetic import sphere_shell
    >>> service = DiversityService(points=sphere_shell(2000, 8, seed=0),
    ...                            k_max=8, k_min=8, seed=0)
    >>> first = service.query("remote-edge", k=4)
    >>> again = service.query("remote-edge", k=4)
    >>> first.value == again.value, again.cached
    (True, True)
    """

    def __init__(self, index: CoresetIndex | None = None, *,
                 points: PointSet | None = None, k_max: int | None = None,
                 cache_size: int = 128, **build_options):
        if index is None and (points is None or k_max is None):
            raise ValidationError(
                "DiversityService needs either a prebuilt index or "
                "points + k_max for a lazy build")
        self._index = index
        self._points = points
        self._k_max = (None if k_max is None
                       else check_positive_int(k_max, "k_max"))
        self._build_options = build_options
        self.cache = LRUCache(cache_size)
        #: Rung builds performed by this instance; queries never bump it.
        self.build_calls = 0
        self.queries_answered = 0
        self.batches_answered = 0
        self._matrices: dict[tuple[str, int, int], np.ndarray] = {}

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_dataset(cls, points: PointSet, k_max: int, *,
                     cache_size: int = 128, **build_options) -> "DiversityService":
        """Build the index eagerly and return a warm service."""
        service = cls(points=points, k_max=k_max, cache_size=cache_size,
                      **build_options)
        service.ensure_index()
        return service

    @classmethod
    def from_file(cls, path: str | Path, *,
                  cache_size: int = 128) -> "DiversityService":
        """Warm-start from an index persisted by :meth:`save` — no build."""
        return cls(load_index(path), cache_size=cache_size)

    @property
    def index(self) -> CoresetIndex | None:
        """The index, or ``None`` before the lazy build has happened."""
        return self._index

    def ensure_index(self) -> CoresetIndex:
        """Build the index now if it does not exist yet."""
        if self._index is None:
            self._index = build_coreset_index(self._points, self._k_max,
                                              **self._build_options)
            self.build_calls += self._index.build_calls
        return self._index

    def save(self, path: str | Path) -> None:
        """Persist the index for a later :meth:`from_file` warm start."""
        save_index(self.ensure_index(), path)

    # -- queries -----------------------------------------------------------------
    def query(self, objective: str | Objective, k: int,
              epsilon: float = 1.0) -> QueryResult:
        """Answer one ``(objective, k, eps)`` request from cached state."""
        return self.query_batch([Query(get_objective(objective).name, k,
                                       epsilon)])[0]

    def query_batch(self, queries: Iterable[QueryLike]) -> list[QueryResult]:
        """Answer many requests, sharing work across them.

        Queries are routed first; same-rung cache misses are grouped so the
        rung's blocked pairwise matrix is computed (or fetched) exactly
        once per batch, then each solver runs on the shared matrix.
        Results come back in input order; exact repeats — within the batch
        or across calls — are served from the LRU.
        """
        index = self.ensure_index()
        normalized = [self._normalize(query) for query in queries]
        results: list[QueryResult | None] = [None] * len(normalized)
        groups: dict[tuple[str, int, int], list[tuple[int, Query, tuple, LadderRung]]] = {}
        pending: set[tuple] = set()
        for i, query in enumerate(normalized):
            rung = index.route(query.objective, query.k, query.epsilon)
            cache_key = (query.objective, query.k, index.seed, rung.key)
            if cache_key not in pending:
                hit = self.cache.get(cache_key)
                if hit is not None:
                    # Echo the caller's own slack: the cached answer is
                    # valid for any epsilon routing to the same rung.
                    results[i] = replace(hit, epsilon=query.epsilon,
                                         cached=True, solve_seconds=0.0)
                    continue
                pending.add(cache_key)
            # Either the first (to-solve) occurrence of this key or an
            # in-batch repeat of it: repeats defer their cache probe to
            # after the solve, so stats count each query exactly once and
            # agree with the cached flags actually returned.
            groups.setdefault(rung.key, []).append((i, query, cache_key, rung))
        for members in groups.values():
            dist = self._matrix_for(members[0][3])
            solved: dict[tuple, QueryResult] = {}
            for i, query, cache_key, rung in members:
                if cache_key in solved:  # in-batch repeat
                    # Normally an LRU hit; interleaved solves may have
                    # evicted it (tiny cache), so fall back to the
                    # batch-local memo — the miss the probe just counted
                    # is then accurate, and no solver runs either way.
                    hit = self.cache.get(cache_key)
                    if hit is None:
                        hit = solved[cache_key]
                    result = replace(hit, epsilon=query.epsilon,
                                     cached=True, solve_seconds=0.0)
                else:
                    result = self._solve(query, rung, dist)
                    solved[cache_key] = result
                    self.cache.put(cache_key, result)
                results[i] = result
        self.queries_answered += len(normalized)
        self.batches_answered += 1
        return results  # type: ignore[return-value]

    def _solve(self, query: Query, rung: LadderRung,
               dist: np.ndarray) -> QueryResult:
        objective = get_objective(query.objective)
        started = time.perf_counter()
        indices = solve_on_matrix(dist, query.k, objective)
        value = objective.value(dist[np.ix_(indices, indices)])
        return QueryResult(
            objective=objective.name, k=query.k, epsilon=query.epsilon,
            indices=indices, points=rung.coreset.points[indices],
            value=float(value), rung=rung.key, cached=False,
            solve_seconds=time.perf_counter() - started,
        )

    def _matrix_for(self, rung: LadderRung) -> np.ndarray:
        """The rung's pairwise matrix, computed once through blocked kernels."""
        dist = self._matrices.get(rung.key)
        if dist is None:
            dist = rung.coreset.pairwise()
            self._matrices[rung.key] = dist
        return dist

    @staticmethod
    def _normalize(query) -> Query:
        if isinstance(query, Query):
            objective = get_objective(query.objective).name
            query = Query(objective, query.k, query.epsilon)
        elif isinstance(query, (tuple, list)) and len(query) in (2, 3):
            objective = get_objective(query[0]).name
            epsilon = float(query[2]) if len(query) == 3 else 1.0
            query = Query(objective, int(query[1]), epsilon)
        else:
            raise ValidationError(
                f"cannot interpret query {query!r}; pass a Query or an "
                "(objective, k[, epsilon]) tuple")
        check_positive_int(query.k, "k")
        check_in_range(query.epsilon, "epsilon", 0.0, 1.0)
        return query

    # -- observability -----------------------------------------------------------
    def stats(self) -> dict:
        """Service counters: queries, cache behaviour, builds, matrices."""
        return {
            "queries_answered": self.queries_answered,
            "batches_answered": self.batches_answered,
            "build_calls": self.build_calls,
            "cache": self.cache.stats.as_dict(),
            "cached_matrices": len(self._matrices),
            "index_built": self._index is not None,
        }
