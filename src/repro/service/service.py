"""The build-once / serve-many diversity query service.

:class:`DiversityService` is the systems layer the paper's composability
result (Definition 2) makes possible: the dataset is ingested *once* into a
:class:`~repro.service.index.CoresetIndex` — a ladder of core-set
resolutions per construction family, built through the zero-copy MapReduce
engine — and every subsequent ``(objective, k, eps)`` query is answered
from cached read-only state:

1. **route**: pick the cheapest ladder rung covering the query;
2. **result cache**: a lock-striped LRU keyed on
   ``(dataset_id, epoch, objective, k, seed, rung)`` returns repeated
   queries without touching a solver;
3. **distance-matrix reuse**: per rung, the blocked pairwise matrix is
   computed once — under a memory budget with LRU eviction
   (:class:`~repro.service.matrices.MatrixCache`) — and shared by every
   solver run on that rung; concurrent same-rung queries single-flight on
   a per-rung lock so the matrix is computed exactly once under
   contention;
4. **solve**: the sequential approximation from
   :mod:`repro.diversity.sequential.registry` runs on the tiny core-set —
   in the calling thread, on a thread pool, or on worker *processes* over
   a shared-memory data plane, depending on the pluggable execution
   backend (:mod:`repro.service.executors`).  All three backends return
   bit-identical answers.

Result-cache lookups are **epsilon-aware**: a cached answer solved on a
*larger* covering rung (i.e. for a tighter ``eps``) is valid for any
looser request with the same ``(objective, k, seed)`` — the core-set
guarantee only improves with ``k'`` — so such probes are served from
cache without a solve and counted in :attr:`DiversityService.eps_hits`.

Queries never rebuild core-sets: :attr:`DiversityService.build_calls`
counts rung builds performed by this instance and stays frozen across any
number of queries (the warm-path guarantee the throughput benchmark and
tests assert).  Dataset growth is absorbed by :meth:`DiversityService.refresh`,
which streams the new points through the batched SMM path
(:meth:`~repro.service.index.CoresetIndex.extend`) and atomically swaps in
the extended index.

Thread safety: all query entry points (:meth:`~DiversityService.query`,
:meth:`~DiversityService.query_batch`,
:meth:`~DiversityService.query_concurrent`) and :meth:`~DiversityService.refresh`
are safe to call from multiple threads; counters are mutated under locks
and the index reference is swapped atomically.  Returned
:class:`QueryResult` arrays are views into shared cached state — treat
them as read-only.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Union

import numpy as np

from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_on_matrix
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service.cache import StripedLRUCache
from repro.service.executors import EXECUTOR_NAMES, create_executor
from repro.service.index import (
    CoresetIndex,
    LadderRung,
    build_coreset_index,
)
from repro.service.matrices import MatrixCache
from repro.service.persist import load_index, save_index
from repro.service.planner import CostModel, Plan, QueryPlanner
from repro.utils.validation import check_in_range, check_positive_int


#: Version of the canonical request/response/stats schemas.  Embedded in
#: every :meth:`Query.to_dict` / :meth:`QueryResult.to_dict` payload and
#: in :meth:`DiversityService.stats`, and checked by the matching
#: ``from_dict`` constructors — the wire protocol of ``repro serve``
#: (:mod:`repro.service.protocol`) rides on these dicts verbatim.
SCHEMA_VERSION = 1

#: Environment knobs of the float64 verify path (see
#: :meth:`DiversityService._maybe_verify`): ``REPRO_VERIFY_DTYPE=1``
#: enables it, ``REPRO_VERIFY_FRACTION`` samples a fraction of fresh
#: solves (default: all of them), ``REPRO_VERIFY_RTOL`` sets the
#: objective-value tolerance.
VERIFY_DTYPE_ENV_VAR = "REPRO_VERIFY_DTYPE"
VERIFY_FRACTION_ENV_VAR = "REPRO_VERIFY_FRACTION"
VERIFY_RTOL_ENV_VAR = "REPRO_VERIFY_RTOL"
_DEFAULT_VERIFY_RTOL = 1e-4


def _verify_config_from_env() -> tuple[bool, float, float]:
    """``(enabled, fraction, rtol)`` from the environment (best effort)."""
    enabled = os.environ.get(VERIFY_DTYPE_ENV_VAR, "").strip() in (
        "1", "true", "yes", "on")
    try:
        fraction = float(os.environ.get(VERIFY_FRACTION_ENV_VAR, "1.0"))
    except ValueError:
        fraction = 1.0
    try:
        rtol = float(os.environ.get(VERIFY_RTOL_ENV_VAR,
                                    str(_DEFAULT_VERIFY_RTOL)))
    except ValueError:
        rtol = _DEFAULT_VERIFY_RTOL
    return enabled, min(max(fraction, 0.0), 1.0), max(rtol, 0.0)


def _check_schema_version(payload: dict, what: str) -> None:
    """Reject payloads claiming a schema version we do not speak."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported {what} schema_version {version!r}; "
            f"this build speaks version {SCHEMA_VERSION}")


@dataclass(frozen=True)
class Query:
    """One diversity request: *k* points maximizing *objective*.

    ``epsilon`` is the approximation slack the caller tolerates; a smaller
    value routes to a larger (more accurate, slower) ladder rung.

    This dataclass is the canonical request schema: :meth:`to_dict` /
    :meth:`from_dict` round-trip it through JSON-ready dicts carrying a
    ``schema_version`` field, and every query entry point accepts
    :class:`Query` instances (bare ``(objective, k[, epsilon])`` tuples
    are still understood but deprecated).
    """

    objective: str
    k: int
    epsilon: float = 1.0

    def to_dict(self) -> dict:
        """JSON-ready form, stamped with :data:`SCHEMA_VERSION`."""
        return {"schema_version": SCHEMA_VERSION, "objective": self.objective,
                "k": self.k, "epsilon": self.epsilon}

    @classmethod
    def from_dict(cls, payload: dict) -> "Query":
        """Rebuild a :class:`Query` from a :meth:`to_dict` payload.

        A missing ``schema_version`` is read as the current version (the
        ergonomic wire form); an unknown one raises
        :class:`~repro.exceptions.ValidationError`.
        """
        _check_schema_version(payload, "Query")
        try:
            objective = str(payload["objective"])
            k = int(payload["k"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed Query payload {payload!r}: {exc}") from exc
        return cls(objective, k, float(payload.get("epsilon", 1.0)))


#: Accepted query spellings: a :class:`Query` or a deprecated
#: ``(objective, k[, epsilon])`` tuple/list.
QueryLike = Union[Query, tuple, list]


@dataclass(frozen=True)
class QueryResult:
    """Answer to one :class:`Query`.

    ``indices`` select rows of the serving rung's core-set; ``points`` are
    those rows (views into cached state — treat as read-only).  ``cached``
    marks answers served from the LRU without running a solver;
    ``eps_hit`` marks the subset of those served from a cached
    *tighter-epsilon* answer (epsilon-aware reuse).  ``epoch`` records the
    index epoch the answer was solved on — every result of one batch
    carries the same epoch (the mixed-epoch safety contract of
    :meth:`DiversityService.refresh`).

    Like :class:`Query`, this is the canonical response schema:
    :meth:`to_dict` / :meth:`from_dict` round-trip every field through
    JSON-ready dicts with a ``schema_version`` stamp.
    """

    objective: str
    k: int
    epsilon: float
    indices: np.ndarray
    points: np.ndarray
    value: float
    rung: tuple[str, int, int]
    cached: bool
    solve_seconds: float
    eps_hit: bool = False
    epoch: int = 0

    def to_dict(self) -> dict:
        """JSON-ready form: arrays become nested lists, rung a list."""
        return {
            "schema_version": SCHEMA_VERSION,
            "objective": self.objective,
            "k": self.k,
            "epsilon": self.epsilon,
            "indices": np.asarray(self.indices).tolist(),
            "points": np.asarray(self.points).tolist(),
            "value": self.value,
            "rung": list(self.rung),
            "cached": self.cached,
            "solve_seconds": self.solve_seconds,
            "eps_hit": self.eps_hit,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResult":
        """Rebuild a :class:`QueryResult` from a :meth:`to_dict` payload.

        Bit-exact for every field: JSON serializes float64 via shortest
        round-trip repr, so values and point coordinates survive the trip
        unchanged (the daemon's bit-identity contract rests on this).
        """
        _check_schema_version(payload, "QueryResult")
        try:
            family, k_cap, k_prime = payload["rung"]
            return cls(
                objective=str(payload["objective"]),
                k=int(payload["k"]),
                epsilon=float(payload["epsilon"]),
                indices=np.asarray(payload["indices"], dtype=np.intp),
                points=np.asarray(payload["points"], dtype=np.float64),
                value=float(payload["value"]),
                rung=(str(family), int(k_cap), int(k_prime)),
                cached=bool(payload["cached"]),
                solve_seconds=float(payload["solve_seconds"]),
                eps_hit=bool(payload.get("eps_hit", False)),
                epoch=int(payload.get("epoch", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed QueryResult payload: {exc}") from exc


class DiversityService:
    """Serve many diversity queries from one core-set index.

    Parameters
    ----------
    index:
        A prebuilt (or loaded) :class:`CoresetIndex`.  When omitted, pass
        *points* and *k_max* instead and the index is built lazily on the
        first query (the "cold" path) or eagerly via :meth:`ensure_index`.
    points, k_max, build_options:
        Dataset and parameters for a lazy build; *build_options* are
        forwarded to :func:`repro.service.index.build_coreset_index`
        (``families``, ``multiplier``, ``parallelism``, ``executor``,
        ``seed``, ...).
    cache_size:
        Capacity of the LRU result cache.
    cache_stripes:
        Lock stripes of the result cache; threads touching different keys
        contend on different locks.
    matrix_budget_mb:
        Byte budget (in MiB) for cached rung distance matrices.  ``None``
        reads ``REPRO_MATRIX_BUDGET_MB`` from the environment; ``0``
        forces unbudgeted.  Evicted matrices are recomputed on demand
        with identical results (solvers are deterministic on a fixed
        core-set), so the budget trades recompute time for bounded
        resident memory.  In process mode the same budget governs the
        shared-memory matrix segments of each epoch's data plane.
    executor:
        Default execution backend for :meth:`query` / :meth:`query_batch`
        — ``"serial"`` (default), ``"thread"`` or ``"process"`` (see
        :mod:`repro.service.executors`); all three produce bit-identical
        answers.  :meth:`query_concurrent` defaults to ``"thread"`` when
        the service default is serial.  Services using the process
        backend should be :meth:`close`\\ d (or used as a context
        manager) so the worker pool and shared segments are torn down
        deterministically; GC finalizers back that up.
    executor_workers:
        Worker fan-out used when the default backend is ``thread`` or
        ``process`` and the call does not pass ``max_workers``.
    verify_dtype, verify_fraction, verify_rtol:
        The float64 verify path for reduced-precision (float32) indexes:
        when enabled, a sampled fraction of fresh solves is recomputed
        in float64 and compared — objective values within *verify_rtol*,
        selected indices identical or tie-explained — with mismatch
        counters surfaced in ``stats()["verify"]``.  Each ``None``
        defers to the environment (``REPRO_VERIFY_DTYPE=1``,
        ``REPRO_VERIFY_FRACTION``, ``REPRO_VERIFY_RTOL``).  No-op on
        float64 indexes.
    plan, planner:
        Query-planning mode.  ``"static"`` (default) keeps today's fixed
        policy: rung from the epsilon sizing, executor from
        *executor*/the call site, matrices computed on demand.
        ``"auto"`` lets a :class:`~repro.service.planner.QueryPlanner`
        pick the cheapest executor and matrix strategy per batch from a
        fitted :class:`~repro.service.planner.CostModel` (loaded from
        the machine profile's calibration block; refined online from
        measured batch times).  The solved rung is always the statically
        routed one and every backend is bit-identical, so ``auto``
        answers match ``static`` exactly — only wall time changes.  An
        explicit ``executor=`` on a call always wins over the planner.
        *planner* injects a (possibly shared) planner instance — a
        registry passes one so all tenants refine one model; tests pass
        one with a synthetic cost table for deterministic plans.
    dataset_id, matrices, executor_pool:
        Multi-tenant wiring used by
        :class:`~repro.service.registry.IndexRegistry`: *dataset_id*
        namespaces every matrix- and result-cache key, *matrices* injects
        a registry-shared :class:`~repro.service.matrices.MatrixCache`
        (all tenants compete under one budget), and *executor_pool*
        injects a shared :class:`~repro.service.executors.ExecutorPool`
        so every tenant's process queries ride one worker fleet and one
        shared-memory plane.  Standalone services leave all three at
        their defaults and own their caches/backends outright.

    Thread safety: instances are safe to share across threads; see the
    module docstring for the locking model.

    Example
    -------
    >>> from repro.datasets.synthetic import sphere_shell
    >>> service = DiversityService(points=sphere_shell(2000, 8, seed=0),
    ...                            k_max=8, k_min=8, seed=0)
    >>> first = service.query("remote-edge", k=4)
    >>> again = service.query("remote-edge", k=4)
    >>> first.value == again.value, again.cached
    (True, True)
    """

    def __init__(self, index: CoresetIndex | None = None, *,
                 points: PointSet | None = None, k_max: int | None = None,
                 cache_size: int = 128, cache_stripes: int = 8,
                 matrix_budget_mb: int | None = None,
                 executor: str = "serial", executor_workers: int = 4,
                 verify_dtype: bool | None = None,
                 verify_fraction: float | None = None,
                 verify_rtol: float | None = None,
                 plan: str = "static",
                 planner: QueryPlanner | None = None,
                 dataset_id: str = "",
                 matrices: MatrixCache | None = None,
                 executor_pool=None,
                 **build_options):
        if index is None and (points is None or k_max is None):
            raise ValidationError(
                "DiversityService needs either a prebuilt index or "
                "points + k_max for a lazy build")
        if executor not in EXECUTOR_NAMES:
            raise ValidationError(
                f"unknown executor {executor!r}; "
                f"known: {', '.join(EXECUTOR_NAMES)}")
        if plan not in ("static", "auto"):
            raise ValidationError(
                f"unknown plan mode {plan!r}; known: static, auto")
        self.plan_mode = plan
        if planner is not None:
            self._planner = planner
        elif plan == "auto":
            # Only the auto path pays the profile read; static services
            # keep an idle default planner so stats() stays fixed-shape.
            from repro.tuning import load_calibration

            self._planner = QueryPlanner(
                CostModel.from_payload(load_calibration()))
        else:
            self._planner = QueryPlanner()
        self._index = index
        self._points = points
        self._k_max = (None if k_max is None
                       else check_positive_int(k_max, "k_max"))
        self._build_options = build_options
        #: Namespace this service's cache keys live under.  Standalone
        #: services use the empty id; an :class:`~repro.service.registry.
        #: IndexRegistry` assigns each tenant its ``dataset_id`` so two
        #: tenants with identically-shaped rungs can never alias in the
        #: shared matrix plane or the result cache.
        self.dataset_id = str(dataset_id)
        self.cache = StripedLRUCache(cache_size, stripes=cache_stripes)
        if matrix_budget_mb is None:
            budget_bytes: int | None = None  # defer to the environment
        elif matrix_budget_mb == 0:
            budget_bytes = 0  # explicit: unbudgeted
        else:
            budget_bytes = check_positive_int(
                matrix_budget_mb, "matrix_budget_mb") * 2**20
        self._matrix_budget_bytes = budget_bytes
        # A registry injects one shared MatrixCache + ExecutorPool so all
        # tenants compete under one budget; standalone services own theirs.
        self._owns_matrices = matrices is None
        self._matrices = MatrixCache(budget_bytes) if matrices is None \
            else matrices
        self._pool = executor_pool
        self.default_executor = executor
        self.executor_workers = check_positive_int(executor_workers,
                                                   "executor_workers")
        env_enabled, env_fraction, env_rtol = _verify_config_from_env()
        self._verify_enabled = (env_enabled if verify_dtype is None
                                else bool(verify_dtype))
        self._verify_fraction = (env_fraction if verify_fraction is None
                                 else min(max(float(verify_fraction), 0.0),
                                          1.0))
        self._verify_rtol = (env_rtol if verify_rtol is None
                             else max(float(verify_rtol), 0.0))
        self._verify_clock = 0  # fresh solves seen (the sampling stride)
        self.verify_checks = 0
        self.verify_value_mismatches = 0
        self.verify_index_mismatches = 0
        self.verify_ties = 0
        self._executors: dict[str, object] = {}
        self._executors_lock = threading.Lock()
        #: Rung builds performed by this instance; queries never bump it.
        self.build_calls = 0
        self.queries_answered = 0
        self.batches_answered = 0
        self.concurrent_batches = 0
        #: Queries served from a cached tighter-eps answer (epsilon-aware
        #: reuse); a subset of the result cache's counted misses.
        self.eps_hits = 0
        #: Routing decisions taken — exactly one per query answered (the
        #: single-query path shares the batch workspace, it does not
        #: route twice).
        self.routing_decisions = 0
        self.refreshes = 0
        self._epoch = 0
        self._build_lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._counter_lock = threading.Lock()

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_dataset(cls, points: PointSet, k_max: int, *,
                     cache_size: int = 128,
                     matrix_budget_mb: int | None = None,
                     **build_options) -> "DiversityService":
        """Build the index eagerly and return a warm service."""
        service = cls(points=points, k_max=k_max, cache_size=cache_size,
                      matrix_budget_mb=matrix_budget_mb, **build_options)
        service.ensure_index()
        return service

    @classmethod
    def from_file(cls, path: str | Path, *, cache_size: int = 128,
                  matrix_budget_mb: int | None = None,
                  dtype: str | None = None,
                  plan: str = "static") -> "DiversityService":
        """Warm-start from an index persisted by :meth:`save` — no build.

        *dtype* casts the loaded index (e.g. ``"float32"`` to serve an
        existing float64 index on the fast path); ``None`` serves it in
        its stored dtype.  *plan* selects the query-planning mode (see
        the constructor).
        """
        return cls(load_index(path, dtype=dtype), cache_size=cache_size,
                   matrix_budget_mb=matrix_budget_mb, plan=plan)

    @property
    def index(self) -> CoresetIndex | None:
        """The index, or ``None`` before the lazy build has happened."""
        return self._index

    def ensure_index(self) -> CoresetIndex:
        """Build the index now if it does not exist yet.

        Safe under contention: concurrent first queries double-check
        under a build lock, so the lazy build runs exactly once and
        :attr:`build_calls` is bumped exactly once.
        """
        index = self._index
        if index is None:
            with self._build_lock:
                if self._index is None:
                    built = build_coreset_index(self._points, self._k_max,
                                                **self._build_options)
                    with self._counter_lock:
                        self.build_calls += built.build_calls
                    self._index = built
                index = self._index
        return index

    def save(self, path: str | Path) -> None:
        """Persist the index for a later :meth:`from_file` warm start."""
        save_index(self.ensure_index(), path)

    def refresh(self, new_points: PointSet, *,
                batch_size: int | None = None) -> CoresetIndex:
        """Absorb *new_points* into the index without a MapReduce rebuild.

        Streams the new data through the batched SMM path per rung
        (:meth:`CoresetIndex.extend <repro.service.index.CoresetIndex.extend>`),
        then atomically swaps the extended index in: the epoch embedded in
        every cache key is bumped and both the result cache and the matrix
        cache are replaced with empty successors, so queries in flight
        during the swap can neither poison the new epoch's caches nor
        evict its entries.  Queries keep being served (from the old
        index) while the extension is computed.

        Returns the new index.  :attr:`build_calls` is not affected —
        refreshes are counted separately in :attr:`refreshes`.
        """
        with self._refresh_lock:
            extended = self.ensure_index().extend(new_points,
                                                  batch_size=batch_size)
            with self._counter_lock:
                # Swap index, epoch and both caches together: _snapshot
                # readers take the same lock, so no query can ever pair
                # the new index with the old epoch (or vice versa) in its
                # cache keys.  The caches are *replaced*, not cleared:
                # queries in flight keep writing to their snapshotted old
                # objects, which die with them — a stale epoch can
                # neither pin matrices in the serving cache nor evict
                # live results from the new epoch's LRU.
                self._index = extended
                self._epoch += 1
                self.refreshes += 1
                epoch = self._epoch
                self.cache = self.cache.successor()
                if self._owns_matrices:
                    self._matrices = self._matrices.successor()
            if not self._owns_matrices:
                # The matrix cache is shared with other tenants, so it
                # cannot be swapped wholesale: drop only this dataset's
                # superseded epochs.  The purge bumps the cache
                # generation, so stale-epoch computes in flight cannot
                # re-park their matrices afterwards.
                self._matrices.purge(self.dataset_id, before_epoch=epoch)
            # Retire superseded process-executor planes promptly: batches
            # in flight hold pins, so their workers still finish on the
            # old epoch's segments; the unlink happens when they drain.
            backends = self._active_backends()
        for backend in backends:
            on_epoch = getattr(backend, "on_epoch", None)
            if on_epoch is not None:
                on_epoch(epoch, self.dataset_id)
        return extended

    def _snapshot(self) -> tuple[CoresetIndex, int, StripedLRUCache,
                                 MatrixCache]:
        """A consistent ``(index, epoch, cache, matrices)`` serving state.

        Results and matrices are cached under keys embedding the epoch;
        reading all four values under the lock :meth:`refresh` swaps
        them under guarantees a query that raced a refresh caches only
        under its own (now dead) epoch and into its own (now superseded)
        cache objects — never stale data in, or pressure on, the live
        ones.
        """
        self.ensure_index()  # after this, _index is never None again
        with self._counter_lock:
            return self._index, self._epoch, self.cache, self._matrices

    # -- queries -----------------------------------------------------------------
    def query(self, objective: str | Objective, k: int,
              epsilon: float = 1.0) -> QueryResult:
        """Answer one ``(objective, k, eps)`` request from cached state."""
        return self.query_batch([Query(get_objective(objective).name, k,
                                       epsilon)])[0]

    def query_batch(self, queries: Iterable[QueryLike], *,
                    executor: str | None = None) -> list[QueryResult]:
        """Answer many requests, sharing work across them.

        Queries are routed first; same-rung cache misses are grouped so the
        rung's blocked pairwise matrix is computed (or fetched) exactly
        once per batch, then each solver runs on the shared matrix —
        in this thread (``serial``, the default), or on the requested
        execution backend (*executor* overrides the service default; the
        ``process`` backend dispatches solves to worker processes over
        the shared-memory data plane with identical answers).  Results
        come back in input order; exact repeats — within the batch or
        across calls — are served from the LRU.

        With ``plan="auto"`` and no explicit *executor*, the query
        planner picks the backend the cost model predicts cheapest for
        this batch; answers are identical either way.
        """
        return self._execute(queries, executor, self.executor_workers,
                             concurrent=False)

    def query_concurrent(self, queries: Iterable[QueryLike],
                         max_workers: int = 4,
                         executor: str | None = None) -> list[QueryResult]:
        """Answer many requests on a worker pool, sharing cached state.

        With the default ``thread`` backend each query independently
        routes, probes the lock-striped result cache, fetches its rung
        matrix through the single-flight
        :class:`~repro.service.matrices.MatrixCache` (concurrent same-rung
        queries compute the matrix exactly once), and solves.  With
        ``executor="process"`` the batch fans out to worker processes
        over the shared-memory data plane instead, sidestepping the GIL
        for the Python-heavy solvers.  Results come back in input order
        and are identical to :meth:`query_batch` on the same service
        state — solvers are deterministic on a fixed core-set.

        Unlike :meth:`query_batch`, two *identical* in-flight thread
        queries may each run the (deterministic) solver if neither has
        been cached yet; the LRU still counts every query as exactly one
        hit or miss.
        """
        check_positive_int(max_workers, "max_workers")
        return self._execute(queries, executor, max_workers, concurrent=True)

    def _execute(self, queries: Iterable[QueryLike], executor: str | None,
                 max_workers: int, concurrent: bool) -> list[QueryResult]:
        """Common query funnel: normalize, snapshot, plan, dispatch, count.

        The epsilon-reuse candidates are resolved here, against the
        cache state *at batch start*, and handed to the backend: every
        executor then sees the same reuse set regardless of solve order
        or thread timing, which is what keeps concurrent answers
        bit-identical to ``query_batch`` on mixed-eps workloads.

        When the call site names no *executor*, ``plan="auto"`` asks the
        query planner for the predicted-cheapest backend (and records
        the plan's measured wall time afterwards); ``plan="static"``
        resolves it exactly as before — the service default, or
        ``thread`` for concurrent calls on a serial-default service.
        """
        queries = list(queries)
        if any(isinstance(query, (tuple, list)) for query in queries):
            warnings.warn(
                "bare-tuple queries are deprecated; pass "
                "repro.service.Query objects (schema_version "
                f"{SCHEMA_VERSION})", DeprecationWarning, stacklevel=3)
        normalized = [self._normalize(query) for query in queries]
        if not normalized:
            if not concurrent:
                with self._counter_lock:
                    self.batches_answered += 1
            return []
        snapshot = self._snapshot()
        rungs, reuse, cached_flags = self._plan_batch(snapshot, normalized)
        plan: Plan | None = None
        if executor is None:
            if self.plan_mode == "auto":
                index, epoch, _cache, matrices = snapshot

                def resident(rung_key, _m=matrices, _e=epoch):
                    """Whether the rung's matrix is already cached."""
                    return _m.contains((self.dataset_id, _e, rung_key))

                plan = self._planner.plan_batch(normalized, rungs,
                                                index.dtype, resident,
                                                cached_flags)
                executor = plan.executor
            elif concurrent and self.default_executor == "serial":
                executor = "thread"
            else:
                executor = self.default_executor
        backend = self._executor_obj(executor)
        started = time.perf_counter()
        results = backend.run(self, snapshot, normalized, max_workers,
                              rungs, reuse)
        if plan is not None:
            self._planner.record(plan, time.perf_counter() - started)
        with self._counter_lock:
            self.queries_answered += len(normalized)
            if concurrent:
                self.concurrent_batches += 1
            else:
                self.batches_answered += 1
        return results

    def _probe_batch(self, snapshot, normalized: list[Query],
                     rungs: list[LadderRung],
                     reuse: dict) -> tuple[list, dict]:
        """Resolve cache hits and group the misses by cache key.

        The one probe loop every batch-shaped backend shares — keeping
        it in a single place is what keeps the serial and process
        executors' probe, stats and in-batch-repeat semantics in
        lockstep (the bit-identity contract).  Returns ``(results,
        groups)``: *results* in input order with hits filled (``None``
        marks a slot to solve), and *groups* mapping each missed cache
        key to ``(rung, members)`` where the first member is the
        occurrence to solve and the rest are in-batch repeats.  Repeats
        defer their counted cache probe to :meth:`_finish_group`, so
        stats count each query exactly once and agree with the cached
        flags actually returned.
        """
        index, epoch, cache, _ = snapshot
        results: list[QueryResult | None] = [None] * len(normalized)
        groups: dict[tuple, tuple[LadderRung, list[tuple[int, Query]]]] = {}
        pending: set[tuple] = set()
        for i, query in enumerate(normalized):
            rung = rungs[i]
            cache_key = (self.dataset_id, epoch, query.objective, query.k,
                         index.seed, rung.key)
            if cache_key not in pending:
                _, hit = self._lookup(cache, epoch, index, query, rung,
                                      reuse)
                if hit is not None:
                    results[i] = hit
                    continue
                pending.add(cache_key)
            entry = groups.get(cache_key)
            if entry is None:
                groups[cache_key] = entry = (rung, [])
            entry[1].append((i, query))
        return results, groups

    def _finish_group(self, cache: StripedLRUCache, cache_key: tuple,
                      result: QueryResult, members: list,
                      results: list) -> None:
        """Memoize one solved group and fill its member result slots.

        In-batch repeats run their deferred, counted probe here.
        Normally that is an LRU hit; interleaved puts may have evicted
        the entry (tiny cache), so the batch-local *result* is the
        fallback — the miss the probe just counted is then accurate,
        and no solver runs either way.
        """
        cache.put(cache_key, result)
        results[members[0][0]] = result
        for i, query in members[1:]:
            hit = cache.get(cache_key)
            if hit is None:
                hit = result
            results[i] = replace(hit, epsilon=query.epsilon, cached=True,
                                 solve_seconds=0.0)

    def _solve_grouped(self, snapshot, normalized: list[Query],
                       rungs: list[LadderRung],
                       reuse: dict) -> list[QueryResult]:
        """The serial grouped solve path (the reference executor's body)."""
        _, epoch, cache, matrices = snapshot
        results, groups = self._probe_batch(snapshot, normalized, rungs,
                                            reuse)
        by_rung: dict[tuple, tuple[LadderRung, list[tuple]]] = {}
        for cache_key, (rung, _members) in groups.items():
            entry = by_rung.get(rung.key)
            if entry is None:
                by_rung[rung.key] = entry = (rung, [])
            entry[1].append(cache_key)
        for rung, cache_keys in by_rung.values():
            dist = self._matrix_for(matrices, epoch, rung)
            for cache_key in cache_keys:
                _, members = groups[cache_key]
                result = self._solve(members[0][1], rung, dist, epoch)
                self._finish_group(cache, cache_key, result, members,
                                   results)
        return results  # type: ignore[return-value]

    def _answer_one(self, index: CoresetIndex, epoch: int,
                    cache: StripedLRUCache, matrices: MatrixCache,
                    query: Query, rung: LadderRung,
                    reuse: dict) -> QueryResult:
        """Serve one pre-routed query: probe, (maybe) solve, memoize."""
        cache_key, hit = self._lookup(cache, epoch, index, query, rung, reuse)
        if hit is not None:
            return hit
        dist = self._matrix_for(matrices, epoch, rung)
        result = self._solve(query, rung, dist, epoch)
        cache.put(cache_key, result)
        return result

    def _plan_batch(self, snapshot, normalized: list[Query],
                    ) -> tuple[list, dict, list[bool]]:
        """Route the batch and resolve its epsilon-reuse answers up front.

        Returns ``(rungs, reuse, cached_flags)``: the rung serving each
        query (in input order — backends consume these instead of
        re-routing), the epsilon-reuse answers available at batch start
        keyed by cache key, and per query whether the result cache (or
        the reuse set) already holds its answer — the query planner's
        zero-cost signal for which queries still need a solve.  For each
        query routing to a rung whose own key is absent, cached answers
        of *larger* covering rungs — solved for a tighter ``eps``, hence
        valid for this looser one by the core-set guarantee — are peeked
        without touching stats or recency.  Resolving the whole batch up
        front (instead of peeking live during execution) pins the reuse
        set to the batch-start cache state, so answers do not depend on
        solve order or thread timing and every backend returns identical
        results.

        Each query traverses its covering-rung list exactly once: the
        same candidates feed both the routing decision
        (:meth:`CoresetIndex.select_rung
        <repro.service.index.CoresetIndex.select_rung>`) and the
        eps-reuse scan, and :attr:`routing_decisions` counts one
        decision per query — the single-query :meth:`query` path rides
        this same batch workspace rather than routing on its own.
        """
        index, epoch, cache, _ = snapshot
        rungs: list[LadderRung] = []
        cached_flags: list[bool] = []
        reuse: dict[tuple, QueryResult] = {}
        for query in normalized:
            candidates = index.covering_rungs(query.objective, query.k)
            rung = index.select_rung(candidates, query.objective, query.k,
                                     query.epsilon)
            rungs.append(rung)
            cache_key = (self.dataset_id, epoch, query.objective, query.k,
                         index.seed, rung.key)
            if cache_key in reuse or cache.peek(cache_key) is not None:
                cached_flags.append(True)
                continue
            for other in candidates:
                if other.k_prime <= rung.k_prime:
                    continue
                reusable = cache.peek((self.dataset_id, epoch,
                                       query.objective, query.k,
                                       index.seed, other.key))
                if reusable is not None:
                    reuse[cache_key] = reusable
                    break
            cached_flags.append(cache_key in reuse)
        with self._counter_lock:
            self.routing_decisions += len(normalized)
        return rungs, reuse, cached_flags

    def preview_plan(self, queries: Iterable[QueryLike]) -> Plan:
        """Plan a batch without executing or recording it.

        The ``repro plan`` explain path: routes the queries, probes
        cache residency (stat-free peeks) and returns the
        :class:`~repro.service.planner.Plan` the ``auto`` mode would
        run, including every candidate executor's predicted cost.  No
        counters move and the planner's metrics are untouched.
        """
        normalized = [self._normalize(query) for query in list(queries)]
        if not normalized:
            raise ValidationError("preview_plan needs at least one query")
        index, epoch, cache, matrices = self._snapshot()
        rungs = [index.route(query.objective, query.k, query.epsilon)
                 for query in normalized]
        cached_flags = [
            cache.peek((self.dataset_id, epoch, query.objective, query.k,
                        index.seed, rung.key)) is not None
            for query, rung in zip(normalized, rungs)]

        def resident(rung_key):
            """Whether the rung's matrix is already cached."""
            return matrices.contains((self.dataset_id, epoch, rung_key))

        return self._planner.plan_batch(normalized, rungs, index.dtype,
                                        resident, cached_flags)

    def plan_signature(self, queries: Iterable[QueryLike]) -> tuple | None:
        """The batching class these queries would dispatch under.

        ``None`` in static mode (and on any planning failure), so the
        daemon's micro-batch grouping degrades to exactly today's
        dataset-only key; in ``auto`` mode requests predicted to run on
        different executors get different signatures and dispatch as
        separate batches.  Never builds a lazy index.
        """
        if self.plan_mode != "auto" or self._index is None:
            return None
        try:
            return self.preview_plan(queries).signature
        except Exception:
            return None

    def _lookup(self, cache: StripedLRUCache, epoch: int,
                index: CoresetIndex, query: Query, rung: LadderRung,
                reuse: dict) -> tuple[tuple, QueryResult | None]:
        """Counted result-cache probe with epsilon-aware reuse fallback.

        Returns ``(cache_key, hit-or-None)``.  The primary probe counts
        exactly one hit or miss for the query; on a miss, the
        batch-start reuse set from :meth:`_reuse_candidates` may serve a
        tighter-eps answer (counted in :attr:`eps_hits`).
        """
        cache_key = (self.dataset_id, epoch, query.objective, query.k,
                     index.seed, rung.key)
        hit = cache.get(cache_key)
        if hit is not None:
            # Echo the caller's own slack: the cached answer is valid
            # for any epsilon routing to the same rung.
            return cache_key, replace(hit, epsilon=query.epsilon,
                                      cached=True, solve_seconds=0.0)
        reusable = reuse.get(cache_key)
        if reusable is not None:
            with self._counter_lock:
                self.eps_hits += 1
            return cache_key, replace(reusable, epsilon=query.epsilon,
                                      cached=True, eps_hit=True,
                                      solve_seconds=0.0)
        return cache_key, None

    # -- execution backends ------------------------------------------------------
    def _executor_obj(self, name: str):
        """The (lazily created, cached) execution backend called *name*.

        With an injected :class:`~repro.service.executors.ExecutorPool`
        (registry mode) the backend comes from the shared pool instead —
        one process fleet serves every tenant.
        """
        if name not in EXECUTOR_NAMES:
            raise ValidationError(
                f"unknown executor {name!r}; "
                f"known: {', '.join(EXECUTOR_NAMES)}")
        if self._pool is not None:
            return self._pool.get(name)
        with self._executors_lock:
            backend = self._executors.get(name)
            if backend is None or getattr(backend, "closed", False):
                backend = create_executor(
                    name, matrix_budget_bytes=self._matrix_budget_bytes)
                self._executors[name] = backend
            return backend

    def _active_backends(self) -> list:
        """Every live backend this service dispatches to (own or pooled)."""
        if self._pool is not None:
            return self._pool.backends()
        with self._executors_lock:
            return list(self._executors.values())

    def warm_executor(self, executor: str | None = None,
                      max_workers: int | None = None) -> None:
        """Pre-start an execution backend's workers.

        Spawning process workers costs noticeable wall time (a fresh
        interpreter per worker); benchmarks call this before their timed
        region so measured queries/sec reflect serving, not cold starts.
        No-op for the serial and thread backends.
        """
        name = executor or self.default_executor
        workers = (self.executor_workers if max_workers is None
                   else check_positive_int(max_workers, "max_workers"))
        self._executor_obj(name).warm(workers)

    def close(self) -> None:
        """Shut down execution backends and unlink shared serving state.

        After this returns, the process backend's worker pool is gone and
        zero shared-memory segments published by this service remain (the
        leak invariant the tests assert).  The service stays usable —
        backends are recreated lazily on the next query.

        In registry mode (injected matrix cache / executor pool) the
        shared resources outlive this tenant: only this dataset's
        namespace — its matrices, shared segments and worker planes — is
        dropped from them, which is exactly the memory an eviction must
        give back.
        """
        with self._executors_lock:
            backends = list(self._executors.values())
            self._executors.clear()
        for backend in backends:
            backend.close()
        if not self._owns_matrices:
            self._matrices.purge(self.dataset_id)
        if self._pool is not None:
            self._pool.drop_dataset(self.dataset_id)

    def __enter__(self) -> "DiversityService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _solve(self, query: Query, rung: LadderRung,
               dist: np.ndarray, epoch: int = 0) -> QueryResult:
        """Run the sequential solver for *query* on the rung's matrix."""
        objective = get_objective(query.objective)
        started = time.perf_counter()
        indices = solve_on_matrix(dist, query.k, objective)
        value = objective.value(dist[np.ix_(indices, indices)])
        result = QueryResult(
            objective=objective.name, k=query.k, epsilon=query.epsilon,
            indices=indices, points=rung.coreset.points[indices],
            value=float(value), rung=rung.key, cached=False,
            solve_seconds=time.perf_counter() - started, epoch=epoch,
        )
        self._maybe_verify(rung, result)
        return result

    def _maybe_verify(self, rung: LadderRung, result: QueryResult) -> None:
        """Float64 shadow check of a fast-path (reduced-dtype) solve.

        Enabled by ``REPRO_VERIFY_DTYPE=1`` (or ``verify_dtype=True``),
        and a no-op whenever the rung already stores float64 — there is
        nothing to shadow.  On a sampled fraction of fresh solves the
        rung's matrix is recomputed in float64 and solved again; the
        fast-path answer must match the float64 objective value within
        ``verify_rtol``, and pick the same indices unless the difference
        is a tie (the fast-path selection's float64 value also lands
        within ``verify_rtol``).  Outcomes feed the ``verify`` counters
        in :meth:`stats`.
        """
        if not self._verify_enabled or self._verify_fraction <= 0.0:
            return
        if rung.coreset.points.dtype == np.float64:
            return
        stride = max(int(round(1.0 / self._verify_fraction)), 1)
        with self._counter_lock:
            self._verify_clock += 1
            take = self._verify_clock % stride == 0
        if not take:
            return
        objective = get_objective(result.objective)
        dist64 = PointSet(rung.coreset.points.astype(np.float64),
                          metric=rung.coreset.metric).pairwise()
        indices64 = solve_on_matrix(dist64, result.k, objective)
        value64 = float(objective.value(dist64[np.ix_(indices64, indices64)]))
        tol = self._verify_rtol * max(abs(value64), 1e-12)
        value_ok = abs(result.value - value64) <= tol
        if sorted(result.indices) == sorted(indices64):
            index_ok, tie = True, False
        else:
            # Different selections can still be equally diverse: score
            # the fast path's pick under the float64 matrix and accept
            # it as a tie when the objective cannot tell them apart.
            picked = np.asarray(result.indices)
            picked64 = float(objective.value(dist64[np.ix_(picked, picked)]))
            tie = abs(picked64 - value64) <= tol
            index_ok = False
        with self._counter_lock:
            self.verify_checks += 1
            if not value_ok:
                self.verify_value_mismatches += 1
            if not index_ok:
                if tie:
                    self.verify_ties += 1
                else:
                    self.verify_index_mismatches += 1

    def _matrix_for(self, matrices: MatrixCache, epoch: int,
                    rung: LadderRung) -> np.ndarray:
        """The rung's pairwise matrix from the budgeted single-flight cache.

        Both the cache object and the epoch in the key come from the
        query's :meth:`_snapshot`, so a query in flight across a
        :meth:`refresh` writes only to the superseded cache under its own
        dead epoch — it can never seed the serving cache with a matrix
        of the superseded index.  Keys open with :attr:`dataset_id`, so
        a registry-shared cache never aliases two tenants' rungs.
        """
        return matrices.get_or_compute((self.dataset_id, epoch, rung.key),
                                       rung.coreset.pairwise)

    @staticmethod
    def _normalize(query) -> Query:
        """Coerce a :data:`QueryLike` into a validated :class:`Query`."""
        if isinstance(query, Query):
            objective = get_objective(query.objective).name
            query = Query(objective, query.k, query.epsilon)
        elif isinstance(query, (tuple, list)) and len(query) in (2, 3):
            objective = get_objective(query[0]).name
            epsilon = float(query[2]) if len(query) == 3 else 1.0
            query = Query(objective, int(query[1]), epsilon)
        else:
            raise ValidationError(
                f"cannot interpret query {query!r}; pass a Query or an "
                "(objective, k[, epsilon]) tuple")
        check_positive_int(query.k, "k")
        check_in_range(query.epsilon, "epsilon", 0.0, 1.0)
        return query

    # -- observability -----------------------------------------------------------
    def stats(self) -> dict:
        """The versioned observability snapshot (stats schema v1).

        One JSON-ready dict, shared verbatim by this in-process API and
        the daemon's ``GET /stats`` (:mod:`repro.service.server`), with a
        ``schema_version`` stamp and seven stable sections:

        * ``counters`` — ``queries_answered``, ``batches_answered``,
          ``concurrent_batches``, ``build_calls`` (frozen across
          queries), ``eps_hits`` (queries served from a cached
          tighter-eps answer), ``routing_decisions`` (exactly one per
          query answered);
        * ``caches`` — ``results``: the result-LRU block (``hits`` /
          ``misses`` / ``evictions`` / ``hit_rate`` / ``entries`` /
          ``capacity``);
        * ``matrices`` — ``local``: the in-process
          :class:`~repro.service.matrices.MatrixCache` block;
          ``shared``: the process backend's shared-segment block, or
          ``None`` until that backend exists;
        * ``executors`` — ``default``, ``workers``, ``active`` (backend
          names instantiated so far);
        * ``epochs`` — ``current``, ``refreshes``, ``index_built``,
          ``dtype`` (the index's storage dtype, ``None`` before build);
        * ``verify`` — the float64 shadow-check block: ``enabled`` /
          ``fraction`` / ``rtol`` configuration plus ``checks``,
          ``value_mismatches``, ``index_mismatches``, ``ties`` counters
          (see :meth:`_maybe_verify`);
        * ``planner`` — the query-planning block: ``mode``
          (``static``/``auto``), ``calibrated``, ``planned`` batches,
          per-executor ``plans`` counts, cumulative
          ``predicted_seconds``/``measured_seconds`` and the
          regression-gated ``mean_rel_error`` (predicted-vs-measured;
          ``None`` until a batch has been planned).

        The key inventory is documented in ``docs/serving.md`` and
        drift-gated by ``tests/test_docs.py``.
        """
        if self._pool is not None:
            process_backend = self._pool.peek("process")
            active = sorted(self._pool.active())
        else:
            with self._executors_lock:
                process_backend = self._executors.get("process")
                active = sorted(self._executors)
        cache = self.cache
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": {
                "queries_answered": self.queries_answered,
                "batches_answered": self.batches_answered,
                "concurrent_batches": self.concurrent_batches,
                "build_calls": self.build_calls,
                "eps_hits": self.eps_hits,
                "routing_decisions": self.routing_decisions,
            },
            "caches": {
                "results": {**cache.stats.as_dict(), "entries": len(cache),
                            "capacity": cache.capacity},
            },
            "matrices": {
                "local": self._matrices.describe(),
                "shared": (process_backend.stats()
                           if process_backend is not None else None),
            },
            "executors": {
                "default": self.default_executor,
                "workers": self.executor_workers,
                "active": active,
            },
            "epochs": {
                "current": self._epoch,
                "refreshes": self.refreshes,
                "index_built": self._index is not None,
                "dtype": (self._index.dtype
                          if self._index is not None else None),
            },
            "verify": {
                "enabled": self._verify_enabled,
                "fraction": self._verify_fraction,
                "rtol": self._verify_rtol,
                "checks": self.verify_checks,
                "value_mismatches": self.verify_value_mismatches,
                "index_mismatches": self.verify_index_mismatches,
                "ties": self.verify_ties,
            },
            "planner": {
                "mode": self.plan_mode,
                **self._planner.stats(),
            },
        }
