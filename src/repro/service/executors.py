"""Pluggable query-execution backends: ``serial`` / ``thread`` / ``process``.

:class:`~repro.service.service.DiversityService` routes, caches and
accounts for queries; *how* the cache-missed solves actually run is this
module's concern.  Three backends share one contract — answers are
bit-identical to serial ``query_batch`` on the same service state, queries
never build core-sets, and per-rung matrices are computed exactly once:

* :class:`SerialExecutor` — the reference path: same-rung misses are
  grouped so the rung matrix is fetched once, then each solver runs in
  the calling thread.
* :class:`ThreadExecutor` — a thread pool over the same cached state;
  scales while the solve is numpy-dominated (the GIL is released inside
  the kernels) but gates at ~2x for the Python-heavy solvers.
* :class:`ProcessExecutor` — real processes over a **shared-memory data
  plane** (:mod:`repro.shm`): the driver publishes each serving rung's
  core-set rows once per epoch and leases zero-filled matrix segments
  from a :class:`~repro.service.matrices.SharedMatrixCache`; workers
  attach by descriptor, fill each matrix exactly once under a striped
  cross-process lock (:func:`repro.shm.fill_once`) and reply with
  index-based answers — point rows never cross the IPC pipe in either
  direction.

Epoch semantics: the process executor keeps one :class:`_EpochPlane` of
published core-sets per ``(dataset, epoch)`` and **one**
:class:`~repro.service.matrices.SharedMatrixCache` across all of them,
keyed ``(dataset_id, epoch, rung)`` — the single budget every tenant of
an :class:`ExecutorPool`-backed registry competes under.  A refresh
retires the dataset's superseded planes and purges its superseded matrix
keys, but a batch in flight holds pins, so its workers finish against
the old epoch's segments while new queries route to the new epoch; the
retired segments are unlinked when the last pin releases.
:meth:`ProcessExecutor.close` (with GC finalizers on every segment as
backstop) leaves zero ``/dev/shm`` entries behind.

Thread safety: executors are owned by one service and may be invoked from
many threads; plane bookkeeping is lock-guarded and the worker pool is
``concurrent.futures``-managed.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro import shm
from repro.diversity.objectives import get_objective
from repro.diversity.sequential.registry import solve_on_matrix
from repro.exceptions import ValidationError
from repro.metricspace.distance import Metric
from repro.metricspace.points import PointSet
from repro.service.matrices import MatrixLease, SharedMatrixCache

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.service.index import LadderRung
    from repro.service.service import DiversityService, Query, QueryResult

#: Names accepted by ``DiversityService(executor=...)`` and the CLI.
EXECUTOR_NAMES = ("serial", "thread", "process")

#: Cross-process single-flight stripes (locks shared with every worker).
DEFAULT_LOCK_STRIPES = 8

#: Attached-segment cache capacity inside query workers: batches revisit
#: several small core-set and matrix segments, unlike MapReduce workers.
WORKER_ATTACH_CACHE = 64

# -- worker-process side -------------------------------------------------------

_WORKER_LOCKS: list | None = None


def _init_worker(stripe_locks: list, attach_cache_limit: int) -> None:
    """Pool initializer: install the stripe locks and attach-cache limit."""
    global _WORKER_LOCKS
    _WORKER_LOCKS = stripe_locks
    shm.set_attachment_cache_limit(attach_cache_limit)


def _warm_worker(seconds: float) -> int:
    """Warmup task: hold a worker long enough to force the pool to spawn."""
    time.sleep(seconds)
    return os.getpid()


def _solve_query(coreset_ref: shm.SharedArrayRef,
                 matrix_ref: shm.SharedArrayRef, stripe: int,
                 metric: Metric, objective_name: str,
                 k: int) -> tuple[np.ndarray, float, float, bool]:
    """Solve one routed query against the shared data plane (worker side).

    Attaches the rung's core-set rows and matrix segment by descriptor;
    the first caller per segment fills the matrix under its stripe lock
    (identical bytes to the driver's own ``pairwise`` — same rows, same
    blocked kernel, same tile sizing), everyone else reads it.  Returns
    ``(indices, value, solve_seconds, computed_matrix)`` — indices into
    the rung core-set, never point rows.
    """
    rows = coreset_ref.resolve()

    def compute() -> np.ndarray:
        """Blocked pairwise matrix of the attached core-set rows."""
        return PointSet(rows, metric).pairwise()

    dist, computed = shm.fill_once(matrix_ref, _WORKER_LOCKS[stripe], compute)
    objective = get_objective(objective_name)
    started = time.perf_counter()
    indices = solve_on_matrix(dist, k, objective)
    value = float(objective.value(dist[np.ix_(indices, indices)]))
    return (np.asarray(indices, dtype=np.intp), value,
            time.perf_counter() - started, computed)


# -- driver side ---------------------------------------------------------------

class SerialExecutor:
    """The reference backend: grouped, in-thread solves (PR 3 semantics)."""

    name = "serial"

    def run(self, service: "DiversityService", snapshot,
            normalized: "list[Query]", max_workers: int,
            rungs: "list[LadderRung]", reuse: dict):
        """Delegate to the service's grouped serial solve path."""
        return service._solve_grouped(snapshot, normalized, rungs, reuse)

    def warm(self, max_workers: int) -> None:
        """Nothing to pre-start for in-thread execution."""

    def close(self) -> None:
        """Nothing to shut down for in-thread execution."""


class ThreadExecutor:
    """Thread-pool backend over the shared in-process caches."""

    name = "thread"

    def run(self, service: "DiversityService", snapshot,
            normalized: "list[Query]", max_workers: int,
            rungs: "list[LadderRung]", reuse: dict):
        """Fan the queries over a thread pool (one ``_answer_one`` each)."""
        workers = min(max_workers, len(normalized))
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="repro-query") as pool:
            index, epoch, cache, matrices = snapshot
            return list(pool.map(
                lambda pair: service._answer_one(index, epoch, cache,
                                                 matrices, pair[0], pair[1],
                                                 reuse),
                zip(normalized, rungs)))

    def warm(self, max_workers: int) -> None:
        """Threads start instantly; nothing to pre-start."""

    def close(self) -> None:
        """Per-call pools are already torn down; nothing persists."""


class _EpochPlane:
    """One ``(dataset, epoch)``'s published core-set segments.

    Created lazily on the first process batch of a dataset's epoch; rung
    core-sets publish once on demand.  Matrix segments live in the
    executor's single :class:`~repro.service.matrices.SharedMatrixCache`
    (keyed by ``(dataset_id, epoch, rung)``), not here — one budget
    governs every tenant's matrices.  Batches pin the plane for their
    duration (:meth:`acquire` / :meth:`release`); a :meth:`retire` from a
    newer epoch defers the actual unlink until the last pin drains, which
    is how an in-flight worker finishes on the old epoch's segments while
    new queries route to the new epoch.  *transient* marks the private,
    self-retiring planes handed to stale-epoch straggler batches — their
    matrix leases bypass residency so a dead epoch can never re-enter
    the shared cache.
    """

    def __init__(self, dataset_id: str, epoch: int, *,
                 transient: bool = False):
        self.dataset_id = dataset_id
        self.epoch = epoch
        self.transient = transient
        self._coresets: dict[tuple, shm.SharedNDArray] = {}
        self._lock = threading.Lock()
        self._pins = 0
        self._retired = False
        self._closed = False

    def coreset_ref(self, rung: "LadderRung") -> shm.SharedArrayRef:
        """The rung's published core-set rows (publishing on first use)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("epoch plane is closed")
            owner = self._coresets.get(rung.key)
            if owner is None:
                owner = shm.SharedNDArray.publish(rung.coreset.points)
                self._coresets[rung.key] = owner
            return owner.ref

    def acquire(self) -> None:
        """Pin the plane for one in-flight batch."""
        with self._lock:
            if self._closed:
                raise RuntimeError("epoch plane is closed")
            self._pins += 1

    def release(self) -> None:
        """Drop a batch's pin; a retired plane closes on the last one."""
        with self._lock:
            self._pins = max(self._pins - 1, 0)
            drain = self._retired and self._pins == 0 and not self._closed
        if drain:
            self.close()

    def retire(self) -> None:
        """Mark superseded; unlink now or when the last pin releases."""
        with self._lock:
            self._retired = True
            drain = self._pins == 0 and not self._closed
        if drain:
            self.close()

    def close(self) -> None:
        """Unlink every segment this plane published (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owners = list(self._coresets.values())
            self._coresets.clear()
        for owner in owners:
            owner.close()

    @property
    def segment_names(self) -> list[str]:
        """Names of the core-set segments currently published (testing)."""
        with self._lock:
            return [owner.ref.name for owner in self._coresets.values()]


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=False)


class ProcessExecutor:
    """Process-pool backend over the shared-memory data plane.

    Parameters
    ----------
    matrix_budget_bytes:
        Budget convention of :class:`~repro.service.matrices.MatrixCache`
        (``None`` environment, ``0`` unbudgeted, else bytes), applied to
        each epoch plane's shared matrix segments.
    stripes:
        Cross-process single-flight lock stripes.

    The worker pool uses the **spawn** context: workers never inherit the
    driver's threads or locks mid-state, and the resource-tracker
    accounting stays with the driver's tracker (see :mod:`repro.shm`).
    The pool persists across batches; it is (re)created lazily for the
    requested worker count and shut down by :meth:`close` or a GC
    finalizer.
    """

    name = "process"

    def __init__(self, matrix_budget_bytes: int | None = None,
                 stripes: int = DEFAULT_LOCK_STRIPES):
        self._budget = matrix_budget_bytes
        self._stripes = stripes
        self._ctx = multiprocessing.get_context("spawn")
        self._locks = [self._ctx.Lock() for _ in range(stripes)]
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        self._pool_finalizer: weakref.finalize | None = None
        #: One matrix cache across every dataset and epoch, keyed
        #: ``(dataset_id, epoch, rung)``: the single budget all tenants
        #: of a registry compete under, with lifetime stats that survive
        #: refreshes (a refresh purges the superseded keys, it does not
        #: swap the cache).
        self._matrices = SharedMatrixCache(matrix_budget_bytes)
        self._planes: dict[tuple[str, int], _EpochPlane] = {}
        #: Highest epoch seen per dataset (batches or refresh
        #: notifications); batches snapshotted below it get a transient,
        #: self-retiring plane instead of resurrecting a dead epoch.
        self._ceiling: dict[str, int] = {}
        self._lock = threading.Lock()
        self.closed = False

    # -- pool lifecycle ----------------------------------------------------------
    def _ensure_pool(self, max_workers: int) -> ProcessPoolExecutor:
        # Grow-only: a request below the current pool size reuses the
        # larger pool (tearing down and respawning interpreters on every
        # width change would cost hundreds of milliseconds per worker —
        # e.g. a service alternating query_batch with a narrower
        # query_concurrent).  Sweeps wanting an exact width use a fresh
        # service per width, as the throughput harness does.
        with self._lock:
            if self._pool is not None and self._pool_workers >= max_workers:
                return self._pool
            self._drop_pool()
            self._pool = ProcessPoolExecutor(
                max_workers=max_workers, mp_context=self._ctx,
                initializer=_init_worker,
                initargs=(self._locks, WORKER_ATTACH_CACHE))
            self._pool_workers = max_workers
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool,
                                                    self._pool)
            self.closed = False
            return self._pool

    def _drop_pool(self) -> None:
        # Caller holds self._lock.
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def warm(self, max_workers: int) -> None:
        """Spawn (and wait for) all *max_workers* workers up front.

        Worker spawn costs hundreds of milliseconds each (a fresh
        interpreter imports numpy and this package); benchmarks call this
        before the timed region so measured queries/sec reflect serving,
        not cold starts.
        """
        pool = self._ensure_pool(max_workers)
        futures = [pool.submit(_warm_worker, 0.2) for _ in range(max_workers)]
        for future in futures:
            future.result()

    # -- plane lifecycle ---------------------------------------------------------
    def _plane_for(self, epoch: int, dataset_id: str = "") -> _EpochPlane:
        key = (dataset_id, epoch)
        with self._lock:
            ceiling = self._ceiling.get(dataset_id, -1)
            if epoch < ceiling and key not in self._planes:
                # A batch that snapshotted an epoch already superseded by
                # a refresh (and whose plane has been retired): give it a
                # private plane that is never registered — it drains with
                # the batch instead of resurrecting a dead epoch's
                # segments.
                plane = _EpochPlane(dataset_id, epoch, transient=True)
                plane.acquire()
                plane.retire()  # pinned, so this defers close to release
                return plane
            self._ceiling[dataset_id] = max(ceiling, epoch)
            plane = self._planes.get(key)
            if plane is None:
                plane = _EpochPlane(dataset_id, epoch)
                self._planes[key] = plane
            stale = [self._planes.pop(k) for k in list(self._planes)
                     if k[0] == dataset_id and k[1] < epoch]
            plane.acquire()
        for old in stale:
            old.retire()
        return plane

    def on_epoch(self, epoch: int, dataset_id: str = "") -> None:
        """Retire the dataset's planes and matrices superseded by *epoch*."""
        with self._lock:
            self._ceiling[dataset_id] = max(
                self._ceiling.get(dataset_id, -1), epoch)
            stale = [self._planes.pop(k) for k in list(self._planes)
                     if k[0] == dataset_id and k[1] < epoch]
        for old in stale:
            old.retire()
        # Superseded matrix segments unlink now (or, if an in-flight
        # batch still pins them, when its last lease releases).
        self._matrices.purge(dataset_id, before_epoch=epoch)

    def drop_dataset(self, dataset_id: str) -> None:
        """Drop one dataset's entire namespace: planes, matrices, ceiling.

        The eviction/detach hook of the multi-tenant registry — after
        this returns (and in-flight pins drain), the dataset holds no
        shared-memory segments, which is the memory an eviction must
        give back.  The dataset can come back later: its ceiling is
        forgotten, so a faulted-in tenant restarts cleanly at its
        current epoch.
        """
        with self._lock:
            stale = [self._planes.pop(k) for k in list(self._planes)
                     if k[0] == dataset_id]
            self._ceiling.pop(dataset_id, None)
        for old in stale:
            old.retire()
        self._matrices.purge(dataset_id)

    # -- execution ---------------------------------------------------------------
    def run(self, service: "DiversityService", snapshot,
            normalized: "list[Query]", max_workers: int,
            rungs: "list[LadderRung]", reuse: dict):
        """Serve a batch: probe driver-side, solve misses in workers.

        Mirrors the serial grouped path exactly — per-query counted cache
        probes (in-batch repeats defer theirs until after the solve),
        one dispatched solve per distinct cache key, results memoized in
        the driver's LRU — so answers, ``cached`` flags and cache stats
        are all identical to ``query_batch`` on the same state.
        """
        from repro.service.service import QueryResult  # lazy: avoids a cycle

        _, epoch, cache, _ = snapshot
        dataset_id = getattr(service, "dataset_id", "")
        plane = self._plane_for(epoch, dataset_id)
        # Pin the cache object for the whole batch: leases taken here are
        # released on the same object even if close() swaps in a fresh one
        # concurrently.
        matrices = self._matrices
        leases: dict[tuple, tuple[shm.SharedArrayRef, MatrixLease]] = {}
        try:
            results, groups = service._probe_batch(snapshot, normalized,
                                                   rungs, reuse)
            pool = self._ensure_pool(max_workers)
            futures = {}
            for cache_key, (rung, members) in groups.items():
                pair = leases.get(rung.key)
                if pair is None:
                    coreset_ref = plane.coreset_ref(rung)
                    lease = matrices.lease(
                        (dataset_id, epoch) + rung.key, len(rung.coreset),
                        dtype=rung.coreset.points.dtype,
                        transient=plane.transient)
                    pair = (coreset_ref, lease)
                    leases[rung.key] = pair
                coreset_ref, lease = pair
                stripe = hash(lease.ref.name) % self._stripes
                query = members[0][1]
                futures[cache_key] = pool.submit(
                    _solve_query, coreset_ref, lease.ref, stripe,
                    rung.coreset.metric, query.objective, query.k)
            for cache_key, (rung, members) in groups.items():
                indices, value, seconds, computed = futures[cache_key].result()
                if computed:
                    matrices.note_computed((dataset_id, epoch) + rung.key)
                first_query = members[0][1]
                result = QueryResult(
                    objective=first_query.objective, k=first_query.k,
                    epsilon=first_query.epsilon, indices=indices,
                    points=rung.coreset.points[indices], value=value,
                    rung=rung.key, cached=False, solve_seconds=seconds,
                    epoch=epoch)
                service._maybe_verify(rung, result)
                service._finish_group(cache, cache_key, result, members,
                                      results)
            return results
        finally:
            for _, lease in leases.values():
                matrices.release(lease)
            plane.release()

    # -- observability / shutdown ------------------------------------------------
    def segment_names(self) -> list[str]:
        """Every shared segment currently published across all planes.

        The leak tests assert these names disappear from ``/dev/shm``
        after :meth:`close` (and after an epoch retirement drains).
        """
        with self._lock:
            planes = list(self._planes.values())
            matrices = self._matrices
        names: list[str] = []
        for plane in planes:
            names.extend(plane.segment_names)
        names.extend(matrices.segment_names())
        return names

    def stats(self) -> dict:
        """The shared matrix cache's block plus plane bookkeeping.

        One cache spans every dataset and epoch, so lifetime counters
        survive refreshes by construction; before any batch has run it
        reports an empty cache at the configured budget.  ``epoch`` is
        the newest epoch with a live plane (across datasets).
        """
        with self._lock:
            plane_keys = list(self._planes)
            matrices = self._matrices
        payload = matrices.describe()
        payload["planes"] = len(plane_keys)
        payload["epoch"] = max((k[1] for k in plane_keys), default=None)
        return payload

    def close(self) -> None:
        """Shut down the pool and unlink every shared segment (idempotent).

        Core-set planes are *retired*, not force-closed: a batch
        concurrently in flight keeps its pins and drains on its own plane
        (segments unlink on its last release); with no batch in flight —
        the usual case — retirement unlinks immediately.  The shared
        matrix cache is closed outright and replaced with a fresh one, so
        a quiesced service leaves zero segments behind the moment this
        returns and the executor stays reusable.
        """
        with self._lock:
            self._drop_pool()
            planes = [self._planes.pop(k) for k in list(self._planes)]
            self._ceiling.clear()
            matrices = self._matrices
            self._matrices = SharedMatrixCache(self._budget)
            self.closed = True
        for plane in planes:
            plane.retire()
        matrices.close()


def create_executor(name: str, *,
                    matrix_budget_bytes: int | None = None):
    """Instantiate the execution backend called *name*.

    Raises
    ------
    ValidationError
        If *name* is not one of :data:`EXECUTOR_NAMES`.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor()
    if name == "process":
        return ProcessExecutor(matrix_budget_bytes=matrix_budget_bytes)
    raise ValidationError(
        f"unknown executor {name!r}; known: {', '.join(EXECUTOR_NAMES)}")


class ExecutorPool:
    """One set of execution backends shared by every tenant of a registry.

    A standalone :class:`~repro.service.service.DiversityService` creates
    its own backends; in registry mode every tenant's service receives
    this pool instead, so all tenants ride **one** process fleet and one
    shared-memory matrix plane (the :class:`ProcessExecutor`'s single
    :class:`~repro.service.matrices.SharedMatrixCache`, with keys
    namespaced by ``(dataset_id, epoch, rung)``).

    Parameters
    ----------
    matrix_budget_bytes:
        Budget convention of :class:`~repro.service.matrices.MatrixCache`
        (``None`` environment, ``0`` unbudgeted, else bytes) applied to
        the pooled process executor's shared segments — the registry's
        single global budget.

    Thread safety: fully safe; backends are created lazily under a lock
    and are themselves thread-safe.
    """

    def __init__(self, matrix_budget_bytes: int | None = None):
        self._budget = matrix_budget_bytes
        self._backends: dict[str, object] = {}
        self._lock = threading.Lock()

    def get(self, name: str):
        """The pooled backend called *name*, creating it lazily."""
        if name not in EXECUTOR_NAMES:
            raise ValidationError(
                f"unknown executor {name!r}; "
                f"known: {', '.join(EXECUTOR_NAMES)}")
        with self._lock:
            backend = self._backends.get(name)
            if backend is None or getattr(backend, "closed", False):
                backend = create_executor(
                    name, matrix_budget_bytes=self._budget)
                self._backends[name] = backend
            return backend

    def peek(self, name: str):
        """The pooled backend called *name*, or ``None`` if never created."""
        with self._lock:
            return self._backends.get(name)

    def backends(self) -> list:
        """Every backend instantiated so far."""
        with self._lock:
            return list(self._backends.values())

    def active(self) -> list[str]:
        """Names of the backends instantiated so far (sorted)."""
        with self._lock:
            return sorted(self._backends)

    def drop_dataset(self, dataset_id: str) -> None:
        """Drop one dataset's namespace from every pooled backend."""
        for backend in self.backends():
            drop = getattr(backend, "drop_dataset", None)
            if drop is not None:
                drop(dataset_id)

    def segment_names(self) -> list[str]:
        """Every shared segment currently published by pooled backends."""
        names: list[str] = []
        for backend in self.backends():
            segment_names = getattr(backend, "segment_names", None)
            if segment_names is not None:
                names.extend(segment_names())
        return names

    def stats(self) -> dict | None:
        """The pooled process backend's stats block, or ``None``."""
        backend = self.peek("process")
        return backend.stats() if backend is not None else None

    def close(self) -> None:
        """Shut down every pooled backend; zero segments remain after."""
        with self._lock:
            backends = list(self._backends.values())
            self._backends.clear()
        for backend in backends:
            backend.close()
