"""Versioned wire protocol of the ``repro serve`` daemon.

One request/response schema crosses the socket, in two framings that the
server sniffs apart on the first bytes of a connection:

* **NDJSON over TCP** — the native framing: every line is one JSON
  envelope, requests carry a client-chosen ``id`` echoed on the matching
  response, and a connection may pipeline freely (responses are matched
  by ``id``, not order).
* **HTTP/1.1** — a thin adapter for curl-ability: ``POST /query`` takes
  the same query envelope as a body, ``GET /stats`` and ``GET /healthz``
  map to the ``stats`` / ``healthz`` kinds.

The payloads inside the envelope are the canonical schemas of
:mod:`repro.service.service` verbatim: queries are
:meth:`Query.to_dict <repro.service.service.Query.to_dict>` dicts,
results are :meth:`QueryResult.to_dict
<repro.service.service.QueryResult.to_dict>` dicts, and ``stats`` bodies
are :meth:`DiversityService.stats
<repro.service.service.DiversityService.stats>` snapshots — all stamped
with :data:`~repro.service.service.SCHEMA_VERSION`.  The envelope itself
carries ``"v"``, the protocol version; unknown versions are rejected with
``unsupported_version`` rather than guessed at.

Request kinds
-------------
``query``
    ``{"v": 1, "id": 7, "kind": "query", "queries": [{"objective":
    "remote-edge", "k": 4, "epsilon": 1.0}, ...]}`` — answered with
    ``{"v": 1, "id": 7, "ok": true, "results": [...]}`` where every
    result is a ``QueryResult`` dict.  The whole request is admitted (and
    rejected) atomically.
``stats``
    The service stats snapshot plus a ``server`` section (admission,
    batching and latency counters).
``healthz``
    Liveness: ``{"ok": true, "status": "ok", "draining": false}``.
``refresh``
    ``{"kind": "refresh", "data": "/path/saved/by/generate"}`` — loads
    the dataset server-side and absorbs it in the background; the
    response arrives when the epoch swap has happened.
``tenants``
    The multi-tenant registry's ``tenants`` stats section (per-tenant
    residency, hits, faults, evictions); also served as
    ``GET /tenants``.

Multi-tenant routing: on a daemon serving an
:class:`~repro.service.registry.IndexRegistry`, ``query`` and
``refresh`` envelopes carry an optional ``"dataset"`` field naming the
tenant (defaulting to the registry's sole tenant when it has exactly
one); an unknown name is rejected with ``unknown_dataset`` (HTTP 404).

Error responses are ``{"v": 1, "id": ..., "ok": false, "error": {"code":
..., "message": ...}}``; an ``overloaded`` rejection adds
``retry_after_ms``, the explicit-backpressure contract (the admission
queue is bounded — the server never buffers without bound).  On a
QoS-enabled daemon (``repro serve --qos``) the rejection is per-tenant:
the error also carries ``dataset`` and the ``retry_after_ms`` hint is
computed from that tenant's own backlog or token bucket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.service.service import Query, QueryResult, SCHEMA_VERSION

#: Version of the socket envelope.  Bumped independently of the payload
#: :data:`~repro.service.service.SCHEMA_VERSION` (which stamps the query
#: / result / stats dicts riding inside it).
PROTOCOL_VERSION = 1

#: Request kinds the server understands.
REQUEST_KINDS = ("query", "stats", "healthz", "refresh", "tenants")

# -- error codes ---------------------------------------------------------------
#: Admission queue full — retry after ``retry_after_ms``.
ERROR_OVERLOADED = "overloaded"
#: Malformed envelope or query payload.
ERROR_BAD_REQUEST = "bad_request"
#: Envelope ``v`` (or payload ``schema_version``) not spoken here.
ERROR_UNSUPPORTED_VERSION = "unsupported_version"
#: Server is draining; no new work is admitted.
ERROR_SHUTTING_DOWN = "shutting_down"
#: The named ``dataset`` is not served by this registry (HTTP 404).
ERROR_UNKNOWN_DATASET = "unknown_dataset"
#: The request crashed server-side (a bug — gated to zero in CI).
ERROR_INTERNAL = "internal"


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error ``code``.

    ``retry_after_ms`` overrides the server's generic backoff hint —
    tenant-aware rejections (``repro serve --qos``) compute one from
    the tenant's own backlog or token bucket.  ``dataset`` names the
    tenant the rejection applies to, so a client multiplexing tenants
    over one connection can back off selectively.
    """

    def __init__(self, code: str, message: str, *,
                 retry_after_ms: float | None = None,
                 dataset: str | None = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms
        self.dataset = dataset


@dataclass(frozen=True)
class Request:
    """One decoded client request.

    ``id`` is the client's correlation token (echoed verbatim on the
    response); ``queries`` is non-empty only for ``kind == "query"``;
    ``data`` is the dataset path of a ``refresh``; ``dataset`` names the
    tenant a multi-tenant (registry) daemon should route the request to
    (``None`` on a single-index daemon, or to default to the registry's
    sole tenant).
    """

    kind: str
    id: object = None
    queries: tuple[Query, ...] = field(default=())
    data: str | None = None
    dataset: str | None = None


def _coerce_query(payload: object) -> Query:
    """One wire query — a Query dict or a legacy [objective, k, eps] list."""
    if isinstance(payload, dict):
        return Query.from_dict(payload)
    if isinstance(payload, (list, tuple)) and len(payload) in (2, 3):
        epsilon = float(payload[2]) if len(payload) == 3 else 1.0
        return Query(str(payload[0]), int(payload[1]), epsilon)
    raise ProtocolError(ERROR_BAD_REQUEST,
                        f"cannot interpret query payload {payload!r}")


def decode_request(line: str | bytes) -> Request:
    """Parse one NDJSON request line into a validated :class:`Request`.

    Raises
    ------
    ProtocolError
        With ``bad_request`` for malformed JSON / unknown kinds /
        missing fields, ``unsupported_version`` for an envelope or
        payload version this build does not speak.
    """
    try:
        envelope = json.loads(line)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(ERROR_BAD_REQUEST,
                            f"request is not valid JSON: {exc}") from exc
    if not isinstance(envelope, dict):
        raise ProtocolError(ERROR_BAD_REQUEST,
                            "request envelope must be a JSON object")
    version = envelope.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERROR_UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported; "
            f"this server speaks v{PROTOCOL_VERSION}")
    kind = envelope.get("kind")
    request_id = envelope.get("id")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(ERROR_BAD_REQUEST,
                            f"unknown request kind {kind!r}; "
                            f"known: {', '.join(REQUEST_KINDS)}")
    dataset = envelope.get("dataset")
    if dataset is not None and (not isinstance(dataset, str) or not dataset):
        raise ProtocolError(ERROR_BAD_REQUEST,
                            "'dataset' must be a non-empty string")
    if kind == "query":
        raw = envelope.get("queries")
        if raw is None and "query" in envelope:  # single-query sugar
            raw = [envelope["query"]]
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(ERROR_BAD_REQUEST,
                                "query request needs a non-empty "
                                "'queries' list (or a single 'query')")
        try:
            queries = tuple(_coerce_query(item) for item in raw)
        except ProtocolError:
            raise
        except Exception as exc:  # ValidationError, ValueError, ...
            raise ProtocolError(ERROR_BAD_REQUEST, str(exc)) from exc
        return Request(kind, request_id, queries, dataset=dataset)
    if kind == "refresh":
        data = envelope.get("data")
        if not isinstance(data, str) or not data:
            raise ProtocolError(ERROR_BAD_REQUEST,
                                "refresh request needs a 'data' dataset path")
        return Request(kind, request_id, data=data, dataset=dataset)
    return Request(kind, request_id, dataset=dataset)


# -- encoding ------------------------------------------------------------------

def encode_request(kind: str, request_id: object = None, *,
                   queries: list | tuple = (), data: str | None = None,
                   dataset: str | None = None) -> str:
    """One NDJSON request line (client side; newline included)."""
    envelope: dict = {"v": PROTOCOL_VERSION, "kind": kind}
    if request_id is not None:
        envelope["id"] = request_id
    if queries:
        envelope["queries"] = [
            query.to_dict() if isinstance(query, Query) else query
            for query in queries]
    if data is not None:
        envelope["data"] = data
    if dataset is not None:
        envelope["dataset"] = dataset
    return json.dumps(envelope) + "\n"


def encode_ok(request_id: object, **payload) -> str:
    """One NDJSON success line: ``{"v", "id", "ok": true, **payload}``."""
    envelope = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    envelope.update(payload)
    return json.dumps(envelope) + "\n"


def encode_results(request_id: object,
                   results: list[QueryResult]) -> str:
    """A success line answering a ``query`` request."""
    return encode_ok(request_id,
                     results=[result.to_dict() for result in results])


def encode_error(request_id: object, code: str, message: str, *,
                 retry_after_ms: float | None = None,
                 dataset: str | None = None) -> str:
    """One NDJSON error line; ``retry_after_ms`` rides on overloads.

    ``dataset`` scopes the error to one tenant — per-tenant rejections
    from a QoS daemon carry it so clients can back off one tenant
    without stalling the rest.
    """
    error: dict = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    if dataset is not None:
        error["dataset"] = dataset
    return json.dumps({"v": PROTOCOL_VERSION, "id": request_id,
                       "ok": False, "error": error}) + "\n"


def decode_response(line: str | bytes) -> dict:
    """Parse a response line (client side); raises ``ValueError`` on junk."""
    payload = json.loads(line)
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ValueError(f"not a response envelope: {line!r}")
    return payload


def results_of(response: dict) -> list[QueryResult]:
    """Materialize the :class:`QueryResult` list of a ``query`` response."""
    return [QueryResult.from_dict(item)
            for item in response.get("results", [])]


__all__ = [
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "REQUEST_KINDS",
    "ERROR_OVERLOADED",
    "ERROR_BAD_REQUEST",
    "ERROR_UNSUPPORTED_VERSION",
    "ERROR_SHUTTING_DOWN",
    "ERROR_UNKNOWN_DATASET",
    "ERROR_INTERNAL",
    "ProtocolError",
    "Request",
    "decode_request",
    "encode_request",
    "encode_ok",
    "encode_results",
    "encode_error",
    "decode_response",
    "results_of",
]
