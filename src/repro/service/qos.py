"""Tenant-aware admission control: per-tenant queues under WDRR dispatch.

The registry (PR 8) shares one worker fleet and one matrix plane across
tenants, but the daemon's admission control was still a single bounded
queue — a zipf-hot tenant could fill it and starve every cold tenant.
This module is the scheduling layer that closes that gap:

* :class:`TenantQuota` — the per-tenant knobs (``weight``,
  ``max_queue``, optional ``rate_limit_qps``), persisted in the
  ``registry.json`` manifest (format v2) and set via
  ``repro registry add --weight/--max-queue/--rate-limit``.
* :class:`TokenBucket` — a classic token bucket for the optional
  per-tenant rate limit: capacity-bounded burst, linear refill,
  ``rate_limit_qps=0`` as an explicit kill switch.
* :class:`WeightedDeficitRoundRobin` — per-tenant FIFO queues drained
  in deficit-round-robin order: each round a tenant banks
  ``weight * quantum`` deficit and dispatches one queued request per
  unit of deficit, so long-run dispatch shares converge to the weight
  ratio while every backlogged tenant is visited every round —
  a flooded tenant can push an under-quota tenant back by at most one
  round, never starve it.

Scheduling bugs are timing bugs, so everything here is deterministic
and sleep-free by construction: both the bucket and the scheduler take
an injectable ``clock`` callable (defaulting to
:func:`time.monotonic`), and no method blocks — ``admit`` either
enqueues or raises :class:`QosRejection`, ``take`` either returns the
next request or ``None``.  ``tests/test_qos.py`` drives fairness,
starvation-freedom and refill edge cases entirely on a fake clock.

The daemon (:mod:`repro.service.server`, ``repro serve --qos``) admits
into this scheduler instead of its single queue and lets the existing
micro-batch collector pull requests in WDRR order; batches may mix
tenants up to ``max_batch`` and dispatch still groups by dataset.
These classes are not thread-safe — the daemon drives them from one
event loop, and the tests drive them synchronously.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.exceptions import ValidationError
from repro.service.workload import latency_summary
from repro.utils.validation import check_positive_int

#: ``QosRejection.reason`` when the tenant's queue is at ``max_queue``.
REJECT_QUEUE_FULL = "queue_full"

#: ``QosRejection.reason`` when the tenant's token bucket is empty.
REJECT_RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class TenantQuota:
    """Admission-control knobs of one tenant.

    The default quota (weight 1, no explicit queue bound, no rate
    limit) is what every manifest-v1 tenant loads with — QoS is purely
    additive over PR 8 registries.

    Attributes
    ----------
    weight:
        Relative dispatch share under WDRR; a weight-2 tenant drains
        twice as fast as a weight-1 tenant when both are backlogged.
        Must be positive (fractional weights are fine).
    max_queue:
        This tenant's own admission bound.  ``None`` inherits the
        scheduler's default (the daemon passes its global
        ``max_queue``), so single-tenant behaviour is unchanged.
    rate_limit_qps:
        Optional token-bucket rate limit on *admissions* per second.
        ``None`` disables the bucket; ``0`` rejects everything — an
        explicit kill switch for a misbehaving tenant.
    """

    weight: float = 1.0
    max_queue: int | None = None
    rate_limit_qps: float | None = None

    def __post_init__(self):
        """Validate the weight, queue bound and rate limit."""
        if not isinstance(self.weight, (int, float)) \
                or isinstance(self.weight, bool) or self.weight <= 0:
            raise ValidationError(
                f"weight must be a positive number, got {self.weight!r}")
        if self.max_queue is not None:
            check_positive_int(self.max_queue, "max_queue")
        if self.rate_limit_qps is not None and (
                not isinstance(self.rate_limit_qps, (int, float))
                or isinstance(self.rate_limit_qps, bool)
                or self.rate_limit_qps < 0):
            raise ValidationError(
                "rate_limit_qps must be a non-negative number, "
                f"got {self.rate_limit_qps!r}")

    def to_manifest(self) -> dict:
        """The manifest-v2 ``"qos"`` entry: non-default fields only."""
        entry: dict = {}
        if self.weight != 1.0:
            entry["weight"] = self.weight
        if self.max_queue is not None:
            entry["max_queue"] = self.max_queue
        if self.rate_limit_qps is not None:
            entry["rate_limit_qps"] = self.rate_limit_qps
        return entry

    @classmethod
    def from_manifest(cls, payload: object) -> "TenantQuota":
        """Build a quota from a manifest ``"qos"`` entry (or ``None``).

        Missing entries (every manifest-v1 tenant) yield the default
        quota; junk raises :class:`~repro.exceptions.ValidationError`
        so a hand-edited manifest fails loudly at load, not at serve.
        """
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ValidationError(
                f"manifest 'qos' entry must be an object, got {payload!r}")
        unknown = set(payload) - {"weight", "max_queue", "rate_limit_qps"}
        if unknown:
            raise ValidationError(
                f"unknown manifest 'qos' fields: {sorted(unknown)}")
        return cls(weight=payload.get("weight", 1.0),
                   max_queue=payload.get("max_queue"),
                   rate_limit_qps=payload.get("rate_limit_qps"))


class TokenBucket:
    """A token bucket on an injectable clock.

    Starts full (burst up to *capacity* immediately), refills linearly
    at *rate_qps* tokens per second, never banks beyond *capacity*.
    With ``rate_qps == 0`` the capacity is zero: every ``try_take``
    fails, which is the kill-switch semantic of ``rate_limit_qps=0``.

    Parameters
    ----------
    rate_qps:
        Refill rate in tokens per second (``>= 0``).
    capacity:
        Burst bound.  Defaults to ``max(1, rate_qps)`` — one second of
        traffic, but never so small that a sub-1-qps rate can never
        accumulate a whole token.
    clock:
        Monotonic time source in seconds; injectable so refill is
        testable without sleeping.
    """

    def __init__(self, rate_qps: float, capacity: float | None = None, *,
                 clock: Callable[[], float] = time.monotonic):
        if rate_qps < 0:
            raise ValidationError("rate_qps must be non-negative")
        self.rate_qps = float(rate_qps)
        if capacity is None:
            capacity = max(1.0, self.rate_qps) if self.rate_qps > 0 else 0.0
        if capacity < 0:
            raise ValidationError("capacity must be non-negative")
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._refilled_at = clock()

    def _refill(self) -> None:
        """Accrue tokens for the time elapsed since the last refill."""
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.capacity,
                           self._tokens + elapsed * self.rate_qps)

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the clock)."""
        self._refill()
        return self._tokens

    def try_take(self, cost: float = 1.0) -> bool:
        """Spend *cost* tokens if available; never blocks."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def retry_after_s(self, cost: float = 1.0) -> float | None:
        """Seconds until *cost* tokens accrue, or ``None`` if never.

        ``None`` (zero-rate bucket, or a cost above capacity) means the
        caller should fall back to its generic retry hint — no finite
        wait will make the take succeed.
        """
        self._refill()
        if self._tokens >= cost:
            return 0.0
        if self.rate_qps <= 0 or cost > self.capacity:
            return None
        return (cost - self._tokens) / self.rate_qps


class QosRejection(Exception):
    """An admission the scheduler refused, with its reason and hint.

    Attributes
    ----------
    tenant:
        The tenant key whose quota rejected the request.
    reason:
        :data:`REJECT_QUEUE_FULL` or :data:`REJECT_RATE_LIMITED`.
    retry_after_ms:
        Tenant-specific backoff hint: the token-refill time for rate
        rejections, the weighted backlog-drain estimate for full
        queues; ``None`` when no finite hint exists (zero-rate bucket).
    """

    def __init__(self, tenant: Hashable, reason: str, message: str, *,
                 retry_after_ms: float | None = None):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after_ms = retry_after_ms


class _TenantState:
    """One tenant's queue, deficit, bucket and counters."""

    __slots__ = ("quota", "max_queue", "queue", "deficit", "bucket",
                 "admitted", "rejected_queue", "rejected_rate",
                 "dispatched", "latencies")

    def __init__(self, quota: TenantQuota, default_max_queue: int,
                 clock: Callable[[], float]):
        self.quota = quota
        self.max_queue = (quota.max_queue if quota.max_queue is not None
                          else default_max_queue)
        self.queue: deque = deque()
        self.deficit = 0.0
        self.bucket = (None if quota.rate_limit_qps is None
                       else TokenBucket(quota.rate_limit_qps, clock=clock))
        self.admitted = 0
        self.rejected_queue = 0
        self.rejected_rate = 0
        self.dispatched = 0
        self.latencies: list[float] = []


class WeightedDeficitRoundRobin:
    """WDRR dispatch over per-tenant FIFO queues.

    ``admit(tenant, item)`` enqueues under the tenant's quota (or
    raises :class:`QosRejection`); ``take()`` pops the next item in
    deficit-round-robin order.  Within a tenant, dispatch order is
    strictly FIFO; across tenants, long-run shares converge to the
    weight ratio, and every backlogged tenant is served at least once
    per round — the starvation-freedom bound the daemon's batch window
    inherits.

    Tenants unknown at construction (registered after the daemon
    started) are created lazily with *default_quota* on first admit,
    so the scheduler never drops a routed request on the floor.

    Parameters
    ----------
    quotas:
        Initial per-tenant quotas (the registry's manifest view).
    default_quota:
        Quota for tenants admitted without an explicit entry.
    default_max_queue:
        Queue bound for quotas whose ``max_queue`` is ``None`` — the
        daemon passes its global ``max_queue`` so a one-tenant QoS
        daemon rejects exactly like a non-QoS one.
    quantum:
        Deficit banked per unit weight per round.  ``1.0`` (the
        default) dispatches ``weight`` requests per backlogged tenant
        per round; there is no reason to change it unless request
        costs stop being uniform.
    base_retry_ms:
        Scale of the queue-full ``retry_after_ms`` hint (the daemon
        passes its configured ``retry_after_ms``).  The hint grows
        with the tenant's backlog and shrinks with its weight:
        ``base * queued / weight``.
    clock:
        Monotonic time source shared with every tenant bucket;
        injectable so the whole scheduler is testable without sleeps.
    """

    def __init__(self, quotas: Mapping[Hashable, TenantQuota] | None = None,
                 *, default_quota: TenantQuota | None = None,
                 default_max_queue: int = 64, quantum: float = 1.0,
                 base_retry_ms: float = 50.0,
                 clock: Callable[[], float] = time.monotonic):
        if quantum <= 0:
            raise ValidationError("quantum must be positive")
        if base_retry_ms < 0:
            raise ValidationError("base_retry_ms must be non-negative")
        self.quantum = float(quantum)
        self.base_retry_ms = float(base_retry_ms)
        self.default_quota = default_quota or TenantQuota()
        self.default_max_queue = check_positive_int(default_max_queue,
                                                    "default_max_queue")
        self._clock = clock
        self._tenants: dict[Hashable, _TenantState] = {}
        #: Round-robin order over backlogged tenants only.
        self._active: deque = deque()
        self._queued = 0
        for tenant, quota in (quotas or {}).items():
            self.add_tenant(tenant, quota)

    # -- tenant management -----------------------------------------------------

    def add_tenant(self, tenant: Hashable,
                   quota: TenantQuota | None = None) -> None:
        """Register *tenant* with *quota* (default quota when ``None``).

        Idempotent only for unknown tenants: re-adding an existing
        tenant raises, so a quota can never change under a backlog.
        """
        if tenant in self._tenants:
            raise ValidationError(f"tenant {tenant!r} already scheduled")
        self._tenants[tenant] = _TenantState(
            quota or self.default_quota, self.default_max_queue, self._clock)

    def _state(self, tenant: Hashable) -> _TenantState:
        """The (lazily created) state block for *tenant*."""
        state = self._tenants.get(tenant)
        if state is None:
            self.add_tenant(tenant)
            state = self._tenants[tenant]
        return state

    # -- admission -------------------------------------------------------------

    def admit(self, tenant: Hashable, item: object) -> None:
        """Enqueue *item* for *tenant* or raise :class:`QosRejection`.

        The rate limit is checked before the queue bound — a
        rate-limited request never consumes queue capacity — and both
        rejections carry a tenant-specific ``retry_after_ms``.
        """
        state = self._state(tenant)
        if state.bucket is not None and not state.bucket.try_take():
            state.rejected_rate += 1
            retry_s = state.bucket.retry_after_s()
            raise QosRejection(
                tenant, REJECT_RATE_LIMITED,
                f"tenant {tenant!r} exceeded its rate limit "
                f"({state.quota.rate_limit_qps} qps)",
                retry_after_ms=(None if retry_s is None else retry_s * 1e3))
        if len(state.queue) >= state.max_queue:
            state.rejected_queue += 1
            raise QosRejection(
                tenant, REJECT_QUEUE_FULL,
                f"tenant {tenant!r} queue full ({state.max_queue}); "
                "retry after the advertised delay",
                retry_after_ms=self.base_retry_ms * len(state.queue)
                / state.quota.weight)
        if not state.queue:
            self._active.append(tenant)
        state.queue.append(item)
        state.admitted += 1
        self._queued += 1

    # -- dispatch --------------------------------------------------------------

    def take(self):
        """Pop the next item in WDRR order, or ``None`` when empty.

        The front-of-round tenant dispatches while it has deficit;
        when its deficit runs out it moves to the back of the round
        and banks ``weight * quantum`` more.  A tenant whose queue
        empties leaves the round and forfeits its remaining deficit
        (standard DRR — idle tenants cannot bank priority).
        """
        while self._active:
            tenant = self._active[0]
            state = self._tenants[tenant]
            if state.deficit >= 1.0:
                state.deficit -= 1.0
                item = state.queue.popleft()
                state.dispatched += 1
                self._queued -= 1
                if not state.queue:
                    self._active.popleft()
                    state.deficit = 0.0
                return item
            self._active.rotate(-1)
            state.deficit += state.quota.weight * self.quantum
        return None

    def __len__(self) -> int:
        return self._queued

    def queued(self, tenant: Hashable) -> int:
        """How many of *tenant*'s requests are waiting for dispatch."""
        state = self._tenants.get(tenant)
        return 0 if state is None else len(state.queue)

    # -- observability ---------------------------------------------------------

    def record_latency(self, tenant: Hashable, seconds: float) -> None:
        """Sample one dispatch-to-answer latency for *tenant*.

        The daemon calls this when a dispatched request's results come
        back, anchoring per-tenant p50/p95/p99 on the same
        admission-to-response window as the global ``server.latency``
        block.  Samples are trimmed FIFO beyond 65536 per tenant.
        """
        state = self._state(tenant)
        state.latencies.append(seconds)
        if len(state.latencies) > 65536:
            del state.latencies[:32768]

    def stats(self) -> dict:
        """JSON-ready scheduler snapshot.

        Totals (``queued`` / ``admitted`` / ``rejected`` /
        ``dispatched``) plus a ``per_tenant`` map of quota knobs, the
        live ``queued`` / ``deficit``, admission counters split by
        rejection reason, and the per-tenant latency percentile block
        (:func:`~repro.service.workload.latency_summary`).  Drift-gated
        against ``docs/serving.md`` by ``tests/test_docs.py``.
        """
        per_tenant = {}
        admitted = rejected = dispatched = 0
        for tenant in sorted(self._tenants, key=str):
            state = self._tenants[tenant]
            admitted += state.admitted
            rejected += state.rejected_queue + state.rejected_rate
            dispatched += state.dispatched
            per_tenant[tenant] = {
                "weight": state.quota.weight,
                "max_queue": state.max_queue,
                "rate_limit_qps": state.quota.rate_limit_qps,
                "queued": len(state.queue),
                "deficit": state.deficit,
                "admitted": state.admitted,
                "rejected": state.rejected_queue + state.rejected_rate,
                "rejected_rate_limited": state.rejected_rate,
                "dispatched": state.dispatched,
                "latency": latency_summary(state.latencies),
            }
        return {
            "quantum": self.quantum,
            "queued": self._queued,
            "admitted": admitted,
            "rejected": rejected,
            "dispatched": dispatched,
            "per_tenant": per_tenant,
        }


__all__ = [
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMITED",
    "TenantQuota",
    "TokenBucket",
    "QosRejection",
    "WeightedDeficitRoundRobin",
]
