"""The sharded core-set index: a ladder of resolutions per objective family.

Composability (Definition 2) is the asset this module productizes: a
GMM / GMM-EXT core-set built for ``k'`` is a valid substrate for *every*
query with ``k <= k'``, so one expensive MapReduce build can serve
arbitrarily many ``(objective, k, eps)`` queries.  Two constructions cover
all six objectives:

* ``"gmm"`` — plain GMM kernels, valid for the non-injective objectives
  (remote-edge, remote-cycle);
* ``"gmm-ext"`` — GMM-EXT kernels with delegates, valid for the injective
  objectives (remote-clique/-star/-bipartition/-tree).

Per family the index holds a small geometric ladder of rungs
(:func:`repro.coresets.composable.ladder_parameters`); query routing picks
the *cheapest* rung whose capacity covers the request
(:meth:`CoresetIndex.route`), trading a slightly larger build for much
cheaper queries at small ``k``.  Builds run through
:meth:`~repro.mapreduce.algorithm.MRDiversityMaximizer.build_coreset`, so
the ``executor="process"`` path ships partitions zero-copy over shared
memory and reuses one persistent worker pool across the whole ladder —
and produces rungs bit-identical to a serial build for the same seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.coresets.composable import (
    ladder_parameters,
    merge_coresets,
    practical_coreset_size,
)
from repro.diversity.objectives import Objective, get_objective
from repro.exceptions import ValidationError
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.doubling import estimate_doubling_dimension
from repro.metricspace.points import PointSet
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: Construction families and the representative objective whose
#: ``requires_injective_proxy`` flag selects the right round-1 reducer.
FAMILY_GMM = "gmm"
FAMILY_GMM_EXT = "gmm-ext"
FAMILIES = (FAMILY_GMM, FAMILY_GMM_EXT)
_REPRESENTATIVE = {FAMILY_GMM: "remote-edge", FAMILY_GMM_EXT: "remote-clique"}


def family_of(objective: str | Objective) -> str:
    """The construction family whose core-sets serve *objective*."""
    objective = get_objective(objective)
    return FAMILY_GMM_EXT if objective.requires_injective_proxy else FAMILY_GMM


@dataclass
class LadderRung:
    """One resolution of the index: a cached core-set serving ``k <= k_cap``."""

    family: str
    k_cap: int
    k_prime: int
    coreset: PointSet
    build_seconds: float = 0.0

    @property
    def key(self) -> tuple[str, int, int]:
        """Hashable identity used by result/matrix caches."""
        return (self.family, self.k_cap, self.k_prime)

    def describe(self) -> dict:
        """JSON-ready rung summary (parameters and core-set size)."""
        return {"family": self.family, "k_cap": self.k_cap,
                "k_prime": self.k_prime, "coreset_points": len(self.coreset),
                "build_seconds": self.build_seconds}


@dataclass
class CoresetIndex:
    """Build-once index: per-family ladders of core-set rungs.

    Instances come from :func:`build_coreset_index` (fresh build) or
    :func:`repro.service.persist.load_index` (warm start); queries go
    through :meth:`route`, which never touches the source dataset.
    """

    metric_name: str
    dimension_estimate: float
    rungs: dict[str, list[LadderRung]]
    ladder: dict
    source: dict
    seed: int | None = None
    build_calls: int = 0
    build_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def families(self) -> list[str]:
        """Construction families the index holds ladders for, sorted."""
        return sorted(self.rungs)

    @property
    def dtype(self) -> str:
        """Storage dtype of the rung core-sets (``"float64"`` default).

        Derived from the arrays themselves rather than recorded metadata,
        so it can never drift from what the kernels actually compute on.
        """
        for family in self.families:
            for rung in self.rungs[family]:
                return str(rung.coreset.points.dtype)
        return "float64"

    def astype(self, dtype: str | np.dtype) -> "CoresetIndex":
        """A copy of this index with every rung core-set cast to *dtype*.

        Metadata (ladder, dimension estimate, build history) is shared or
        copied verbatim — casting never changes routing, only the storage
        and kernel dtype.  Returns ``self`` when already in *dtype*.
        """
        dtype = np.dtype(dtype)
        if str(dtype) == self.dtype:
            return self
        rungs = {
            family: [LadderRung(family=rung.family, k_cap=rung.k_cap,
                                k_prime=rung.k_prime,
                                coreset=rung.coreset.astype(dtype),
                                build_seconds=rung.build_seconds)
                     for rung in self.rungs[family]]
            for family in self.families
        }
        return CoresetIndex(
            metric_name=self.metric_name,
            dimension_estimate=self.dimension_estimate,
            rungs=rungs,
            ladder=dict(self.ladder),
            source=dict(self.source),
            seed=self.seed,
            build_calls=self.build_calls,
            build_seconds=self.build_seconds,
            extra=dict(self.extra),
        )

    def all_rungs(self) -> list[LadderRung]:
        """Every rung across families, in family-then-cost order."""
        return [rung for family in self.families for rung in self.rungs[family]]

    def covering_rungs(self, objective: str | Objective,
                       k: int) -> list[LadderRung]:
        """Every rung able to serve ``(objective, k)``, cheapest first.

        A rung covers the query when its capacity admits ``k``: its
        ``k_cap >= k`` and its core-set holds at least ``k`` points.
        :meth:`route` narrows this list by the epsilon sizing; the
        epsilon-aware result reuse of the query service scans it for
        cached answers of larger (tighter-eps) rungs.

        Raises
        ------
        ValidationError
            If the index holds no ladder for the objective's family, or
            no rung admits ``k``.
        """
        objective = get_objective(objective)
        check_positive_int(k, "k")
        family = family_of(objective)
        ladder = self.rungs.get(family, [])
        if not ladder:
            raise ValidationError(
                f"index has no {family!r} ladder (families: {self.families}); "
                f"rebuild with families including {family!r}")
        candidates = [rung for rung in ladder
                      if rung.k_cap >= k and len(rung.coreset) >= k]
        if not candidates:
            raise ValidationError(
                f"no ladder rung serves k={k} for {objective.name} "
                f"(largest k_cap is {ladder[-1].k_cap}); "
                "rebuild the index with a larger k_max")
        return candidates

    def route(self, objective: str | Objective, k: int,
              epsilon: float = 1.0) -> LadderRung:
        """The cheapest rung that covers an ``(objective, k, eps)`` query.

        A rung covers the query when its capacity admits ``k``
        (``k_cap >= k`` and the core-set holds at least ``k`` points) and
        its kernel size meets the practical sizing
        ``k' >= practical_coreset_size(k, eps, D)`` — which starts at the
        ladder's own multiplier for the default slack (so ``eps = 1``
        routes to the first covering rung, the Section 7 sweet spot) and
        climbs the ladder as ``eps`` tightens.  Rungs are scanned in
        ascending cost; if none meets the sizing (an aggressive ``eps``),
        the largest admissible rung is the best the index can do and is
        returned rather than failing the query.
        """
        candidates = self.covering_rungs(objective, k)
        return self.select_rung(candidates, objective, k, epsilon)

    def select_rung(self, candidates: list[LadderRung],
                    objective: str | Objective, k: int,
                    epsilon: float = 1.0) -> LadderRung:
        """Pick the serving rung among precomputed covering *candidates*.

        The epsilon-sizing half of :meth:`route`, split out so callers
        that already hold the covering list (the query service resolves
        routing and epsilon-aware reuse from one traversal) do not scan
        the ladder twice per query.  *candidates* must come from
        :meth:`covering_rungs` for the same ``(objective, k)``.
        """
        objective = get_objective(objective)
        required = practical_coreset_size(
            k, epsilon, self.dimension_estimate, objective,
            base_multiplier=int(self.ladder.get("multiplier", 4)))
        for rung in candidates:
            if rung.k_prime >= required:
                return rung
        return candidates[-1]

    def extend(self, new_points: PointSet, *,
               batch_size: int | None = None,
               compact_above: int | None = None) -> "CoresetIndex":
        """A new index covering the grown dataset — no MapReduce rebuild.

        Composability (Definition 2) licenses incremental maintenance:
        per rung, *new_points* stream through the batched SMM / SMM-EXT
        sketch (:func:`repro.streaming.algorithm.stream_coreset`) with the
        rung's own ``(k_cap, k')`` parameters, and the resulting core-set
        of the new data is merged into the rung by union — a valid
        core-set of the concatenated dataset.  Rungs whose merged size
        exceeds *compact_above* (default: the cold-build union bound,
        ``parallelism`` per-partition core-sets) are re-reduced with the
        family's construction so repeated extends stay bounded.

        Routing-dimension maintenance: the doubling-dimension estimate
        that drives :func:`~repro.coresets.composable.practical_coreset_size`
        is computed once at build time, which goes stale when refreshes
        shift the data distribution.  When the refresh history shows the
        dataset has grown to at least **2x** its size at the last
        estimate, the dimension is re-estimated from a sample of the
        grown dataset — the fresh points concatenated with the largest
        rung core-sets, which are by construction a geometric summary of
        everything ingested before — and recorded in
        ``extra["dimension_reestimates"]``.

        Parameters
        ----------
        new_points:
            Fresh data in the same metric space as the indexed dataset.
        batch_size:
            Sketch ingestion block size; ``None`` uses the auto-tuned
            :func:`repro.tuning.recommend_batch_size` recommendation.
        compact_above:
            Per-rung point-count threshold above which the merged
            core-set is re-reduced; ``None`` derives the cold-build bound
            per rung.

        Returns
        -------
        CoresetIndex
            A *new* index; ``self`` is left untouched, so a service can
            swap atomically between the two under concurrent queries.

        Raises
        ------
        ValidationError
            If *new_points* is empty or disagrees with the index on
            metric or dimensionality.
        """
        from repro.streaming.algorithm import stream_coreset

        if not isinstance(new_points, PointSet) or len(new_points) == 0:
            raise ValidationError(
                "extend needs a non-empty PointSet of new data")
        if new_points.metric.name != self.metric_name:
            raise ValidationError(
                f"metric mismatch: index uses {self.metric_name!r}, "
                f"new points use {new_points.metric.name!r}")
        expected_dim = self.source.get("dim")
        if expected_dim is not None and new_points.dim != expected_dim:
            raise ValidationError(
                f"dimension mismatch: index holds {expected_dim}-d points, "
                f"new points are {new_points.dim}-d")
        # Ingest in the index's own storage dtype so merged rungs never
        # silently upcast (a float32 plane must stay float32 across epochs).
        new_points = new_points.astype(self.dtype)
        parallelism = max(int(self.ladder.get("parallelism", 4)), 1)
        started = time.perf_counter()
        rungs: dict[str, list[LadderRung]] = {}
        sketch_builds = 0
        for family in self.families:
            objective = _REPRESENTATIVE[family]
            new_rungs = []
            for rung in self.rungs[family]:
                t0 = time.perf_counter()
                fresh = stream_coreset(new_points, k=rung.k_cap,
                                       k_prime=rung.k_prime,
                                       objective=objective,
                                       batch_size=batch_size)
                sketch_builds += 1
                # Re-reduce to the cold build's size class: a cold rung is
                # the union of `parallelism` per-partition core-sets of k'
                # kernels each, so compaction targets p*k' kernel points
                # (GMM-EXT kernels additionally carry up to k_cap
                # delegates each, for both the trigger and the target).
                compact_k_prime = parallelism * rung.k_prime
                if compact_above is None:
                    per_partition = rung.k_prime
                    if family == FAMILY_GMM_EXT:
                        per_partition *= 1 + rung.k_cap
                    threshold = parallelism * per_partition
                else:
                    threshold = compact_above
                merged = merge_coresets([rung.coreset, fresh], rung.k_cap,
                                        compact_k_prime, objective,
                                        max_points=threshold)
                new_rungs.append(LadderRung(
                    family=family, k_cap=rung.k_cap, k_prime=rung.k_prime,
                    coreset=merged,
                    build_seconds=time.perf_counter() - t0))
            rungs[family] = new_rungs
        elapsed = time.perf_counter() - started
        extra = dict(self.extra)
        history = list(extra.get("refreshes", []))
        history.append({"points_added": len(new_points),
                        "sketch_builds": sketch_builds,
                        "seconds": elapsed})
        extra["refreshes"] = history
        n_after = int(self.source.get("n", 0)) + len(new_points)
        dimension = self._maybe_reestimate_dimension(new_points, rungs,
                                                     n_after, extra)
        return CoresetIndex(
            metric_name=self.metric_name,
            dimension_estimate=dimension,
            rungs=rungs,
            ladder=dict(self.ladder),
            source={**self.source,
                    "n": int(self.source.get("n", 0)) + len(new_points)},
            seed=self.seed,
            build_calls=self.build_calls,
            build_seconds=self.build_seconds + elapsed,
            extra=extra,
        )

    def _maybe_reestimate_dimension(self, new_points: PointSet,
                                    rungs: dict[str, list[LadderRung]],
                                    n_after: int, extra: dict) -> float:
        """Re-estimate the routing dimension when the data has grown >= 2x.

        Called by :meth:`extend` with the already-extended rungs and the
        mutable ``extra`` block of the index under construction.  The
        growth baseline is the dataset size at the last estimate (build
        time, or the last re-estimate recorded in
        ``extra["dim_estimate_n"]``); below the 2x threshold the current
        estimate is kept unchanged.  The sample combines *new_points*
        with the largest rung core-set of each family — the core-sets
        summarize every previously ingested point, so the sample reflects
        the concatenated dataset without the index having to retain it.
        """
        history = extra.get("refreshes", [])
        previously_added = sum(int(entry.get("points_added", 0))
                               for entry in history[:-1])
        build_n = max(int(self.source.get("n", 0)) - previously_added, 1)
        n_at_estimate = int(extra.get("dim_estimate_n", build_n))
        if n_after < 2 * n_at_estimate:
            return self.dimension_estimate
        summaries = [rungs[family][-1].coreset.points
                     for family in sorted(rungs) if rungs[family]]
        pool = np.vstack([new_points.points, *summaries])
        rng = ensure_rng(self.seed)
        sample_size = min(len(pool), 2048)
        sample = PointSet(pool[rng.choice(len(pool), size=sample_size,
                                          replace=False)],
                          metric=new_points.metric)
        dimension = float(estimate_doubling_dimension(sample, num_balls=24,
                                                      quantile=0.9, seed=rng))
        reestimates = list(extra.get("dimension_reestimates", []))
        reestimates.append({"n": n_after,
                            "previous": self.dimension_estimate,
                            "estimate": dimension})
        extra["dimension_reestimates"] = reestimates
        extra["dim_estimate_n"] = n_after
        return dimension

    def describe(self) -> dict:
        """JSON-ready summary (the metadata block persistence writes)."""
        return {
            "metric": self.metric_name,
            "dtype": self.dtype,
            "dimension_estimate": self.dimension_estimate,
            "seed": self.seed,
            "ladder": self.ladder,
            "source": self.source,
            "build_calls": self.build_calls,
            "build_seconds": self.build_seconds,
            "extra": self.extra,
            "rungs": {family: [rung.describe() for rung in self.rungs[family]]
                      for family in self.families},
        }


def build_coreset_index(
    points: PointSet,
    k_max: int,
    families: tuple[str, ...] = FAMILIES,
    multiplier: int = 4,
    growth: int = 2,
    k_min: int = 4,
    parallelism: int = 4,
    executor: str = "serial",
    partition_strategy: str = "random",
    seed: int | None = 0,
    sample_size: int = 2048,
    dtype: str | np.dtype | None = None,
) -> CoresetIndex:
    """Ingest *points* once: build every ladder rung for every family.

    One :class:`~repro.mapreduce.algorithm.MRDiversityMaximizer` per family
    builds its whole ladder through
    :meth:`~repro.mapreduce.algorithm.MRDiversityMaximizer.build_coreset`,
    so the process executor's worker pool is created once per family and
    reused across rungs.  The doubling dimension estimated here is stored
    on the index and drives query routing forever after — the source
    dataset is not needed again.

    With ``dtype="float32"`` the source is cast up front and the whole
    build — sketches, kernels, rung core-sets — runs in float32 (the
    fast path: half the bandwidth and residency of float64).
    """
    for family in families:
        if family not in FAMILIES:
            raise ValidationError(
                f"unknown family {family!r}; known: {FAMILIES}")
    if dtype is not None:
        points = points.astype(dtype)
    ladder_params = ladder_parameters(k_max, multiplier=multiplier,
                                      growth=growth, k_min=k_min)
    rng = ensure_rng(seed)
    n = len(points)
    sample = (points.subset(rng.choice(n, size=sample_size, replace=False))
              if n > sample_size else points)
    dimension = estimate_doubling_dimension(sample, num_balls=24,
                                            quantile=0.9, seed=rng)
    started = time.perf_counter()
    rungs: dict[str, list[LadderRung]] = {}
    build_calls = 0
    for family in families:
        first_cap, first_prime = ladder_params[0]
        with MRDiversityMaximizer(
                k=first_cap, k_prime=first_prime,
                objective=_REPRESENTATIVE[family],
                parallelism=parallelism, metric=points.metric,
                partition_strategy=partition_strategy, executor=executor,
                seed=seed) as builder:
            family_rungs = []
            for k_cap, k_prime in ladder_params:
                t0 = time.perf_counter()
                build = builder.build_coreset(points, k=k_cap, k_prime=k_prime)
                build_calls += 1
                family_rungs.append(LadderRung(
                    family=family, k_cap=k_cap, k_prime=k_prime,
                    coreset=build.coreset,
                    build_seconds=time.perf_counter() - t0))
        rungs[family] = family_rungs
    return CoresetIndex(
        metric_name=points.metric.name,
        dimension_estimate=float(dimension),
        rungs=rungs,
        ladder={"k_max": k_max, "k_min": k_min, "multiplier": multiplier,
                "growth": growth, "parallelism": parallelism,
                "partition_strategy": partition_strategy,
                "executor": executor},
        source={"n": n, "dim": points.dim},
        seed=seed,
        build_calls=build_calls,
        build_seconds=time.perf_counter() - started,
    )
