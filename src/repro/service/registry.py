"""Multi-tenant index registry: many datasets, one plane, tiered tenants.

The paper's composability theorem (Definition 2) lets core-sets built
independently be merged at query time; applied one level up, it means
many *datasets* can be sharded across builders and served from one
process fleet.  :class:`IndexRegistry` is that layer above
:class:`~repro.service.service.DiversityService`:

* **Named tenants** — each ``dataset_id`` owns a persisted
  :class:`~repro.service.index.CoresetIndex` plus (while resident) a
  :class:`~repro.service.service.DiversityService` serving it.
  :meth:`IndexRegistry.register` / :meth:`~IndexRegistry.detach` manage
  the set; :meth:`~IndexRegistry.attach` pins a tenant's service for a
  scoped block of queries.
* **One shared plane** — every tenant's service is wired to a single
  registry-scope :class:`~repro.service.matrices.MatrixCache` and a
  single :class:`~repro.service.executors.ExecutorPool` (hence one
  process fleet and one
  :class:`~repro.service.matrices.SharedMatrixCache`), so all tenants'
  rung matrices compete under one global ``REPRO_MATRIX_BUDGET_MB``.
  Cache keys open with ``(dataset_id, epoch, ...)`` — two tenants with
  identically-shaped rungs can never alias.
* **Hot/cold tiering** — an LRU over tenants caps how many are resident
  at once (*max_resident*).  A cold tenant's rung matrices, shared
  segments and core-set arrays are dropped down to the ``.npz``
  persistence layer (:mod:`repro.service.persist`) and faulted back on
  demand at the next query; persistence round-trips are exact, so
  post-fault answers are bit-identical to an always-hot replica.
  Faults, evictions and residency are counted per tenant in
  :meth:`IndexRegistry.stats`.

A registry directory is self-describing: :meth:`IndexRegistry.save_manifest`
writes ``registry.json`` (:data:`MANIFEST_NAME`, format
:data:`MANIFEST_FORMAT_VERSION`) next to the persisted indexes and
:meth:`IndexRegistry.from_directory` reloads the whole tenant set —
the unit ``repro serve --registry DIR`` deploys.

Thread safety: fully safe.  A registry lock guards the tenant table,
recency order, pins and counters; per-tenant locks serialize the
fault-in / evict / save transitions, so cross-tenant traffic never
blocks on one tenant's disk I/O.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service.executors import EXECUTOR_NAMES, ExecutorPool
from repro.service.index import CoresetIndex, build_coreset_index
from repro.service.matrices import MatrixCache
from repro.service.persist import load_index, save_index
from repro.service.qos import TenantQuota
from repro.service.service import (
    SCHEMA_VERSION,
    DiversityService,
    QueryLike,
    QueryResult,
)
from repro.utils.validation import check_positive_int

#: File name of the tenant manifest inside a registry directory.
MANIFEST_NAME = "registry.json"

#: Version stamp of the manifest schema written by :meth:`save_manifest`.
#: v2 added the optional per-tenant ``"qos"`` block (weight, max_queue,
#: rate_limit_qps); v1 manifests still load, with default quotas.
MANIFEST_FORMAT_VERSION = 2

#: Manifest versions :meth:`IndexRegistry.from_directory` accepts.
SUPPORTED_MANIFEST_VERSIONS = (1, 2)

#: Environment fallback for ``IndexRegistry(max_resident=...)``.
MAX_RESIDENT_ENV_VAR = "REPRO_MAX_RESIDENT"


class UnknownDatasetError(ValidationError):
    """A request named a ``dataset_id`` this registry does not serve.

    The daemon maps this onto the ``unknown_dataset`` protocol error
    (HTTP 404) instead of the generic ``bad_request``.
    """

    def __init__(self, dataset_id: str, known: Iterable[str] = ()):
        known = sorted(known)
        suffix = f"; serving: {', '.join(known)}" if known else ""
        super().__init__(f"unknown dataset {dataset_id!r}{suffix}")
        self.dataset_id = dataset_id


def _max_resident_from_env() -> int | None:
    """``REPRO_MAX_RESIDENT`` as a positive int, or ``None`` when unset.

    Malformed or non-positive values degrade to ``None`` (no tiering) —
    like the matrix budget, residency is an operational knob, never a
    correctness requirement.
    """
    raw = os.environ.get(MAX_RESIDENT_ENV_VAR)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class _Tenant:
    """Registry-side bookkeeping for one dataset.

    ``service`` is ``None`` while the tenant is cold (evicted); ``path``
    is the persistence base every eviction spills to and every fault
    loads from.  ``hits``/``epoch``/``dtype`` fold in the live service's
    counters at eviction time so ``stats()`` stays truthful across
    residency transitions.  ``lock`` serializes this tenant's fault-in /
    evict / save transitions; ``pins`` (guarded by the registry lock)
    counts attached users and blocks eviction.  ``quota`` carries the
    tenant's admission-control knobs (manifest-v2 ``"qos"`` block),
    consumed by the daemon's WDRR scheduler under ``repro serve
    --qos``.
    """

    dataset_id: str
    path: Path
    dtype: str | None = None
    quota: TenantQuota = field(default_factory=TenantQuota)
    service: DiversityService | None = None
    pins: int = 0
    hits: int = 0
    faults: int = 0
    evictions: int = 0
    epoch: int = 0
    dirty: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


class IndexRegistry:
    """Serve many named datasets from one fleet and one shared plane.

    Parameters
    ----------
    max_resident:
        Hot-tier capacity: how many tenants may hold a resident
        :class:`~repro.service.service.DiversityService` at once.
        ``None`` (the default) reads ``REPRO_MAX_RESIDENT`` from the
        environment and falls back to no limit.  Beyond the limit the
        least-recently-used unpinned tenant is evicted down to its
        ``.npz`` files and faulted back on demand.
    matrix_budget_mb:
        The **global** matrix budget all tenants compete under,
        following the :class:`~repro.service.matrices.MatrixCache`
        convention (``None`` reads ``REPRO_MATRIX_BUDGET_MB``, ``0``
        forces unbudgeted).  Applied to both the shared in-process cache
        and the pooled process executor's shared-memory segments.
    cache_size, cache_stripes:
        Per-tenant result-LRU shape (each tenant keeps its own result
        cache; matrices are the shared resource).
    executor, executor_workers:
        Default execution backend and fan-out for every tenant, served
        from one :class:`~repro.service.executors.ExecutorPool`.
    plan:
        Query-planning mode for every tenant service — ``"static"``
        (default, today's fixed policy) or ``"auto"`` (cost-model
        planning; see :class:`~repro.service.service.DiversityService`).
        All tenants share **one**
        :class:`~repro.service.planner.QueryPlanner`, so per-tenant
        plans are priced under the shared matrix budget and every
        tenant's measured timings refine the same model.
    spill_dir:
        Directory where tenants registered from in-memory indexes are
        persisted on first eviction (and by :meth:`save_manifest`).
        ``None`` creates a private temporary directory, removed by
        :meth:`close`.

    Example
    -------
    >>> from repro.datasets.synthetic import sphere_shell
    >>> from repro.service import build_coreset_index
    >>> registry = IndexRegistry(max_resident=1)
    >>> for name, seed in [("eu", 0), ("us", 1)]:
    ...     index = build_coreset_index(sphere_shell(300, 6, seed=seed),
    ...                                 k_max=6, k_min=6, seed=0)
    ...     registry.register(name, index)
    >>> result = registry.query("eu", "remote-edge", 4)  # faults "eu" in
    >>> sorted(registry.list())
    ['eu', 'us']
    >>> registry.close()
    """

    def __init__(self, *, max_resident: int | None = None,
                 matrix_budget_mb: int | None = None,
                 cache_size: int = 128, cache_stripes: int = 8,
                 executor: str = "serial", executor_workers: int = 4,
                 plan: str = "static",
                 spill_dir: str | Path | None = None):
        if executor not in EXECUTOR_NAMES:
            raise ValidationError(
                f"unknown executor {executor!r}; "
                f"known: {', '.join(EXECUTOR_NAMES)}")
        if plan not in ("static", "auto"):
            raise ValidationError(
                f"unknown plan mode {plan!r}; known: static, auto")
        self.plan_mode = plan
        if plan == "auto":
            from repro.service.planner import CostModel, QueryPlanner
            from repro.tuning import load_calibration

            #: One planner for the fleet: every tenant's batches refine
            #: the same cost model, priced under the shared budget.
            self._planner = QueryPlanner(
                CostModel.from_payload(load_calibration()))
        else:
            self._planner = None
        if max_resident is None:
            max_resident = _max_resident_from_env()
        self.max_resident = (None if max_resident is None
                             else check_positive_int(max_resident,
                                                     "max_resident"))
        if matrix_budget_mb is None:
            budget_bytes: int | None = None  # defer to the environment
        elif matrix_budget_mb == 0:
            budget_bytes = 0  # explicit: unbudgeted
        else:
            budget_bytes = check_positive_int(
                matrix_budget_mb, "matrix_budget_mb") * 2**20
        self._cache_size = check_positive_int(cache_size, "cache_size")
        self._cache_stripes = check_positive_int(cache_stripes,
                                                 "cache_stripes")
        self.default_executor = executor
        self.executor_workers = check_positive_int(executor_workers,
                                                   "executor_workers")
        #: The one in-process matrix cache every tenant's service shares.
        self._matrices = MatrixCache(budget_bytes)
        #: The one backend pool (process fleet + shared segments) every
        #: tenant's queries dispatch through.
        self._pool = ExecutorPool(budget_bytes)
        self._tenants: dict[str, _Tenant] = {}
        #: LRU recency: dataset_ids, least recently used first.
        self._recency: list[str] = []
        self._lock = threading.RLock()
        self._spill_dir = None if spill_dir is None else Path(spill_dir)
        self._owns_spill_dir = False
        self._closed = False

    # -- tenant membership -------------------------------------------------------
    @classmethod
    def from_directory(cls, directory: str | Path,
                       **options) -> "IndexRegistry":
        """Load every tenant listed in a directory's ``registry.json``.

        The manifest (:data:`MANIFEST_NAME`) maps ``dataset_id`` to the
        relative base name of its ``.npz``/``.json`` index files;
        tenants are registered cold and fault in on first query.
        *options* are forwarded to the constructor.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise ValidationError(
                f"no {MANIFEST_NAME} in {directory} — not a registry "
                "directory (create one with `repro registry add`)") from None
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"malformed {manifest_path}: {exc}") from exc
        version = manifest.get("format_version")
        if version not in SUPPORTED_MANIFEST_VERSIONS:
            raise ValidationError(
                f"unsupported registry manifest format_version {version!r};"
                " this build speaks versions "
                f"{', '.join(map(str, SUPPORTED_MANIFEST_VERSIONS))}")
        registry = cls(spill_dir=options.pop("spill_dir", directory),
                       **options)
        for entry in manifest.get("tenants", []):
            try:
                dataset_id = str(entry["dataset_id"])
                base = str(entry["index"])
            except (KeyError, TypeError) as exc:
                raise ValidationError(
                    f"malformed tenant entry {entry!r} in "
                    f"{manifest_path}: {exc}") from exc
            try:
                quota = TenantQuota.from_manifest(entry.get("qos"))
            except ValidationError as exc:
                raise ValidationError(
                    f"malformed 'qos' block for tenant {dataset_id!r} in "
                    f"{manifest_path}: {exc}") from exc
            registry.register(dataset_id, path=directory / base,
                              dtype=entry.get("dtype"), quota=quota)
        return registry

    def register(self, dataset_id: str,
                 index: CoresetIndex | None = None, *,
                 path: str | Path | None = None,
                 points: PointSet | None = None, k_max: int | None = None,
                 dtype: str | None = None,
                 quota: TenantQuota | None = None,
                 **build_options) -> None:
        """Add a tenant, from an index object, persisted files, or data.

        Exactly one source: *index* (served resident immediately),
        *path* (the base of ``.npz``/``.json`` files from a previous
        :func:`~repro.service.persist.save_index` — registered cold,
        faulted in on first query), or *points* + *k_max* (built now via
        :func:`~repro.service.index.build_coreset_index` with
        *build_options*).  *dtype* casts a path-loaded index on every
        fault (e.g. ``"float32"`` to serve a float64 index on the fast
        path); in-memory sources are served in their own dtype.
        *quota* sets the tenant's admission-control knobs
        (:class:`~repro.service.qos.TenantQuota`; default: weight 1,
        no rate limit), persisted in the manifest and honoured by
        ``repro serve --qos``.
        """
        dataset_id = str(dataset_id)
        if not dataset_id:
            raise ValidationError("dataset_id must be a non-empty string")
        sources = sum(source is not None for source in (index, path, points))
        if sources != 1:
            raise ValidationError(
                "register() needs exactly one of index=, path= or "
                "points= (+ k_max=)")
        if points is not None:
            if k_max is None:
                raise ValidationError("register(points=...) needs k_max=")
            index = build_coreset_index(points, k_max, **build_options)
        with self._lock:
            if self._closed:
                raise ValidationError("registry is closed")
            if dataset_id in self._tenants:
                raise ValidationError(
                    f"dataset {dataset_id!r} is already registered")
            base = (Path(path) if path is not None
                    else self._spill_path(dataset_id))
            tenant = _Tenant(dataset_id=dataset_id, path=base, dtype=dtype,
                             quota=quota or TenantQuota())
            if index is not None:
                tenant.service = self._make_service(dataset_id, index)
                tenant.dirty = True  # not on disk yet; evictions spill it
            self._tenants[dataset_id] = tenant
            self._recency.append(dataset_id)
        self._maybe_evict()

    def detach(self, dataset_id: str) -> None:
        """Remove a tenant: close its service, drop its shared namespaces.

        Persisted index files are left on disk — a detach is a serving
        decision, not a delete.  In-memory state that was never spilled
        is discarded.
        """
        with self._lock:
            tenant = self._tenant(dataset_id)
            if tenant.pins:
                raise ValidationError(
                    f"dataset {dataset_id!r} is attached; detach after "
                    "the last attach() block exits")
            del self._tenants[dataset_id]
            self._recency.remove(dataset_id)
        with tenant.lock:
            if tenant.service is not None:
                tenant.service.close()
                tenant.service = None

    def list(self) -> list[str]:
        """Registered ``dataset_id``\\ s, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def quotas(self) -> dict[str, TenantQuota]:
        """Every tenant's admission quota, keyed by ``dataset_id``.

        The view ``repro serve --qos`` seeds its WDRR scheduler with;
        tenants registered later fall back to the scheduler's default
        quota.
        """
        with self._lock:
            return {dataset_id: tenant.quota
                    for dataset_id, tenant in sorted(self._tenants.items())}

    @contextmanager
    def attach(self, dataset_id: str) -> Iterator[DiversityService]:
        """Pin a tenant and yield its (resident) service.

        Faults the tenant in from its ``.npz`` files if it is cold; the
        pin blocks eviction for the duration of the ``with`` block, so
        the yielded service stays valid.  Recency is touched, making
        this tenant the hottest.
        """
        with self._lock:
            tenant = self._tenant(dataset_id)
            tenant.pins += 1
            self._touch(dataset_id)
        try:
            with tenant.lock:
                if tenant.service is None:
                    self._fault_in(tenant)
                service = tenant.service
            yield service
        finally:
            with self._lock:
                tenant.pins -= 1
        self._maybe_evict()

    # -- queries -----------------------------------------------------------------
    def query(self, dataset_id: str | None, objective: str, k: int,
              epsilon: float = 1.0) -> QueryResult:
        """Answer one query against one tenant (``None``: sole tenant)."""
        with self.attach(self._resolve(dataset_id)) as service:
            return service.query(objective, k, epsilon)

    def query_batch(self, queries: Iterable[QueryLike],
                    dataset_id: str | None = None, *,
                    executor: str | None = None) -> list[QueryResult]:
        """Answer a batch against one tenant (``None``: sole tenant).

        The batch runs on the tenant's service exactly as a standalone
        :meth:`DiversityService.query_batch
        <repro.service.service.DiversityService.query_batch>` would —
        same grouping, caching and bit-identical answers — just with the
        matrices and worker fleet shared across tenants.
        """
        with self.attach(self._resolve(dataset_id)) as service:
            return service.query_batch(queries, executor=executor)

    def refresh(self, dataset_id: str | None, new_points: PointSet,
                *, batch_size: int | None = None) -> tuple[str, int]:
        """Absorb new points into one tenant's index (epoch-safe).

        Delegates to :meth:`DiversityService.refresh
        <repro.service.service.DiversityService.refresh>` under an
        attach pin: the tenant's epoch bumps, its superseded cache
        namespaces purge from the shared plane, and other tenants'
        resident state is untouched.  The tenant becomes dirty — its
        next eviction (or :meth:`save_manifest`) spills the extended
        index.  Returns ``(dataset_id, new_epoch)``.
        """
        dataset_id = self._resolve(dataset_id)
        with self.attach(dataset_id) as service:
            service.refresh(new_points, batch_size=batch_size)
            epoch = service._epoch
            with self._lock:
                tenant = self._tenant(dataset_id)
                tenant.dirty = True
        return dataset_id, epoch

    def resolve(self, dataset_id: str | None) -> str:
        """Resolve ``None`` to the sole tenant and validate existence.

        Raises
        ------
        UnknownDatasetError
            If *dataset_id* names a tenant this registry does not serve.
        ValidationError
            If *dataset_id* is ``None`` and the registry serves more
            than one tenant (requests must name one).
        """
        dataset_id = self._resolve(dataset_id)
        with self._lock:
            self._tenant(dataset_id)
        return dataset_id

    def peek_service(self, dataset_id: str | None) -> DiversityService | None:
        """The tenant's resident service, or ``None`` — never faults in.

        The daemon's plan-aware micro-batch grouping uses this: a
        dispatch-group key must not trigger a cold tenant's index load
        on the event loop, so cold (or unknown) tenants simply fall back
        to dataset-only grouping.
        """
        try:
            dataset_id = self._resolve(dataset_id)
        except ValidationError:
            return None
        with self._lock:
            tenant = self._tenants.get(dataset_id)
            return None if tenant is None else tenant.service

    def set_quota(self, dataset_id: str | None, quota: TenantQuota) -> None:
        """Replace one tenant's admission-control quota.

        Takes effect in the manifest on the next :meth:`save_manifest`;
        a running daemon picks new quotas up on restart (``repro
        registry tune`` is the offline half of the adaptive-QoS loop).
        """
        dataset_id = self._resolve(dataset_id)
        with self._lock:
            self._tenant(dataset_id).quota = quota

    def _resolve(self, dataset_id: str | None) -> str:
        """Default a missing dataset to the sole tenant, else demand one."""
        if dataset_id is not None:
            return str(dataset_id)
        with self._lock:
            if len(self._tenants) == 1:
                return next(iter(self._tenants))
            raise ValidationError(
                f"registry serves {len(self._tenants)} tenants; requests "
                "must name a dataset")

    # -- tiering -----------------------------------------------------------------
    def _tenant(self, dataset_id: str) -> _Tenant:
        # Caller holds self._lock.
        tenant = self._tenants.get(str(dataset_id))
        if tenant is None:
            raise UnknownDatasetError(str(dataset_id), self._tenants)
        return tenant

    def _touch(self, dataset_id: str) -> None:
        # Caller holds self._lock.
        self._recency.remove(dataset_id)
        self._recency.append(dataset_id)

    def _make_service(self, dataset_id: str,
                      index: CoresetIndex) -> DiversityService:
        """A tenant service wired into the shared plane and fleet."""
        return DiversityService(
            index, dataset_id=dataset_id, cache_size=self._cache_size,
            cache_stripes=self._cache_stripes,
            executor=self.default_executor,
            executor_workers=self.executor_workers,
            plan=self.plan_mode, planner=self._planner,
            matrices=self._matrices, executor_pool=self._pool)

    def _fault_in(self, tenant: _Tenant) -> None:
        # Caller holds tenant.lock; the tenant is pinned.
        index = load_index(tenant.path, dtype=tenant.dtype)
        service = tenant.service = self._make_service(tenant.dataset_id,
                                                      index)
        # Replay the epoch the tenant had reached before eviction so a
        # faulted-in tenant's results carry monotonic epochs (refreshes
        # since the spill are already baked into the saved index).
        service._epoch = tenant.epoch
        with self._lock:
            tenant.faults += 1

    def _maybe_evict(self) -> None:
        """Evict LRU unpinned tenants until the hot tier fits."""
        if self.max_resident is None:
            return
        while True:
            with self._lock:
                resident = [dataset_id for dataset_id in self._recency
                            if self._tenants[dataset_id].service is not None]
                if len(resident) <= self.max_resident:
                    return
                victim = next(
                    (self._tenants[dataset_id] for dataset_id in resident
                     if self._tenants[dataset_id].pins == 0), None)
                if victim is None:
                    return  # everything over the limit is pinned
                victim.pins += 1  # guard pin: no concurrent evict/detach
            try:
                with victim.lock:
                    with self._lock:
                        busy = victim.pins > 1 or victim.service is None
                    if not busy:
                        self._evict(victim)
            finally:
                with self._lock:
                    victim.pins -= 1

    def _evict(self, tenant: _Tenant) -> None:
        # Caller holds tenant.lock (and the guard pin).  Spill if the
        # on-disk copy is stale, fold the live counters into the tenant,
        # then drop the service — close() purges this dataset's matrices
        # and shared segments from the registry-wide caches.
        service = tenant.service
        if tenant.dirty:
            tenant.path.parent.mkdir(parents=True, exist_ok=True)
            service.save(tenant.path)
            tenant.dirty = False
        tenant.hits += service.cache.stats.hits
        tenant.epoch = service._epoch
        tenant.dtype = service.index.dtype
        tenant.service = None
        service.close()
        with self._lock:
            tenant.evictions += 1

    def _spill_path(self, dataset_id: str) -> Path:
        # Caller holds self._lock.  Lazily create the spill directory.
        if self._spill_dir is None:
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-registry-"))
            self._owns_spill_dir = True
        return self._spill_dir / dataset_id

    # -- persistence -------------------------------------------------------------
    def save_manifest(self, directory: str | Path | None = None) -> Path:
        """Write every tenant's index + ``registry.json`` to *directory*.

        Dirty (or never-spilled) resident tenants are persisted first;
        tenants whose files live elsewhere are copied in, so the
        directory is a complete, relocatable registry that
        :meth:`from_directory` (or ``repro serve --registry``) can load.
        Returns the manifest path.
        """
        with self._lock:
            if directory is None and self._spill_dir is None:
                raise ValidationError(
                    "save_manifest() needs a directory (the registry has "
                    "no spill_dir)")
            directory = Path(directory if directory is not None
                             else self._spill_dir)
            tenants = list(self._tenants.values())
        directory.mkdir(parents=True, exist_ok=True)
        entries = []
        for tenant in sorted(tenants, key=lambda t: t.dataset_id):
            with tenant.lock:
                target = directory / tenant.dataset_id
                if tenant.service is not None and (
                        tenant.dirty or not _index_files_exist(tenant.path)):
                    tenant.service.save(target)
                    tenant.dirty = False
                elif tenant.path != target:
                    _copy_index_files(tenant.path, target)
                tenant.path = target
            entry = {"dataset_id": tenant.dataset_id,
                     "index": tenant.dataset_id}
            if tenant.dtype is not None:
                entry["dtype"] = tenant.dtype
            qos = tenant.quota.to_manifest()
            if qos:
                entry["qos"] = qos
            entries.append(entry)
        manifest_path = directory / MANIFEST_NAME
        payload = {"format_version": MANIFEST_FORMAT_VERSION,
                   "tenants": entries}
        tmp = manifest_path.with_name(manifest_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, manifest_path)
        return manifest_path

    # -- observability / shutdown ------------------------------------------------
    def stats(self) -> dict:
        """The registry's observability snapshot (stats schema v1).

        Shares the service stats vocabulary — ``schema_version``,
        ``matrices`` (the shared local cache + the pooled process
        backend's shared block), ``executors`` — and adds the
        ``tenants`` section: ``registered`` / ``resident`` /
        ``max_resident`` totals, lifetime ``faults`` / ``evictions``,
        and a ``per_tenant`` map of ``resident`` / ``hits`` / ``faults``
        / ``evictions`` / ``resident_bytes`` / ``epoch`` / ``dtype``,
        plus the tenant's admission ``quota`` knobs (weight, max_queue,
        rate_limit_qps — the manifest-v2 ``"qos"`` block).
        ``resident_bytes`` counts the tenant's in-memory core-set rows
        (zero while cold); the shared matrix bytes are global by design
        and reported once under ``matrices``.  Served verbatim by the
        daemon's ``GET /stats`` and, tenants section only, by
        ``GET /tenants``.
        """
        with self._lock:
            tenants = {dataset_id: tenant for dataset_id, tenant
                       in sorted(self._tenants.items())}
            per_tenant = {}
            resident = 0
            faults = 0
            evictions = 0
            for dataset_id, tenant in tenants.items():
                service = tenant.service
                is_resident = service is not None
                resident += is_resident
                faults += tenant.faults
                evictions += tenant.evictions
                hits = tenant.hits
                epoch = tenant.epoch
                dtype = tenant.dtype
                resident_bytes = 0
                if is_resident:
                    hits += service.cache.stats.hits
                    epoch = service._epoch
                    index = service.index
                    if index is not None:
                        dtype = index.dtype
                        resident_bytes = sum(
                            rung.coreset.points.nbytes
                            for rung in index.all_rungs())
                per_tenant[dataset_id] = {
                    "resident": bool(is_resident),
                    "hits": hits,
                    "faults": tenant.faults,
                    "evictions": tenant.evictions,
                    "resident_bytes": resident_bytes,
                    "epoch": epoch,
                    "dtype": dtype,
                    "quota": {
                        "weight": tenant.quota.weight,
                        "max_queue": tenant.quota.max_queue,
                        "rate_limit_qps": tenant.quota.rate_limit_qps,
                    },
                }
            registered = len(tenants)
        return {
            "schema_version": SCHEMA_VERSION,
            "tenants": {
                "registered": registered,
                "resident": resident,
                "max_resident": self.max_resident,
                "faults": faults,
                "evictions": evictions,
                "per_tenant": per_tenant,
            },
            "matrices": {
                "local": self._matrices.describe(),
                "shared": self._pool.stats(),
            },
            "executors": {
                "default": self.default_executor,
                "workers": self.executor_workers,
                "active": self._pool.active(),
            },
        }

    def segment_names(self) -> list[str]:
        """Every shared-memory segment the registry currently publishes."""
        return self._pool.segment_names()

    def close(self) -> None:
        """Shut down every tenant, the fleet and the plane (idempotent).

        Resident services close (purging their namespaces), the pooled
        backends shut down, and a registry-owned temporary spill
        directory is removed.  After this returns, zero shared-memory
        segments published through this registry remain.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            tenants = list(self._tenants.values())
            self._tenants.clear()
            self._recency.clear()
        for tenant in tenants:
            with tenant.lock:
                if tenant.service is not None:
                    tenant.service.close()
                    tenant.service = None
        self._pool.close()
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)

    def __enter__(self) -> "IndexRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _index_files_exist(base: Path) -> bool:
    """True when both persisted index files of *base* are on disk."""
    return (base.with_name(base.name + ".npz").exists()
            and base.with_name(base.name + ".json").exists())


def _copy_index_files(source: Path, target: Path) -> None:
    """Copy a persisted index's ``.npz`` + ``.json`` pair to a new base."""
    for suffix in (".npz", ".json"):
        shutil.copy2(source.with_name(source.name + suffix),
                     target.with_name(target.name + suffix))
