"""Multi-query workloads and the service throughput/latency harnesses.

A randomized mix of ``(objective, k)`` requests is served several ways —

* **rebuild-per-query** — the pre-service baseline: every query pays a
  fresh core-set build over the full dataset before solving;
* **warm** — the service path: queries route into a prebuilt index and
  solve on shared, cached distance matrices;
* **cached** — the same workload replayed, served from the LRU;
* **concurrent** — the same warm workload pushed through
  :meth:`~repro.service.service.DiversityService.query_concurrent` at
  several worker counts (:func:`measure_concurrent_throughput`), with the
  build-calls and matrices-computed-once invariants asserted under
  contention.

``repro serve-bench`` and ``benchmarks/bench_service_throughput.py`` both
run these harnesses; the benchmark additionally gates the warm-path
speedup (>= 5x over rebuild-per-query) and, on multi-core runners, the
4-worker concurrent speedup (>= 2x over serial ``query_batch``) in CI.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.diversity.objectives import list_objectives
from repro.diversity.sequential.registry import solve_sequential
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.points import PointSet
from repro.service.index import build_coreset_index
from repro.service.service import DiversityService, Query
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def make_workload(k_max: int, num_queries: int,
                  objectives: list[str] | None = None,
                  epsilon: float = 1.0,
                  seed: RngLike = None) -> list[Query]:
    """A reproducible mix of distinct ``(objective, k)`` queries.

    Queries are drawn without replacement from the
    ``objectives x [2, k_max]`` grid while possible (so a "warm" pass is
    not accidentally a cache-hit pass), then with replacement once the
    grid is exhausted.
    """
    check_positive_int(k_max, "k_max")
    check_positive_int(num_queries, "num_queries")
    rng = ensure_rng(seed)
    objectives = list(objectives) if objectives else list_objectives()
    k_low = min(2, k_max)
    grid = [(name, k) for name in objectives
            for k in range(k_low, k_max + 1)]
    order = rng.permutation(len(grid))
    workload: list[Query] = []
    while len(workload) < num_queries:
        take = min(num_queries - len(workload), len(grid))
        workload.extend(
            Query(grid[i][0], grid[i][1], epsilon)
            for i in order[:take])
        order = rng.permutation(len(grid))
    return workload


def latency_summary(seconds: list[float]) -> dict:
    """Summarize observed latencies (in seconds) as milliseconds.

    Returns ``{"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
    "max_ms"}`` — the percentile block every latency-reporting surface
    (``serve-bench``, the serving daemon's stats, the latency benchmark)
    emits.  Percentiles are linearly interpolated
    (:func:`numpy.percentile` defaults); an empty sample yields ``count
    == 0`` with ``None`` everywhere else, so callers can emit the block
    unconditionally.
    """
    samples = np.asarray(list(seconds), dtype=np.float64) * 1e3
    if samples.size == 0:
        return {"count": 0, "mean_ms": None, "p50_ms": None,
                "p95_ms": None, "p99_ms": None, "max_ms": None}
    return {
        "count": int(samples.size),
        "mean_ms": float(samples.mean()),
        "p50_ms": float(np.percentile(samples, 50)),
        "p95_ms": float(np.percentile(samples, 95)),
        "p99_ms": float(np.percentile(samples, 99)),
        "max_ms": float(samples.max()),
    }


@dataclass
class ThroughputReport:
    """Queries/sec for the three serving modes, plus provenance.

    ``warm_latency`` and ``cached_latency`` are per-query wall-latency
    percentile blocks (:func:`latency_summary`) for the two service
    passes — the queries are answered one at a time so every query
    contributes a client-observed latency sample.
    """

    num_queries: int
    rebuild_queries: int
    index_build_seconds: float
    rebuild_qps: float
    warm_qps: float
    cached_qps: float
    build_calls_during_queries: int
    cache: dict
    warm_latency: dict = field(default_factory=dict)
    cached_latency: dict = field(default_factory=dict)

    @property
    def warm_speedup(self) -> float:
        """Warm-path queries/sec over the rebuild-per-query baseline."""
        return self.warm_qps / self.rebuild_qps

    @property
    def cached_speedup(self) -> float:
        """LRU-replay queries/sec over the rebuild-per-query baseline."""
        return self.cached_qps / self.rebuild_qps

    def as_dict(self) -> dict:
        """JSON-ready form, with the derived speedups materialized."""
        payload = asdict(self)
        payload["warm_speedup"] = self.warm_speedup
        payload["cached_speedup"] = self.cached_speedup
        return payload


def measure_service_throughput(
    points: PointSet,
    k_max: int,
    num_queries: int = 24,
    rebuild_queries: int = 3,
    objectives: list[str] | None = None,
    seed: int | None = 0,
    index=None,
    matrix_budget_mb: int | None = None,
    **build_options,
) -> ThroughputReport:
    """Measure rebuild-per-query vs warm vs cached queries/sec.

    The rebuild baseline runs the first *rebuild_queries* workload entries
    the pre-service way (fresh 2-round MapReduce job per query over the
    full dataset); the warm pass answers the whole workload through a
    prebuilt :class:`DiversityService`; the cached pass replays it.
    *build_options* go to :func:`repro.service.index.build_coreset_index`
    (and the baseline builder inherits ``parallelism``/``executor``).
    Pass a prebuilt *index* to skip the index build (callers sharing one
    index across harnesses, e.g. the throughput benchmark); the reported
    ``index_build_seconds`` is then ~0.  *matrix_budget_mb* configures
    the measured service's matrix cache (see :class:`DiversityService`).
    """
    workload = make_workload(k_max, num_queries, objectives=objectives,
                             seed=seed)
    rebuild_queries = min(check_positive_int(rebuild_queries,
                                             "rebuild_queries"),
                          len(workload))
    multiplier = build_options.get("multiplier", 4)
    parallelism = build_options.get("parallelism", 4)
    executor = build_options.get("executor", "serial")

    # Baseline: every query pays its own core-set build (no amortization).
    started = time.perf_counter()
    for query in workload[:rebuild_queries]:
        with MRDiversityMaximizer(
                k=query.k, k_prime=multiplier * query.k,
                objective=query.objective, parallelism=parallelism,
                metric=points.metric, executor=executor,
                seed=seed) as builder:
            build = builder.build_coreset(points)
        solve_sequential(build.coreset, query.k, query.objective)
    rebuild_seconds = time.perf_counter() - started

    started = time.perf_counter()
    if index is None:
        index = build_coreset_index(points, k_max, seed=seed, **build_options)
    index_build_seconds = time.perf_counter() - started

    service = DiversityService(index, cache_size=max(128, len(workload)),
                               matrix_budget_mb=matrix_budget_mb)

    def _timed_pass(queries: list[Query]) -> tuple[list, float, list[float]]:
        """One query at a time, recording per-query wall latency."""
        results, latencies = [], []
        started = time.perf_counter()
        for query in queries:
            t0 = time.perf_counter()
            results.extend(service.query_batch([query]))
            latencies.append(time.perf_counter() - t0)
        return results, time.perf_counter() - started, latencies

    warm, warm_seconds, warm_latencies = _timed_pass(workload)
    build_calls_during_queries = service.build_calls

    cached, cached_seconds, cached_latencies = _timed_pass(workload)

    assert all(result.cached for result in cached), \
        "replayed workload must be served entirely from the LRU"
    assert len(warm) == len(workload)

    def _qps(count: int, seconds: float) -> float:
        return count / max(seconds, 1e-9)

    return ThroughputReport(
        num_queries=len(workload),
        rebuild_queries=rebuild_queries,
        index_build_seconds=index_build_seconds,
        rebuild_qps=_qps(rebuild_queries, rebuild_seconds),
        warm_qps=_qps(len(workload), warm_seconds),
        cached_qps=_qps(len(workload), cached_seconds),
        build_calls_during_queries=build_calls_during_queries,
        cache=service.cache.stats.as_dict(),
        warm_latency=latency_summary(warm_latencies),
        cached_latency=latency_summary(cached_latencies),
    )


@dataclass
class ConcurrencyReport:
    """Serial vs concurrent queries/sec over one warm workload.

    ``qps_by_workers`` maps each measured worker count to its
    ``query_concurrent`` throughput on the measured *executor* backend
    (``"thread"`` or ``"process"``); ``serial_qps`` is the
    ``query_batch`` baseline on an identically cold service.  The
    invariants checked during measurement ride along:
    ``build_calls_during_queries`` (must be 0 — queries never rebuild)
    and ``matrix_computes`` vs ``distinct_rungs`` (each rung's matrix is
    computed exactly once under contention when unbudgeted — across
    processes, in process mode).  ``serial_latency`` is the per-query
    wall-latency percentile block of the serial baseline;
    ``solve_latency_by_workers`` holds per-worker-count percentile
    blocks over ``QueryResult.solve_seconds`` (solver time only —
    client-observed latency is not well-defined inside one
    ``query_concurrent`` call).
    """

    num_queries: int
    serial_qps: float
    qps_by_workers: dict[int, float]
    build_calls_during_queries: int
    distinct_rungs: int
    matrix_computes: int
    matrices: dict
    executor: str = "thread"
    serial_latency: dict = field(default_factory=dict)
    solve_latency_by_workers: dict[int, dict] = field(default_factory=dict)

    def speedup(self, workers: int) -> float:
        """Concurrent throughput at *workers* over the serial baseline."""
        return self.qps_by_workers[workers] / self.serial_qps

    def as_dict(self) -> dict:
        """JSON-ready form (the ``concurrency`` block of the benchmark)."""
        return {
            "num_queries": self.num_queries,
            "executor": self.executor,
            "serial_qps": self.serial_qps,
            "serial_latency": self.serial_latency,
            "workers": {
                str(workers): {
                    "qps": qps,
                    "speedup": self.speedup(workers),
                    "solve_latency": self.solve_latency_by_workers.get(
                        workers, {}),
                }
                for workers, qps in self.qps_by_workers.items()},
            "build_calls_during_queries": self.build_calls_during_queries,
            "distinct_rungs": self.distinct_rungs,
            "matrix_computes": self.matrix_computes,
            "matrices": self.matrices,
        }


def measure_concurrent_throughput(
    points: PointSet,
    k_max: int,
    num_queries: int = 32,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    objectives: list[str] | None = None,
    seed: int | None = 0,
    matrix_budget_mb: int | None = None,
    index=None,
    executor: str = "thread",
    **build_options,
) -> ConcurrencyReport:
    """Measure ``query_concurrent`` against serial ``query_batch``.

    One index is built (or taken from *index*), then the same workload is
    served by a fresh, matrix-cold :class:`DiversityService` per mode:
    once serially through :meth:`~DiversityService.query_batch`, and once
    per entry of *worker_counts* through
    :meth:`~DiversityService.query_concurrent` on the requested
    *executor* backend (``"thread"`` or ``"process"``).  Every concurrent
    run is checked against the serial answers (identical values and rungs
    — the determinism contract), every service must report zero build
    calls, and the widest run must have computed each touched rung's
    matrix exactly once (single-flight; only asserted when unbudgeted —
    for process runs that is the cross-process invariant over the shared
    segments).  Process pools are warmed before the timed region so
    measured queries/sec exclude worker spawn, and every measured
    service is closed afterwards (no leaked segments).

    Raises
    ------
    AssertionError
        If any of those invariants fails — this harness *is* the test.
    """
    workload = make_workload(k_max, num_queries, objectives=objectives,
                             seed=seed)
    if index is None:
        index = build_coreset_index(points, k_max, seed=seed, **build_options)
    cache_size = max(128, len(workload))

    def _fresh_service() -> DiversityService:
        return DiversityService(index, cache_size=cache_size,
                                matrix_budget_mb=matrix_budget_mb)

    serial_service = _fresh_service()
    serial_results: list = []
    serial_latencies: list[float] = []
    started = time.perf_counter()
    for query in workload:
        t0 = time.perf_counter()
        serial_results.extend(serial_service.query_batch([query]))
        serial_latencies.append(time.perf_counter() - t0)
    serial_seconds = time.perf_counter() - started
    expected = [(result.value, result.rung) for result in serial_results]

    qps_by_workers: dict[int, float] = {}
    solve_latency_by_workers: dict[int, dict] = {}
    build_calls = serial_service.build_calls
    widest_service = serial_service
    try:
        for workers in sorted(worker_counts):
            service = _fresh_service()
            service.warm_executor(executor, max_workers=workers)
            started = time.perf_counter()
            results = service.query_concurrent(workload, max_workers=workers,
                                               executor=executor)
            seconds = time.perf_counter() - started
            # Hand the just-measured service to the cleanup slot *before*
            # asserting, so a failed invariant cannot leak its worker
            # pool or shared segments.
            if widest_service is not serial_service:
                widest_service.close()
            widest_service = service
            assert [(result.value, result.rung) for result in results] == expected, \
                "concurrent answers must be identical to the serial baseline"
            stats = service.cache.stats
            assert stats.hits + stats.misses == len(workload), \
                "every query must count exactly one cache hit or miss"
            build_calls = max(build_calls, service.build_calls)
            qps_by_workers[workers] = len(workload) / max(seconds, 1e-9)
            solve_latency_by_workers[workers] = latency_summary(
                [result.solve_seconds for result in results])

        assert build_calls == 0, "queries must never rebuild a core-set"
        distinct_rungs = len({index.route(q.objective, q.k, q.epsilon).key
                              for q in workload})
        stats_block = "shared" if executor == "process" else "local"
        matrices = widest_service.stats()["matrices"][stats_block]
        if matrices["budget_bytes"] is None:
            assert matrices["computes"] == distinct_rungs, (
                f"expected exactly one matrix compute per rung "
                f"({distinct_rungs}), saw {matrices['computes']}")
    finally:
        if widest_service is not serial_service:
            widest_service.close()
    return ConcurrencyReport(
        num_queries=len(workload),
        serial_qps=len(workload) / max(serial_seconds, 1e-9),
        qps_by_workers=qps_by_workers,
        build_calls_during_queries=build_calls,
        distinct_rungs=distinct_rungs,
        matrix_computes=matrices["computes"],
        matrices=matrices,
        executor=executor,
        serial_latency=latency_summary(serial_latencies),
        solve_latency_by_workers=solve_latency_by_workers,
    )


@dataclass
class ServeLatencyReport:
    """Open-loop load-test results against a running serving daemon.

    ``latency`` is the client-observed percentile block
    (:func:`latency_summary`): each sample runs from the request's
    *scheduled* send time to its response — so queueing delay from an
    overloaded server shows up in the tail instead of silently slowing
    the arrival process (the open-loop property).  ``rejected`` counts
    ``overloaded``/``shutting_down`` responses (explicit backpressure),
    ``errors`` everything else that was not an answer, ``mismatches``
    answers that differed from the in-process expectation (must be 0 —
    the harness *is* the bit-identity test).  ``server`` is the daemon's
    final ``stats()["server"]`` block; its ``batched_requests`` counter
    is the proof that micro-batching actually coalesced requests.
    """

    rate_qps: float
    requests: int
    queries_per_request: int
    answered: int
    rejected: int
    errors: int
    mismatches: int
    duration_seconds: float
    latency: dict
    server: dict

    def as_dict(self) -> dict:
        """JSON-ready form (the payload of ``BENCH_serve_latency.json``)."""
        return asdict(self)


async def open_loop_load(host: str, port: int, requests: list[list[Query]],
                         rate_qps: float,
                         expected: dict | None = None) -> dict:
    """Drive an open-loop request schedule at a serving daemon.

    Sends one NDJSON ``query`` request per entry of *requests* on a
    single pipelined connection, at fixed ``1 / rate_qps`` intervals
    anchored to the wall clock — send times never wait for responses, so
    a slow server accumulates queueing delay rather than throttling the
    generator.  A concurrent reader matches responses to requests by
    ``id`` and samples scheduled-send-to-response latency.  When
    *expected* maps request index to the in-process ``(value, indices)``
    list, every answer is checked against it.

    Returns ``{"answered", "rejected", "errors", "mismatches",
    "latencies", "duration_seconds"}`` — raw material for
    :class:`ServeLatencyReport`.
    """
    import asyncio

    from repro.service import protocol

    interval = 1.0 / rate_qps
    reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    sent_at: dict[int, float] = {}
    counts = {"answered": 0, "rejected": 0, "errors": 0, "mismatches": 0}
    latencies: list[float] = []

    async def produce() -> None:
        """Write each request at its scheduled (open-loop) instant."""
        start = loop.time()
        for index, queries in enumerate(requests):
            scheduled = start + index * interval
            delay = scheduled - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            sent_at[index] = scheduled
            writer.write(protocol.encode_request(
                "query", index, queries=queries).encode())
            await writer.drain()

    async def consume() -> None:
        """Match responses to requests by id; sample and classify."""
        for _ in range(len(requests)):
            line = await reader.readline()
            if not line:
                counts["errors"] += len(requests) - sum(
                    (counts["answered"], counts["rejected"],
                     counts["errors"]))
                return
            response = protocol.decode_response(line)
            index = response.get("id")
            if response.get("ok"):
                counts["answered"] += 1
                latencies.append(loop.time() - sent_at[index])
                if expected is not None and index in expected:
                    got = [(result.value, tuple(result.indices))
                           for result in protocol.results_of(response)]
                    if got != expected[index]:
                        counts["mismatches"] += 1
            elif response["error"]["code"] in ("overloaded",
                                               "shutting_down"):
                counts["rejected"] += 1
            else:
                counts["errors"] += 1

    started = loop.time()
    producer = asyncio.ensure_future(produce())
    try:
        await consume()
    finally:
        producer.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):  # pragma: no cover
            pass
    return {**counts, "latencies": latencies,
            "duration_seconds": loop.time() - started}


@dataclass
class MixedWorkloadReport:
    """Query latency under concurrent ingest (the HTAP gate).

    Two open-loop passes over the same request schedule: a *query-only*
    baseline, then a *mixed* pass where a background refresher ingests
    new points at ``refresh_hz`` through
    :meth:`~repro.service.service.DiversityService.refresh` while
    queries keep arriving.  Latency samples run from each request's
    scheduled send instant to its completed answer, so refresh-induced
    stalls surface in the tail instead of slowing the arrival process.
    ``p99_factor`` (mixed p99 over query-only p99) is the number the
    mixed-workload benchmark gates; ``epochs_mixed`` counts requests
    whose answers spanned more than one epoch (must be 0 — the epoch'd
    plane promises every batch a single consistent index), and
    ``verify`` is the mixed service's float64 shadow-check block
    (mismatches must be 0 when enabled on a float32 index).
    """

    dtype: str
    rate_qps: float
    requests: int
    queries_per_request: int
    refresh_hz: float
    refreshes_completed: int
    epochs_mixed: int
    query_only_latency: dict
    mixed_latency: dict
    verify: dict
    query_only_seconds: float
    mixed_seconds: float

    @property
    def p99_factor(self) -> float:
        """Mixed-pass p99 latency over the query-only baseline's."""
        baseline = self.query_only_latency.get("p99_ms") or 0.0
        mixed = self.mixed_latency.get("p99_ms") or 0.0
        return mixed / max(baseline, 1e-9)

    def as_dict(self) -> dict:
        """JSON-ready form (one dtype block of the mixed benchmark)."""
        payload = asdict(self)
        payload["p99_factor"] = self.p99_factor
        return payload


def _open_loop_pass(service: DiversityService, requests: list[list[Query]],
                    rate_qps: float) -> tuple[list[float], int, float]:
    """Drive *requests* at the service open-loop from a thread pool.

    Returns ``(latencies, epochs_mixed, duration_seconds)``.  Send
    instants are anchored to the wall clock (``start + i / rate_qps``)
    and never wait for responses; each latency sample is
    scheduled-send-to-answer, and a request whose answers span multiple
    epochs counts toward ``epochs_mixed``.
    """
    from concurrent.futures import ThreadPoolExecutor

    interval = 1.0 / rate_qps
    latencies: list[float | None] = [None] * len(requests)
    mixed_flags = [False] * len(requests)

    def _serve(i: int, queries: list[Query], scheduled: float) -> None:
        results = service.query_batch(queries)
        latencies[i] = time.perf_counter() - scheduled
        mixed_flags[i] = len({result.epoch for result in results}) > 1

    with ThreadPoolExecutor(max_workers=8) as pool:
        start = time.perf_counter()
        futures = []
        for i, queries in enumerate(requests):
            scheduled = start + i * interval
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(_serve, i, queries, scheduled))
        for future in futures:
            future.result()
        duration = time.perf_counter() - start
    return [s for s in latencies if s is not None], sum(mixed_flags), duration


def measure_mixed_workload(
    index,
    refresh_source,
    *,
    rate_qps: float = 50.0,
    num_requests: int = 64,
    queries_per_request: int = 2,
    refresh_hz: float = 2.0,
    matrix_budget_mb: int | None = None,
    verify_dtype: bool | None = None,
    seed: int | None = 0,
) -> MixedWorkloadReport:
    """Query p99 under concurrent ingest vs a query-only baseline.

    *refresh_source* is a callable ``(ingest_round) -> PointSet``
    supplying each refresh's new points (deterministic per round, so
    both dtype runs of the benchmark ingest identical data).  The
    query-only pass and the mixed pass each get a fresh
    :class:`DiversityService` over *index* so neither inherits the
    other's caches; the mixed pass runs a refresher thread calling
    :meth:`~DiversityService.refresh` every ``1 / refresh_hz`` seconds
    until the open loop drains.  *verify_dtype* forwards to the mixed
    service (enable it on float32 indexes to shadow-check sampled
    solves against float64 while ingest churns epochs).
    """
    check_positive_int(num_requests, "num_requests")
    check_positive_int(queries_per_request, "queries_per_request")
    k_max = int(index.ladder.get("k_max", 4))
    workload = make_workload(k_max, num_requests * queries_per_request,
                             seed=seed)
    requests = [workload[i * queries_per_request:
                         (i + 1) * queries_per_request]
                for i in range(num_requests)]

    with DiversityService(index, cache_size=max(128, len(workload)),
                          matrix_budget_mb=matrix_budget_mb,
                          executor="thread") as baseline:
        only_latencies, only_mixed, only_seconds = _open_loop_pass(
            baseline, requests, rate_qps)

    import threading as _threading

    mixed_service = DiversityService(
        index, cache_size=max(128, len(workload)),
        matrix_budget_mb=matrix_budget_mb, executor="thread",
        verify_dtype=verify_dtype)
    stop = _threading.Event()
    refreshed = [0]

    def _refresher() -> None:
        while not stop.wait(1.0 / refresh_hz):
            mixed_service.refresh(refresh_source(refreshed[0]))
            refreshed[0] += 1

    refresher = _threading.Thread(target=_refresher, daemon=True)
    try:
        refresher.start()
        mixed_latencies, mixed_count, mixed_seconds = _open_loop_pass(
            mixed_service, requests, rate_qps)
    finally:
        stop.set()
        refresher.join()
    verify = mixed_service.stats()["verify"]
    mixed_service.close()

    return MixedWorkloadReport(
        dtype=index.dtype,
        rate_qps=rate_qps,
        requests=num_requests,
        queries_per_request=queries_per_request,
        refresh_hz=refresh_hz,
        refreshes_completed=refreshed[0],
        epochs_mixed=only_mixed + mixed_count,
        query_only_latency=latency_summary(only_latencies),
        mixed_latency=latency_summary(mixed_latencies),
        verify=verify,
        query_only_seconds=only_seconds,
        mixed_seconds=mixed_seconds,
    )


def measure_serve_latency(index, *, num_requests: int = 64,
                          queries_per_request: int = 1,
                          rate_qps: float = 100.0,
                          batch_window_ms: float = 20.0,
                          max_queue: int = 256,
                          seed: int | None = 0,
                          verify: bool = True) -> ServeLatencyReport:
    """End-to-end serve latency: daemon + open-loop client, one call.

    Starts a :class:`~repro.service.server.DiversityServer` over *index*
    on an ephemeral localhost port, drives it with
    :func:`open_loop_load` at *rate_qps*, drains the server, and folds
    the client samples and the daemon's final ``server`` stats block
    into a :class:`ServeLatencyReport`.  With *verify* (the default)
    every answer is compared against an in-process
    ``DiversityService.query_batch`` on the same index — daemon answers
    must be bit-identical.  ``repro serve-bench --serve`` and
    ``benchmarks/bench_serve_latency.py`` are thin wrappers over this.
    """
    import asyncio

    # Imported lazily: server.py imports latency_summary from this
    # module, so a top-level import here would be circular.
    from repro.service.server import DiversityServer, ServerConfig

    check_positive_int(num_requests, "num_requests")
    check_positive_int(queries_per_request, "queries_per_request")
    k_max = int(index.ladder.get("k_max", 4))
    workload = make_workload(k_max, num_requests * queries_per_request,
                             seed=seed)
    requests = [workload[i * queries_per_request:
                         (i + 1) * queries_per_request]
                for i in range(num_requests)]
    expected = None
    if verify:
        with DiversityService(index,
                              cache_size=max(128, len(workload))) as oracle:
            answers = oracle.query_batch(workload)
        expected = {
            i: [(result.value, tuple(result.indices))
                for result in answers[i * queries_per_request:
                                      (i + 1) * queries_per_request]]
            for i in range(num_requests)}

    async def run() -> tuple[dict, dict]:
        """Start the daemon, run the open loop, drain, snapshot stats."""
        service = DiversityService(index, cache_size=max(128, len(workload)))
        server = DiversityServer(service, ServerConfig(
            batch_window_ms=batch_window_ms, max_queue=max_queue))
        host, port = await server.start()
        try:
            outcome = await open_loop_load(host, port, requests, rate_qps,
                                           expected)
        finally:
            await server.shutdown()
        return outcome, server.stats()["server"]

    outcome, server_stats = asyncio.run(run())
    return ServeLatencyReport(
        rate_qps=rate_qps,
        requests=num_requests,
        queries_per_request=queries_per_request,
        answered=outcome["answered"],
        rejected=outcome["rejected"],
        errors=outcome["errors"],
        mismatches=outcome["mismatches"],
        duration_seconds=outcome["duration_seconds"],
        latency=latency_summary(outcome["latencies"]),
        server=server_stats,
    )
