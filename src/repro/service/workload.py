"""Multi-query workloads and the service throughput harnesses.

A randomized mix of ``(objective, k)`` requests is served several ways —

* **rebuild-per-query** — the pre-service baseline: every query pays a
  fresh core-set build over the full dataset before solving;
* **warm** — the service path: queries route into a prebuilt index and
  solve on shared, cached distance matrices;
* **cached** — the same workload replayed, served from the LRU;
* **concurrent** — the same warm workload pushed through
  :meth:`~repro.service.service.DiversityService.query_concurrent` at
  several worker counts (:func:`measure_concurrent_throughput`), with the
  build-calls and matrices-computed-once invariants asserted under
  contention.

``repro serve-bench`` and ``benchmarks/bench_service_throughput.py`` both
run these harnesses; the benchmark additionally gates the warm-path
speedup (>= 5x over rebuild-per-query) and, on multi-core runners, the
4-worker concurrent speedup (>= 2x over serial ``query_batch``) in CI.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.diversity.objectives import list_objectives
from repro.diversity.sequential.registry import solve_sequential
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.points import PointSet
from repro.service.index import build_coreset_index
from repro.service.service import DiversityService, Query
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def make_workload(k_max: int, num_queries: int,
                  objectives: list[str] | None = None,
                  epsilon: float = 1.0,
                  seed: RngLike = None) -> list[Query]:
    """A reproducible mix of distinct ``(objective, k)`` queries.

    Queries are drawn without replacement from the
    ``objectives x [2, k_max]`` grid while possible (so a "warm" pass is
    not accidentally a cache-hit pass), then with replacement once the
    grid is exhausted.
    """
    check_positive_int(k_max, "k_max")
    check_positive_int(num_queries, "num_queries")
    rng = ensure_rng(seed)
    objectives = list(objectives) if objectives else list_objectives()
    k_low = min(2, k_max)
    grid = [(name, k) for name in objectives
            for k in range(k_low, k_max + 1)]
    order = rng.permutation(len(grid))
    workload: list[Query] = []
    while len(workload) < num_queries:
        take = min(num_queries - len(workload), len(grid))
        workload.extend(
            Query(grid[i][0], grid[i][1], epsilon)
            for i in order[:take])
        order = rng.permutation(len(grid))
    return workload


@dataclass
class ThroughputReport:
    """Queries/sec for the three serving modes, plus provenance."""

    num_queries: int
    rebuild_queries: int
    index_build_seconds: float
    rebuild_qps: float
    warm_qps: float
    cached_qps: float
    build_calls_during_queries: int
    cache: dict

    @property
    def warm_speedup(self) -> float:
        """Warm-path queries/sec over the rebuild-per-query baseline."""
        return self.warm_qps / self.rebuild_qps

    @property
    def cached_speedup(self) -> float:
        """LRU-replay queries/sec over the rebuild-per-query baseline."""
        return self.cached_qps / self.rebuild_qps

    def as_dict(self) -> dict:
        """JSON-ready form, with the derived speedups materialized."""
        payload = asdict(self)
        payload["warm_speedup"] = self.warm_speedup
        payload["cached_speedup"] = self.cached_speedup
        return payload


def measure_service_throughput(
    points: PointSet,
    k_max: int,
    num_queries: int = 24,
    rebuild_queries: int = 3,
    objectives: list[str] | None = None,
    seed: int | None = 0,
    index=None,
    matrix_budget_mb: int | None = None,
    **build_options,
) -> ThroughputReport:
    """Measure rebuild-per-query vs warm vs cached queries/sec.

    The rebuild baseline runs the first *rebuild_queries* workload entries
    the pre-service way (fresh 2-round MapReduce job per query over the
    full dataset); the warm pass answers the whole workload through a
    prebuilt :class:`DiversityService`; the cached pass replays it.
    *build_options* go to :func:`repro.service.index.build_coreset_index`
    (and the baseline builder inherits ``parallelism``/``executor``).
    Pass a prebuilt *index* to skip the index build (callers sharing one
    index across harnesses, e.g. the throughput benchmark); the reported
    ``index_build_seconds`` is then ~0.  *matrix_budget_mb* configures
    the measured service's matrix cache (see :class:`DiversityService`).
    """
    workload = make_workload(k_max, num_queries, objectives=objectives,
                             seed=seed)
    rebuild_queries = min(check_positive_int(rebuild_queries,
                                             "rebuild_queries"),
                          len(workload))
    multiplier = build_options.get("multiplier", 4)
    parallelism = build_options.get("parallelism", 4)
    executor = build_options.get("executor", "serial")

    # Baseline: every query pays its own core-set build (no amortization).
    started = time.perf_counter()
    for query in workload[:rebuild_queries]:
        with MRDiversityMaximizer(
                k=query.k, k_prime=multiplier * query.k,
                objective=query.objective, parallelism=parallelism,
                metric=points.metric, executor=executor,
                seed=seed) as builder:
            build = builder.build_coreset(points)
        solve_sequential(build.coreset, query.k, query.objective)
    rebuild_seconds = time.perf_counter() - started

    started = time.perf_counter()
    if index is None:
        index = build_coreset_index(points, k_max, seed=seed, **build_options)
    index_build_seconds = time.perf_counter() - started

    service = DiversityService(index, cache_size=max(128, len(workload)),
                               matrix_budget_mb=matrix_budget_mb)
    started = time.perf_counter()
    warm = service.query_batch(workload)
    warm_seconds = time.perf_counter() - started
    build_calls_during_queries = service.build_calls

    started = time.perf_counter()
    cached = service.query_batch(workload)
    cached_seconds = time.perf_counter() - started

    assert all(result.cached for result in cached), \
        "replayed workload must be served entirely from the LRU"
    assert len(warm) == len(workload)

    def _qps(count: int, seconds: float) -> float:
        return count / max(seconds, 1e-9)

    return ThroughputReport(
        num_queries=len(workload),
        rebuild_queries=rebuild_queries,
        index_build_seconds=index_build_seconds,
        rebuild_qps=_qps(rebuild_queries, rebuild_seconds),
        warm_qps=_qps(len(workload), warm_seconds),
        cached_qps=_qps(len(workload), cached_seconds),
        build_calls_during_queries=build_calls_during_queries,
        cache=service.cache.stats.as_dict(),
    )


@dataclass
class ConcurrencyReport:
    """Serial vs concurrent queries/sec over one warm workload.

    ``qps_by_workers`` maps each measured worker count to its
    ``query_concurrent`` throughput on the measured *executor* backend
    (``"thread"`` or ``"process"``); ``serial_qps`` is the
    ``query_batch`` baseline on an identically cold service.  The
    invariants checked during measurement ride along:
    ``build_calls_during_queries`` (must be 0 — queries never rebuild)
    and ``matrix_computes`` vs ``distinct_rungs`` (each rung's matrix is
    computed exactly once under contention when unbudgeted — across
    processes, in process mode).
    """

    num_queries: int
    serial_qps: float
    qps_by_workers: dict[int, float]
    build_calls_during_queries: int
    distinct_rungs: int
    matrix_computes: int
    matrices: dict
    executor: str = "thread"

    def speedup(self, workers: int) -> float:
        """Concurrent throughput at *workers* over the serial baseline."""
        return self.qps_by_workers[workers] / self.serial_qps

    def as_dict(self) -> dict:
        """JSON-ready form (the ``concurrency`` block of the benchmark)."""
        return {
            "num_queries": self.num_queries,
            "executor": self.executor,
            "serial_qps": self.serial_qps,
            "workers": {str(workers): {"qps": qps,
                                       "speedup": self.speedup(workers)}
                        for workers, qps in self.qps_by_workers.items()},
            "build_calls_during_queries": self.build_calls_during_queries,
            "distinct_rungs": self.distinct_rungs,
            "matrix_computes": self.matrix_computes,
            "matrices": self.matrices,
        }


def measure_concurrent_throughput(
    points: PointSet,
    k_max: int,
    num_queries: int = 32,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    objectives: list[str] | None = None,
    seed: int | None = 0,
    matrix_budget_mb: int | None = None,
    index=None,
    executor: str = "thread",
    **build_options,
) -> ConcurrencyReport:
    """Measure ``query_concurrent`` against serial ``query_batch``.

    One index is built (or taken from *index*), then the same workload is
    served by a fresh, matrix-cold :class:`DiversityService` per mode:
    once serially through :meth:`~DiversityService.query_batch`, and once
    per entry of *worker_counts* through
    :meth:`~DiversityService.query_concurrent` on the requested
    *executor* backend (``"thread"`` or ``"process"``).  Every concurrent
    run is checked against the serial answers (identical values and rungs
    — the determinism contract), every service must report zero build
    calls, and the widest run must have computed each touched rung's
    matrix exactly once (single-flight; only asserted when unbudgeted —
    for process runs that is the cross-process invariant over the shared
    segments).  Process pools are warmed before the timed region so
    measured queries/sec exclude worker spawn, and every measured
    service is closed afterwards (no leaked segments).

    Raises
    ------
    AssertionError
        If any of those invariants fails — this harness *is* the test.
    """
    workload = make_workload(k_max, num_queries, objectives=objectives,
                             seed=seed)
    if index is None:
        index = build_coreset_index(points, k_max, seed=seed, **build_options)
    cache_size = max(128, len(workload))

    def _fresh_service() -> DiversityService:
        return DiversityService(index, cache_size=cache_size,
                                matrix_budget_mb=matrix_budget_mb)

    serial_service = _fresh_service()
    started = time.perf_counter()
    serial_results = serial_service.query_batch(workload)
    serial_seconds = time.perf_counter() - started
    expected = [(result.value, result.rung) for result in serial_results]

    qps_by_workers: dict[int, float] = {}
    build_calls = serial_service.build_calls
    widest_service = serial_service
    try:
        for workers in sorted(worker_counts):
            service = _fresh_service()
            service.warm_executor(executor, max_workers=workers)
            started = time.perf_counter()
            results = service.query_concurrent(workload, max_workers=workers,
                                               executor=executor)
            seconds = time.perf_counter() - started
            # Hand the just-measured service to the cleanup slot *before*
            # asserting, so a failed invariant cannot leak its worker
            # pool or shared segments.
            if widest_service is not serial_service:
                widest_service.close()
            widest_service = service
            assert [(result.value, result.rung) for result in results] == expected, \
                "concurrent answers must be identical to the serial baseline"
            stats = service.cache.stats
            assert stats.hits + stats.misses == len(workload), \
                "every query must count exactly one cache hit or miss"
            build_calls = max(build_calls, service.build_calls)
            qps_by_workers[workers] = len(workload) / max(seconds, 1e-9)

        assert build_calls == 0, "queries must never rebuild a core-set"
        distinct_rungs = len({index.route(q.objective, q.k, q.epsilon).key
                              for q in workload})
        stats_block = ("shared_matrices" if executor == "process"
                       else "matrices")
        matrices = widest_service.stats()[stats_block]
        if matrices["budget_bytes"] is None:
            assert matrices["computes"] == distinct_rungs, (
                f"expected exactly one matrix compute per rung "
                f"({distinct_rungs}), saw {matrices['computes']}")
    finally:
        if widest_service is not serial_service:
            widest_service.close()
    return ConcurrencyReport(
        num_queries=len(workload),
        serial_qps=len(workload) / max(serial_seconds, 1e-9),
        qps_by_workers=qps_by_workers,
        build_calls_during_queries=build_calls,
        distinct_rungs=distinct_rungs,
        matrix_computes=matrices["computes"],
        matrices=matrices,
        executor=executor,
    )
