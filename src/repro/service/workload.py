"""Multi-query workloads and the cold/warm/cached throughput harness.

First genuinely multi-query workload in the repo: a randomized mix of
``(objective, k)`` requests served three ways —

* **rebuild-per-query** — the pre-service baseline: every query pays a
  fresh core-set build over the full dataset before solving;
* **warm** — the service path: queries route into a prebuilt index and
  solve on shared, cached distance matrices;
* **cached** — the same workload replayed, served from the LRU.

``repro serve-bench`` and ``benchmarks/bench_service_throughput.py`` both
run :func:`measure_service_throughput`; the benchmark additionally gates
the warm-path speedup (>= 5x over rebuild-per-query) in CI.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.diversity.objectives import list_objectives
from repro.diversity.sequential.registry import solve_sequential
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.points import PointSet
from repro.service.index import build_coreset_index
from repro.service.service import DiversityService, Query
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def make_workload(k_max: int, num_queries: int,
                  objectives: list[str] | None = None,
                  epsilon: float = 1.0,
                  seed: RngLike = None) -> list[Query]:
    """A reproducible mix of distinct ``(objective, k)`` queries.

    Queries are drawn without replacement from the
    ``objectives x [2, k_max]`` grid while possible (so a "warm" pass is
    not accidentally a cache-hit pass), then with replacement once the
    grid is exhausted.
    """
    check_positive_int(k_max, "k_max")
    check_positive_int(num_queries, "num_queries")
    rng = ensure_rng(seed)
    objectives = list(objectives) if objectives else list_objectives()
    k_low = min(2, k_max)
    grid = [(name, k) for name in objectives
            for k in range(k_low, k_max + 1)]
    order = rng.permutation(len(grid))
    workload: list[Query] = []
    while len(workload) < num_queries:
        take = min(num_queries - len(workload), len(grid))
        workload.extend(
            Query(grid[i][0], grid[i][1], epsilon)
            for i in order[:take])
        order = rng.permutation(len(grid))
    return workload


@dataclass
class ThroughputReport:
    """Queries/sec for the three serving modes, plus provenance."""

    num_queries: int
    rebuild_queries: int
    index_build_seconds: float
    rebuild_qps: float
    warm_qps: float
    cached_qps: float
    build_calls_during_queries: int
    cache: dict

    @property
    def warm_speedup(self) -> float:
        """Warm-path queries/sec over the rebuild-per-query baseline."""
        return self.warm_qps / self.rebuild_qps

    @property
    def cached_speedup(self) -> float:
        return self.cached_qps / self.rebuild_qps

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["warm_speedup"] = self.warm_speedup
        payload["cached_speedup"] = self.cached_speedup
        return payload


def measure_service_throughput(
    points: PointSet,
    k_max: int,
    num_queries: int = 24,
    rebuild_queries: int = 3,
    objectives: list[str] | None = None,
    seed: int | None = 0,
    **build_options,
) -> ThroughputReport:
    """Measure rebuild-per-query vs warm vs cached queries/sec.

    The rebuild baseline runs the first *rebuild_queries* workload entries
    the pre-service way (fresh 2-round MapReduce job per query over the
    full dataset); the warm pass answers the whole workload through a
    prebuilt :class:`DiversityService`; the cached pass replays it.
    *build_options* go to :func:`repro.service.index.build_coreset_index`
    (and the baseline builder inherits ``parallelism``/``executor``).
    """
    workload = make_workload(k_max, num_queries, objectives=objectives,
                             seed=seed)
    rebuild_queries = min(check_positive_int(rebuild_queries,
                                             "rebuild_queries"),
                          len(workload))
    multiplier = build_options.get("multiplier", 4)
    parallelism = build_options.get("parallelism", 4)
    executor = build_options.get("executor", "serial")

    # Baseline: every query pays its own core-set build (no amortization).
    started = time.perf_counter()
    for query in workload[:rebuild_queries]:
        with MRDiversityMaximizer(
                k=query.k, k_prime=multiplier * query.k,
                objective=query.objective, parallelism=parallelism,
                metric=points.metric, executor=executor,
                seed=seed) as builder:
            build = builder.build_coreset(points)
        solve_sequential(build.coreset, query.k, query.objective)
    rebuild_seconds = time.perf_counter() - started

    started = time.perf_counter()
    index = build_coreset_index(points, k_max, seed=seed, **build_options)
    index_build_seconds = time.perf_counter() - started

    service = DiversityService(index, cache_size=max(128, len(workload)))
    started = time.perf_counter()
    warm = service.query_batch(workload)
    warm_seconds = time.perf_counter() - started
    build_calls_during_queries = service.build_calls

    started = time.perf_counter()
    cached = service.query_batch(workload)
    cached_seconds = time.perf_counter() - started

    assert all(result.cached for result in cached), \
        "replayed workload must be served entirely from the LRU"
    assert len(warm) == len(workload)

    def _qps(count: int, seconds: float) -> float:
        return count / max(seconds, 1e-9)

    return ThroughputReport(
        num_queries=len(workload),
        rebuild_queries=rebuild_queries,
        index_build_seconds=index_build_seconds,
        rebuild_qps=_qps(rebuild_queries, rebuild_seconds),
        warm_qps=_qps(len(workload), warm_seconds),
        cached_qps=_qps(len(workload), cached_seconds),
        build_calls_during_queries=build_calls_during_queries,
        cache=service.cache.stats.as_dict(),
    )
