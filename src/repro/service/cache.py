"""A small LRU result cache with hit/miss accounting.

The query service keys this on ``(objective, k, seed, rung)``: solvers are
deterministic on a fixed core-set, so a repeated query is a pure lookup.
The cache is deliberately tiny and dependency-free — ``OrderedDict`` move-
to-end gives O(1) recency maintenance, and the stats counters feed the
service's observability surface (and the throughput benchmark's "cached"
row).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.utils.validation import check_positive_int

_MISSING = object()


@dataclass
class CacheStats:
    """Counters for one :class:`LRUCache` lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)   # evicts "b" (least recently used)
    >>> cache.get("b") is None
    True
    >>> cache.stats.evictions
    1
    """

    def __init__(self, capacity: int = 128):
        self.capacity = check_positive_int(capacity, "capacity")
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # Containment is a pure probe: no recency update, no stats.
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look *key* up, counting a hit or miss and refreshing recency."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (stats are kept — they describe the lifetime)."""
        self._entries.clear()
