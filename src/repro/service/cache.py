"""LRU result caches with hit/miss accounting, safe under concurrent queries.

The query service keys these on ``(epoch, objective, k, seed, rung)``:
solvers are deterministic on a fixed core-set, so a repeated query is a
pure lookup.  Two flavours are provided:

* :class:`LRUCache` — a single ``OrderedDict`` guarded by one lock; O(1)
  recency maintenance, stats counters mutated only under the lock.
* :class:`StripedLRUCache` — the concurrency-shaped variant: capacity is
  divided across several independently locked :class:`LRUCache` shards
  (lock striping), so threads touching different keys contend on
  different locks.  This is what :class:`~repro.service.service.DiversityService`
  uses for its result cache.

Both expose the same ``get``/``put``/``clear`` surface and the same
:class:`CacheStats` observability block, so the service's throughput
benchmark can report a single ``cache`` dict either way.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.utils.validation import check_positive_int

_MISSING = object()


@dataclass
class CacheStats:
    """Counters for one cache lifetime.

    Instances handed out by the caches are either mutated strictly under
    the owning cache's lock (per-shard stats) or immutable aggregate
    snapshots (:attr:`StripedLRUCache.stats`), so reading them from any
    thread is safe.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls counted (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters (the ``cache`` block of ``service.stats()``)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    Thread safety: every operation (including the stats increments it
    implies) runs under one internal lock, so concurrent ``get``/``put``
    calls from the service's worker threads never tear the recency list
    or lose counter updates.  For lower contention across many keys, see
    :class:`StripedLRUCache`.

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)   # evicts "b" (least recently used)
    >>> cache.get("b") is None
    True
    >>> cache.stats.evictions
    1
    """

    def __init__(self, capacity: int = 128):
        self.capacity = check_positive_int(capacity, "capacity")
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        """Current number of cached entries."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Pure containment probe: no recency update, no stats."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look *key* up, counting a hit or miss and refreshing recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look *key* up without counting stats or refreshing recency.

        The epsilon-aware reuse probe of the query service uses this: a
        secondary lookup must not distort the one-hit-or-miss-per-query
        accounting of :meth:`get`, nor promote an entry the caller did
        not actually request.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (stats are kept — they describe the lifetime)."""
        with self._lock:
            self._entries.clear()


class StripedLRUCache:
    """A lock-striped LRU: *capacity* split across independently locked shards.

    Keys are assigned to shards by hash, so threads operating on
    different keys usually take different locks — under the service's
    ``query_concurrent`` path this turns the result cache from a global
    serialization point into ``stripes``-way concurrent storage.  Each
    shard is a plain :class:`LRUCache` (recency is per shard, which is
    the standard striped-LRU approximation of global recency).

    Parameters
    ----------
    capacity:
        Total entry budget; each shard holds ``ceil(capacity / stripes)``.
    stripes:
        Number of shards (clamped to *capacity* so a tiny cache does not
        silently over-provision).

    Thread safety: fully safe; per-shard stats are mutated under the
    shard lock and :attr:`stats` aggregates them into a snapshot.
    """

    def __init__(self, capacity: int = 128, stripes: int = 8):
        self.capacity = check_positive_int(capacity, "capacity")
        stripes = check_positive_int(stripes, "stripes")
        self.stripes = min(stripes, self.capacity)
        shard_capacity = -(-self.capacity // self.stripes)  # ceil division
        self._shards = [LRUCache(shard_capacity) for _ in range(self.stripes)]

    def _shard(self, key: Hashable) -> LRUCache:
        return self._shards[hash(key) % self.stripes]

    def __len__(self) -> int:
        """Total number of cached entries across all shards."""
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        """Pure containment probe: no recency update, no stats."""
        return key in self._shard(key)

    @property
    def stats(self) -> CacheStats:
        """Aggregate snapshot of the per-shard counters."""
        snapshot = CacheStats()
        for shard in self._shards:
            snapshot.hits += shard.stats.hits
            snapshot.misses += shard.stats.misses
            snapshot.evictions += shard.stats.evictions
        return snapshot

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look *key* up in its shard, counting a hit or miss there."""
        return self._shard(key).get(key, default)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look *key* up in its shard without stats or recency effects."""
        return self._shard(key).peek(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key* in its shard, evicting LRU when full."""
        self._shard(key).put(key, value)

    def clear(self) -> None:
        """Drop all entries in every shard (lifetime stats are kept)."""
        for shard in self._shards:
            shard.clear()

    def successor(self) -> "StripedLRUCache":
        """A fresh, empty cache with this one's geometry and counters.

        :meth:`DiversityService.refresh <repro.service.service.DiversityService.refresh>`
        swaps this in rather than clearing the live cache: writers in
        flight across the swap keep filling their snapshotted old object
        (which dies with them) instead of evicting live entries from the
        new epoch's cache.  Lifetime counters continue from a snapshot of
        the current aggregate; updates the old object receives after the
        swap are not folded in.
        """
        fresh = StripedLRUCache(self.capacity, stripes=self.stripes)
        snapshot = self.stats
        seeded = fresh._shards[0].stats
        seeded.hits = snapshot.hits
        seeded.misses = snapshot.misses
        seeded.evictions = snapshot.evictions
        return fresh
