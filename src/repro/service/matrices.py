"""Memory-budgeted, single-flight cache for per-rung distance matrices.

Rung pairwise matrices are the largest resident state of a warm
:class:`~repro.service.service.DiversityService` — ``O(points^2)`` in the
index's dtype per rung (float32 rungs cost half the bytes of float64),
dwarfing the core-sets themselves.  This module makes them
first-class cache citizens:

* **Budget** — total cached bytes are bounded by a budget taken from the
  ``REPRO_MATRIX_BUDGET_MB`` environment variable (or per-service
  override); least-recently-used matrices are evicted when an insert
  would overflow it.  ``None`` means unbudgeted (the PR 3 behaviour).
* **Single-flight** — concurrent requests for the same rung block on a
  per-key lock while the first requester computes, so a matrix is
  computed exactly once under contention (the throughput benchmark's
  invariant).
* **Stats** — hits / misses / evictions / recomputes (plus raw compute
  count and resident bytes) feed ``service.stats()["matrices"]``, so an
  operator can see when a budget is set too low (recomputes climbing).

A matrix larger than the whole budget is still computed and returned but
never retained, keeping cache-resident memory under the budget at all
times; the caller's reference is its own working memory.

Thread safety: fully safe.  A registry lock guards the entry table,
recency order, stats and byte accounting; compute calls run outside it,
serialized per key by the single-flight locks.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Hashable

import numpy as np

from repro import shm
from repro.utils.validation import check_positive_int

#: Environment variable holding the default matrix budget in MiB.
MATRIX_BUDGET_ENV_VAR = "REPRO_MATRIX_BUDGET_MB"


def matrix_budget_from_env() -> int | None:
    """The ``REPRO_MATRIX_BUDGET_MB`` budget in bytes, or ``None`` if unset.

    Malformed or non-positive values degrade to ``None`` (unbudgeted)
    rather than raising — the budget is an operational knob, never a
    correctness requirement.
    """
    raw = os.environ.get(MATRIX_BUDGET_ENV_VAR)
    if raw is None:
        return None
    try:
        megabytes = int(raw)
    except ValueError:
        return None
    return megabytes * 2**20 if megabytes > 0 else None


@dataclass
class MatrixStats:
    """Counters for one :class:`MatrixCache` lifetime.

    ``recomputes`` counts computes of keys that were previously cached
    and then evicted — the budget-pressure signal; ``computes`` counts
    every invocation of a compute callback (first builds included).
    Mutated only under the owning cache's lock; read freely.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    computes: int = 0
    recomputes: int = 0

    def as_dict(self) -> dict:
        """JSON-ready counters (the ``matrices`` block of ``service.stats()``)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "computes": self.computes,
                "recomputes": self.recomputes}


def _resolve_budget(budget_bytes: int | None) -> int | None:
    """Resolve the shared budget convention: ``None`` env, ``0`` unbudgeted."""
    if budget_bytes is None:
        return matrix_budget_from_env()
    if budget_bytes == 0:
        return None
    return check_positive_int(budget_bytes, "budget_bytes")


class MatrixCache:
    """Keyed store of distance matrices under an optional byte budget.

    Parameters
    ----------
    budget_bytes:
        Maximum total bytes of cached matrices.  ``None`` (the default)
        reads :func:`matrix_budget_from_env`; pass any positive int to
        override, or ``0`` to force unbudgeted regardless of the
        environment.

    Example
    -------
    >>> cache = MatrixCache(budget_bytes=0)
    >>> first = cache.get_or_compute("rung", lambda: np.zeros((2, 2)))
    >>> again = cache.get_or_compute("rung", lambda: np.ones((2, 2)))
    >>> again is first, cache.stats.computes
    (True, 1)
    """

    def __init__(self, budget_bytes: int | None = None):
        self._budget = _resolve_budget(budget_bytes)
        self._entries: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._key_locks: dict[Hashable, threading.Lock] = {}
        self._ever_cached: set[Hashable] = set()
        #: Weak references to over-budget matrices currently held by
        #: callers: lets concurrent requesters share one compute without
        #: the cache retaining the array (see get_or_compute).
        self._oversize: dict[Hashable, "weakref.ref[np.ndarray]"] = {}
        #: Bumped by clear(); computes that started before a clear must
        #: not park their (now superseded) matrix in the fresh cache.
        self._generation = 0
        self._dtype: str | None = None
        self.stats = MatrixStats()

    @property
    def budget_bytes(self) -> int | None:
        """The byte budget, or ``None`` when unbudgeted."""
        return self._budget

    @property
    def nbytes(self) -> int:
        """Bytes currently resident in the cache (always <= budget)."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        """Number of matrices currently resident."""
        with self._lock:
            return len(self._entries)

    def _probe(self, key: Hashable) -> np.ndarray | None:
        # Caller holds self._lock.  Resident entries first; then matrices
        # too large to retain, shared weakly while any caller still holds
        # them (dead references are pruned on sight).
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            return cached
        reference = self._oversize.get(key)
        if reference is not None:
            matrix = reference()
            if matrix is not None:
                return matrix
            del self._oversize[key]
        return None

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Return the cached matrix for *key*, computing it at most once.

        A hit refreshes recency and returns the cached array.  On a miss
        the caller-supplied *compute* runs under a per-key single-flight
        lock: concurrent requesters of the same key wait for the first
        compute instead of duplicating it, then share its result — for
        over-budget matrices via a weak reference, so sharing works while
        any requester still holds the array without the cache retaining
        it.  The returned array should be treated as read-only shared
        state.
        """
        with self._lock:
            cached = self._probe(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            generation = self._generation
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            # Double-check: a concurrent holder of the key lock may have
            # just inserted the matrix (the single-flight follower path).
            with self._lock:
                cached = self._probe(key)
                if cached is not None:
                    return cached
            matrix = np.asarray(compute())
            with self._lock:
                self.stats.computes += 1
                if key in self._ever_cached:
                    self.stats.recomputes += 1
                if generation == self._generation:
                    # A clear() during the compute supersedes the key
                    # space (e.g. an index refresh): serve the matrix but
                    # do not retain it, or a dead-keyed array would stay
                    # resident for the cache's lifetime.
                    self._insert(key, matrix)
            return matrix

    def _insert(self, key: Hashable, matrix: np.ndarray) -> None:
        # Caller holds self._lock.
        self._dtype = str(matrix.dtype)
        if self._budget is not None and matrix.nbytes > self._budget:
            # Oversized for the whole budget: hand it out uncached so
            # resident cache memory never exceeds the budget — but leave
            # a weak reference so concurrent requesters share this
            # compute instead of convoying on the key lock to recompute.
            # Count it as "cached once" so later rebuilds of the same key
            # register as recomputes — the operator's too-low-budget
            # signal must fire for exactly this configuration.
            self._oversize[key] = weakref.ref(matrix)
            self._ever_cached.add(key)
            return
        self._entries[key] = matrix
        self._bytes += matrix.nbytes
        self._ever_cached.add(key)
        if self._budget is not None:
            # The just-inserted key sits at the MRU end and fits the
            # budget on its own (oversize was filtered above), so the
            # loop always terminates before evicting it.
            while self._bytes > self._budget and len(self._entries) > 1:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached matrix and key bookkeeping (stats are kept).

        In-flight computes that started before the clear hand their
        matrix to their caller but do not re-populate the cache — the
        clear marks a new key generation (see :meth:`get_or_compute`).
        """
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._key_locks.clear()
            self._ever_cached.clear()
            self._oversize.clear()
            self._generation += 1

    def purge(self, dataset_id: str, *,
              before_epoch: int | None = None) -> int:
        """Drop one dataset namespace's matrices; returns the count dropped.

        Multi-tenant convention: namespaced keys are tuples opening with
        ``(dataset_id, epoch, ...)`` (see
        :meth:`DiversityService._matrix_for
        <repro.service.service.DiversityService._matrix_for>`).  A
        registry sharing one cache across tenants purges a tenant's
        entries on refresh (*before_epoch* drops only superseded epochs)
        and on eviction/detach (``before_epoch=None`` drops the whole
        namespace) instead of swapping in a successor, which would throw
        away every *other* tenant's resident matrices.  Purging bumps
        the key generation, so in-flight computes still hand their
        matrix to their caller but no longer park it.
        """
        def doomed(key: Hashable) -> bool:
            if not (isinstance(key, tuple) and len(key) >= 2
                    and key[0] == dataset_id):
                return False
            return before_epoch is None or key[1] < before_epoch

        with self._lock:
            victims = [key for key in self._entries if doomed(key)]
            for key in victims:
                self._bytes -= self._entries.pop(key).nbytes
            for table in (self._key_locks, self._oversize):
                for key in [key for key in table if doomed(key)]:
                    del table[key]
            self._ever_cached -= {key for key in self._ever_cached
                                  if doomed(key)}
            self._generation += 1
            return len(victims)

    def successor(self) -> "MatrixCache":
        """A fresh cache for a new key epoch, inheriting budget and stats.

        :meth:`DiversityService.refresh <repro.service.service.DiversityService.refresh>`
        swaps this in instead of clearing the live cache: queries in
        flight across the refresh keep writing to the *old* object (their
        snapshot), which becomes garbage when they finish — so a
        superseded epoch can never pin matrices in the serving cache.
        The successor starts from the current budget (resolved, not
        re-read from the environment) and a snapshot of the lifetime
        stats; updates the old object receives after the swap are not
        folded in.
        """
        with self._lock:
            fresh = MatrixCache(0 if self._budget is None else self._budget)
            fresh.stats = replace(self.stats)
            fresh._dtype = self._dtype
            return fresh

    def contains(self, key: Hashable) -> bool:
        """Non-mutating residency probe: no stats, no recency refresh.

        The query planner uses this to price a rung's matrix at zero
        when it is already resident — a cost estimate must not promote
        entries or distort the hit/miss accounting of :meth:`get_or_compute`.
        """
        with self._lock:
            return key in self._entries

    def describe(self) -> dict:
        """JSON-ready snapshot: stats plus dtype, residency and budget."""
        with self._lock:
            payload = self.stats.as_dict()
            payload.update({
                "dtype": self._dtype,
                "cached": len(self._entries),
                "resident_bytes": self._bytes,
                "budget_bytes": self._budget,
            })
            return payload


@dataclass
class _SharedSlot:
    """Bookkeeping for one shared-memory matrix segment.

    ``pins`` counts in-flight leases; an evicted or oversize slot is
    unlinked only once the last lease releases it, which is what makes a
    driver-side eviction safe against workers still attaching by the
    slot's descriptor (use-after-unlink prevention).
    """

    key: Hashable
    owner: "shm.SharedNDArray"
    pins: int = 0
    resident: bool = False
    defunct: bool = False
    is_recompute: bool = False


@dataclass(frozen=True)
class MatrixLease:
    """A pinned handle on one shared matrix segment.

    Holders dispatch ``ref`` to worker processes and must hand the lease
    back via :meth:`SharedMatrixCache.release` when the batch completes —
    the pin keeps the segment linked for the duration.
    """

    key: Hashable
    ref: "shm.SharedArrayRef"
    slot: _SharedSlot


class SharedMatrixCache:
    """Budgeted cache of rung matrices living in shared-memory segments.

    The process-executor counterpart of :class:`MatrixCache`: instead of
    arrays in driver memory, entries are named POSIX shared-memory
    segments (:class:`repro.shm.SharedNDArray`, with a single-flight
    ready flag) that worker processes attach to by descriptor.  The byte
    budget governs the segments themselves — an eviction **unlinks** the
    segment, and a later lease of the same key allocates a fresh one
    (whose recompute registers in :attr:`MatrixStats.recomputes`, the
    budget-pressure signal).

    Lifecycle guarantees:

    * **pin before dispatch** — :meth:`lease` pins the segment; eviction
      skips pinned entries and an oversize or superseded segment is
      unlinked only when its last pin releases, so a descriptor already
      shipped to a worker always resolves;
    * **oversize never resident** — a matrix larger than the whole budget
      gets a segment for the duration of the leases sharing it and is
      unlinked on the last release;
    * **close unlinks everything** — :meth:`close` (idempotent, with the
      owning segments' GC finalizers as backstop) leaves zero segments
      behind, the invariant the leak tests assert.

    The segments are published *empty* (ready flag unset): the first
    worker to take the matrix's stripe lock computes and publishes the
    payload (:func:`repro.shm.fill_once`), so compute work stays off the
    driver.  Workers report who computed; the driver folds that into
    :attr:`stats` via :meth:`note_computed`.

    Thread safety: fully safe; one registry lock guards entries, pins,
    byte accounting and stats.
    """

    def __init__(self, budget_bytes: int | None = None):
        self._budget = _resolve_budget(budget_bytes)
        self._entries: "OrderedDict[Hashable, _SharedSlot]" = OrderedDict()
        self._oversize: dict[Hashable, _SharedSlot] = {}
        #: Purged while pinned: no longer servable (their key namespace is
        #: dead) but kept linked until the in-flight batch holding the
        #: pin releases; close() unlinks them as backstop.
        self._doomed: list[_SharedSlot] = []
        self._bytes = 0
        self._ever_cached: set[Hashable] = set()
        self._lock = threading.Lock()
        self._closed = False
        self._dtype: str | None = None
        self.stats = MatrixStats()

    @property
    def budget_bytes(self) -> int | None:
        """The byte budget, or ``None`` when unbudgeted."""
        return self._budget

    @property
    def nbytes(self) -> int:
        """Bytes of segments currently resident (excludes oversize)."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        """Number of matrix segments currently resident."""
        with self._lock:
            return len(self._entries)

    def lease(self, key: Hashable, n_points: int,
              dtype: str | np.dtype = np.float64, *,
              transient: bool = False) -> MatrixLease:
        """Pin (allocating if needed) the segment for *key*'s matrix.

        A hit pins and returns the existing segment; a miss allocates a
        zero-filled flagged segment for an ``(n_points, n_points)``
        matrix of *dtype* (sized by the actual itemsize — float32
        segments cost half the budget of float64), charges the budget
        and evicts unpinned LRU entries that no longer fit.  The caller
        must :meth:`release` the lease when its dispatch completes.

        *transient* leases never become resident: a freshly allocated
        segment takes the oversize path (shared by concurrent leases of
        the same key, unlinked on the last release) regardless of size.
        Stale-epoch straggler batches use this so a superseded key can
        never re-enter the resident set.
        """
        n_points = check_positive_int(n_points, "n_points")
        dtype = np.dtype(dtype)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedMatrixCache is closed")
            slot = self._entries.get(key)
            if slot is None:
                slot = self._oversize.get(key)
            if slot is not None:
                self.stats.hits += 1
                if slot.resident:
                    self._entries.move_to_end(key)
                slot.pins += 1
                return MatrixLease(key=key, ref=slot.owner.ref, slot=slot)
            self.stats.misses += 1
            owner = shm.SharedNDArray((n_points, n_points), dtype,
                                      flagged=True)
            self._dtype = str(dtype)
            slot = _SharedSlot(key=key, owner=owner, pins=1,
                               is_recompute=key in self._ever_cached)
            self._ever_cached.add(key)
            if transient or (self._budget is not None
                             and owner.nbytes > self._budget):
                # Oversized for the whole budget (or a stale-epoch
                # straggler): shared by concurrent leases, unlinked when
                # the last one releases — the segment is never retained
                # across batches.
                self._oversize[key] = slot
            else:
                slot.resident = True
                self._entries[key] = slot
                self._bytes += owner.nbytes
                self._shrink()
            return MatrixLease(key=key, ref=owner.ref, slot=slot)

    def release(self, lease: MatrixLease) -> None:
        """Unpin a lease; unlink segments whose last holder just left."""
        with self._lock:
            slot = lease.slot
            slot.pins = max(slot.pins - 1, 0)
            if slot.pins == 0:
                if not slot.resident:
                    # Oversize, purged or superseded: this was the last
                    # holder.  Identity-guard the table pops — a fresh
                    # slot may have taken this key after a purge.
                    if self._oversize.get(slot.key) is slot:
                        del self._oversize[slot.key]
                    if slot in self._doomed:
                        self._doomed.remove(slot)
                    slot.defunct = True
                    slot.owner.close()
                else:
                    self._shrink()

    def purge(self, dataset_id: str, *,
              before_epoch: int | None = None) -> int:
        """Unlink one dataset namespace's segments; returns the count.

        The shared-plane counterpart of :meth:`MatrixCache.purge` for
        keys opening with ``(dataset_id, epoch, ...)``: a tenant refresh
        purges its superseded epochs (*before_epoch*), an eviction or
        detach purges the whole namespace.  Pin-safe — a purged segment
        still pinned by an in-flight batch stays linked (and attachable
        by its shipped descriptor) until the last pin releases; it can
        no longer be leased by key.
        """
        def doomed(key: Hashable) -> bool:
            if not (isinstance(key, tuple) and len(key) >= 2
                    and key[0] == dataset_id):
                return False
            return before_epoch is None or key[1] < before_epoch

        with self._lock:
            count = 0
            for key in [key for key in self._entries if doomed(key)]:
                slot = self._entries.pop(key)
                slot.resident = False
                self._bytes -= slot.owner.nbytes
                count += 1
                if slot.pins == 0:
                    slot.defunct = True
                    slot.owner.close()
                else:
                    self._doomed.append(slot)
            for key in [key for key in self._oversize if doomed(key)]:
                slot = self._oversize.pop(key)
                count += 1
                if slot.pins == 0:
                    slot.defunct = True
                    slot.owner.close()
                else:
                    self._doomed.append(slot)
            self._ever_cached -= {key for key in self._ever_cached
                                  if doomed(key)}
            return count

    def note_computed(self, key: Hashable) -> None:
        """Fold a worker's "I filled this segment" report into the stats."""
        with self._lock:
            self.stats.computes += 1
            slot = self._entries.get(key) or self._oversize.get(key)
            if slot is not None and slot.is_recompute:
                self.stats.recomputes += 1

    def _shrink(self) -> None:
        # Caller holds self._lock.  Evict unpinned LRU entries until the
        # budget holds; pinned entries are skipped (their batch is still
        # dispatching against the descriptor), so residency may overshoot
        # transiently and is re-shrunk as pins release.
        if self._budget is None:
            return
        while self._bytes > self._budget and len(self._entries) > 1:
            victim_key = next((key for key, slot in self._entries.items()
                               if slot.pins == 0), None)
            if victim_key is None:
                return
            victim = self._entries.pop(victim_key)
            victim.resident = False
            victim.defunct = True
            self._bytes -= victim.owner.nbytes
            self.stats.evictions += 1
            victim.owner.close()

    def successor(self) -> "SharedMatrixCache":
        """A fresh cache for a new epoch, inheriting budget and stats.

        The refresh counterpart of :meth:`MatrixCache.successor`: the new
        epoch's plane gets empty storage while batches in flight keep
        their pins on the old object, which is retired (and its segments
        unlinked) once they drain.
        """
        with self._lock:
            fresh = SharedMatrixCache(0 if self._budget is None
                                      else self._budget)
            fresh.stats = replace(self.stats)
            fresh._dtype = self._dtype
            return fresh

    def close(self) -> None:
        """Unlink every segment — resident, oversize or pinned (idempotent).

        Service shutdown semantics: after this returns, zero segments
        published by this cache remain in ``/dev/shm``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for slot in list(self._entries.values()):
                slot.resident = False
                slot.defunct = True
                slot.owner.close()
            for slot in list(self._oversize.values()) + self._doomed:
                slot.defunct = True
                slot.owner.close()
            self._entries.clear()
            self._oversize.clear()
            self._doomed.clear()
            self._bytes = 0

    def segment_names(self) -> list[str]:
        """Names of every segment this cache currently keeps linked."""
        with self._lock:
            return ([slot.owner.ref.name for slot in self._entries.values()]
                    + [slot.owner.ref.name
                       for slot in self._oversize.values()]
                    + [slot.owner.ref.name for slot in self._doomed])

    def describe(self) -> dict:
        """JSON-ready snapshot: stats plus dtype, residency, pins, budget."""
        with self._lock:
            payload = self.stats.as_dict()
            payload.update({
                "dtype": self._dtype,
                "cached": len(self._entries),
                "resident_bytes": self._bytes,
                "budget_bytes": self._budget,
                "pinned": sum(1 for slot in self._entries.values()
                              if slot.pins > 0) + len(self._oversize),
            })
            return payload
