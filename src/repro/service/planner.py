"""Cost-model query planning: pick executor and matrix strategy per batch.

Static routing (:meth:`~repro.service.index.CoresetIndex.route`) answers
*which rung* serves a query from the epsilon sizing alone; everything else
— which execution backend runs the solves, whether the rung matrix is
already resident or must be computed (locally or into a shared segment) —
was a fixed policy.  This module closes the ROADMAP's "cost-model query
planner over measured profiles" item: a :class:`CostModel` fitted from
calibration measurements predicts what each *valid* plan would cost, and a
:class:`QueryPlanner` picks the cheapest one per batch.

The safety contract is strict: a plan changes **where and how** work runs,
never what it answers.  The solved rung is always the statically routed
one (eps-correctness preserved; cached tighter-eps answers are exploited
through the existing epsilon-aware reuse, which every mode shares), and
all execution backends are bit-identical by construction — so
``plan="auto"`` answers are bit-identical to ``plan="static"`` for the
same ``(objective, k, seed)``.  What the planner buys is wall time:
serial dispatch for small batches (no pool overhead), process workers
when predicted solve time dominates dispatch overhead, and zero matrix
cost when the rung's matrix is already resident.

Calibration runs once via ``repro calibrate``
(:func:`run_calibration`), persists into the per-machine profile
(``.repro_profile.json`` format v3 — see :mod:`repro.tuning`), and is
refined online: every planned batch's measured wall time updates an EMA
correction factor, and the predicted-vs-measured relative error is a
first-class metric in ``stats()["planner"]`` (regression-gated by
``benchmarks/bench_planner.py``).

Everything here is deterministic given a model: :class:`QueryPlanner`
takes an injectable :class:`CostModel`, so tests pin plans with synthetic
cost tables instead of timing anything.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.service.executors import EXECUTOR_NAMES

#: Smallest denominator used for relative-error and slope computations.
_EPS_SECONDS = 1e-9

#: EMA step for the online measured/predicted correction factor.
_EMA_ALPHA = 0.2

#: Clamp band for the online correction factor (and per-observation
#: ratios): one bad measurement can nudge predictions, never capsize them.
_SCALE_BAND = (0.1, 10.0)

#: Matrix strategies a plan may record per rung.
MATRIX_CACHED = "cached"      # resident in the local MatrixCache: free
MATRIX_COMPUTE = "compute"    # recompute locally (serial/thread path)
MATRIX_SHARED = "shared"      # fill a shared segment (process path)


def _default_matrix_costs() -> dict[str, float]:
    # Seconds per n^2 matrix cell; float32 moves half the bytes.
    return {"float64": 4e-9, "float32": 2.5e-9}


def _default_solve_costs() -> dict[str, float]:
    # Seconds per k*n solve cell for the Python-heavy sequential solvers.
    return {
        "remote-edge": 4e-7,
        "remote-cycle": 5e-7,
        "remote-clique": 4e-7,
        "remote-star": 4e-7,
        "remote-bipartition": 5e-7,
        "remote-tree": 5e-7,
    }


def _default_dispatch() -> dict[str, float]:
    # Per-batch dispatch overhead.  The uncalibrated process figure is
    # deliberately pessimistic so an unprofiled machine only leaves
    # serial when the predicted solve work clearly dominates.
    return {"serial": 0.0, "thread": 2e-3, "process": 2e-2}


def _default_solve_scale() -> dict[str, float]:
    # Multiplier on a batch's summed serial solve seconds.  Threads keep
    # the GIL for the solver loops (scale ~1); processes genuinely
    # parallelize.  Calibration replaces these with measured slopes.
    return {"serial": 1.0, "thread": 1.0, "process": 0.4}


@dataclass
class CostModel:
    """Fitted per-machine costs the planner predicts with.

    Attributes
    ----------
    matrix_seconds_per_cell:
        Blocked-kernel pairwise build cost, seconds per ``n^2`` cell,
        keyed by dtype (the rung's storage dtype).
    solve_seconds_per_cell:
        Sequential-solver cost, seconds per ``k * n`` cell, keyed by
        objective name (the ``(objective, k, rung)`` cost class).
    dispatch_seconds:
        Fixed per-batch overhead of handing work to each executor.
    solve_scale:
        Multiplier each executor applies to a batch's summed serial
        solve seconds (its measured parallel slope; serial is 1.0).
    shared_fill_factor:
        Extra factor on matrix builds that fill a shared-memory segment
        instead of a local array (the process backend's first touch).
    query_overhead_seconds:
        Per-query bookkeeping cost (normalization, routing, cache
        probes) independent of executor — the floor that keeps
        predictions for all-cache-hit batches honest instead of zero.
    scale:
        Online EMA of measured/predicted batch cost; multiplies every
        prediction, so persistent model bias is corrected within a few
        observed batches.
    calibrated:
        Whether the numbers came from :func:`run_calibration` (else the
        conservative built-in defaults).
    """

    matrix_seconds_per_cell: dict[str, float] = field(
        default_factory=_default_matrix_costs)
    solve_seconds_per_cell: dict[str, float] = field(
        default_factory=_default_solve_costs)
    dispatch_seconds: dict[str, float] = field(default_factory=_default_dispatch)
    solve_scale: dict[str, float] = field(default_factory=_default_solve_scale)
    shared_fill_factor: float = 1.5
    query_overhead_seconds: float = 2e-5
    scale: float = 1.0
    calibrated: bool = False

    @classmethod
    def default(cls) -> "CostModel":
        """The uncalibrated built-in model (conservative defaults)."""
        return cls()

    # -- persistence (the profile's ``planner_calibration`` block) ---------------
    def to_payload(self) -> dict:
        """JSON-ready form persisted by :func:`repro.tuning.save_calibration`."""
        return {
            "matrix_seconds_per_cell": dict(self.matrix_seconds_per_cell),
            "solve_seconds_per_cell": dict(self.solve_seconds_per_cell),
            "dispatch_seconds": dict(self.dispatch_seconds),
            "solve_scale": dict(self.solve_scale),
            "shared_fill_factor": self.shared_fill_factor,
            "query_overhead_seconds": self.query_overhead_seconds,
            "scale": self.scale,
            "calibrated": self.calibrated,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "CostModel":
        """Rebuild a model from a persisted block, tolerantly.

        Missing or malformed fields fall back to the defaults — a
        pre-planner profile (format v1/v2, no ``planner_calibration``
        block) yields exactly :meth:`default`, which is what "v2 loads
        with defaults" means.
        """
        model = cls.default()
        if not isinstance(payload, dict) or not payload:
            return model

        def _merge(target: dict[str, float], block: object) -> None:
            if not isinstance(block, dict):
                return
            for key, value in block.items():
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool) and value >= 0:
                    target[str(key)] = float(value)

        _merge(model.matrix_seconds_per_cell,
               payload.get("matrix_seconds_per_cell"))
        _merge(model.solve_seconds_per_cell,
               payload.get("solve_seconds_per_cell"))
        _merge(model.dispatch_seconds, payload.get("dispatch_seconds"))
        _merge(model.solve_scale, payload.get("solve_scale"))
        fill = payload.get("shared_fill_factor")
        if isinstance(fill, (int, float)) and not isinstance(fill, bool) \
                and fill > 0:
            model.shared_fill_factor = float(fill)
        overhead = payload.get("query_overhead_seconds")
        if isinstance(overhead, (int, float)) \
                and not isinstance(overhead, bool) and overhead >= 0:
            model.query_overhead_seconds = float(overhead)
        scale = payload.get("scale")
        if isinstance(scale, (int, float)) and not isinstance(scale, bool) \
                and scale > 0:
            model.scale = min(max(float(scale), _SCALE_BAND[0]),
                              _SCALE_BAND[1])
        model.calibrated = bool(payload.get("calibrated", False))
        return model

    # -- cost primitives ---------------------------------------------------------
    def matrix_seconds(self, n: int, dtype: str) -> float:
        """Predicted seconds to build one ``n x n`` pairwise matrix."""
        per_cell = self.matrix_seconds_per_cell.get(
            dtype, self.matrix_seconds_per_cell.get("float64", 4e-9))
        return per_cell * float(n) * float(n)

    def solve_seconds(self, objective: str, k: int, n: int) -> float:
        """Predicted seconds for one ``(objective, k)`` solve on ``n`` points."""
        per_cell = self.solve_seconds_per_cell.get(objective, 4e-7)
        return per_cell * float(k) * float(n)

    def dispatch_overhead(self, executor: str) -> float:
        """Predicted fixed per-batch overhead of *executor*."""
        return self.dispatch_seconds.get(executor, 0.0)

    def observe(self, predicted: float, measured: float) -> None:
        """Fold one observed batch into the online correction factor."""
        if predicted <= 0.0 or measured <= 0.0:
            return
        ratio = measured / predicted
        ratio = min(max(ratio, _SCALE_BAND[0]), _SCALE_BAND[1])
        scale = (1.0 - _EMA_ALPHA) * self.scale + _EMA_ALPHA * ratio
        self.scale = min(max(scale, _SCALE_BAND[0]), _SCALE_BAND[1])


@dataclass(frozen=True)
class Plan:
    """One chosen execution plan for one batch.

    ``matrix_strategy`` maps each distinct rung key the batch must solve
    on to :data:`MATRIX_CACHED` / :data:`MATRIX_COMPUTE` /
    :data:`MATRIX_SHARED`; ``breakdown`` carries the predicted
    dispatch/matrix/solve split plus every candidate executor's total, so
    ``repro plan`` can explain why the winner won.
    """

    executor: str
    predicted_seconds: float
    matrix_strategy: dict
    breakdown: dict
    queries: int
    solves: int

    @property
    def signature(self) -> tuple:
        """Hashable batching class: requests with equal signatures may
        share a dispatch (the daemon groups by ``(dataset, signature)``)."""
        return ("auto", self.executor)


class QueryPlanner:
    """Pick the cheapest valid plan per batch and track prediction error.

    The planner never touches answers: rungs are the static route's, and
    every candidate executor is bit-identical — so "valid" is every
    combination, and cheapest-predicted wins (ties break toward the
    earlier entry of *executors*, so serial beats thread beats process on
    equal predictions).  Instances are thread-safe; the cost model is
    shared mutable state refined by :meth:`record`.
    """

    #: Per-query prediction records kept for benchmarks (bounded).
    MAX_SAMPLES = 1024

    def __init__(self, model: CostModel | None = None,
                 executors: Sequence[str] = EXECUTOR_NAMES):
        self.model = model if model is not None else CostModel.default()
        self.executors = tuple(executors)
        self._lock = threading.Lock()
        self.planned = 0
        self.predicted_seconds = 0.0
        self.measured_seconds = 0.0
        self._error_sum = 0.0
        self._error_count = 0
        self.plans_by_executor = {name: 0 for name in EXECUTOR_NAMES}
        self._samples: list[dict] = []

    def plan_batch(self, queries: Sequence, rungs: Sequence,
                   dtype: str, matrix_resident: Callable[[tuple], bool],
                   cached_flags: Sequence[bool] | None = None) -> Plan:
        """The cheapest plan for *queries* already routed to *rungs*.

        *matrix_resident* probes the serving matrix cache (non-mutating)
        so resident rungs cost nothing to reuse; *cached_flags* marks
        queries the result cache will answer without a solve (resolved
        by the service during routing, at zero extra cost).  Process
        residency in the shared plane is approximated by the local
        cache's — the strategies only shift predicted cost, never
        results.
        """
        if cached_flags is None:
            cached_flags = [False] * len(queries)
        solve_total = 0.0
        solves = 0
        matrix_rungs: dict[tuple, float] = {}
        seen: set[tuple] = set()
        for query, rung, cached in zip(queries, rungs, cached_flags):
            if cached:
                continue
            # In-batch repeats are grouped by the execution path and
            # solved once; price them once too.
            identity = (query.objective, query.k, rung.key)
            if identity in seen:
                continue
            seen.add(identity)
            n = len(rung.coreset)
            solve_total += self.model.solve_seconds(query.objective,
                                                    query.k, n)
            solves += 1
            if rung.key not in matrix_rungs:
                matrix_rungs[rung.key] = (
                    0.0 if matrix_resident(rung.key)
                    else self.model.matrix_seconds(n, dtype))
        matrix_total = sum(matrix_rungs.values())
        scale = self.model.scale
        overhead = self.model.query_overhead_seconds * len(queries)
        candidates: dict[str, float] = {}
        for name in self.executors:
            matrix_cost = matrix_total
            if name == "process":
                matrix_cost *= self.model.shared_fill_factor
            predicted = scale * (
                self.model.dispatch_overhead(name) + overhead
                + matrix_cost
                + self.model.solve_scale.get(name, 1.0) * solve_total)
            candidates[name] = predicted
        executor = min(self.executors, key=lambda name: candidates[name])
        strategy = {
            key: (MATRIX_CACHED if cost == 0.0
                  else MATRIX_SHARED if executor == "process"
                  else MATRIX_COMPUTE)
            for key, cost in matrix_rungs.items()
        }
        matrix_cost = matrix_total * (self.model.shared_fill_factor
                                      if executor == "process" else 1.0)
        return Plan(
            executor=executor,
            predicted_seconds=candidates[executor],
            matrix_strategy=strategy,
            breakdown={
                "dispatch": scale * (self.model.dispatch_overhead(executor)
                                     + overhead),
                "matrix": scale * matrix_cost,
                "solve": scale * self.model.solve_scale.get(executor, 1.0)
                * solve_total,
                "candidates": candidates,
            },
            queries=len(queries),
            solves=solves,
        )

    def record(self, plan: Plan, measured_seconds: float) -> None:
        """Fold one executed plan's measured wall time into the metrics.

        Updates the planned counters, the predicted-vs-measured error
        metric surfaced in ``stats()["planner"]``, the bounded sample
        log (the benchmark's per-query record), and the model's online
        correction factor.
        """
        measured_seconds = max(float(measured_seconds), 0.0)
        error = (abs(measured_seconds - plan.predicted_seconds)
                 / max(measured_seconds, plan.predicted_seconds,
                       _EPS_SECONDS))
        with self._lock:
            self.planned += 1
            self.plans_by_executor[plan.executor] = (
                self.plans_by_executor.get(plan.executor, 0) + 1)
            self.predicted_seconds += plan.predicted_seconds
            self.measured_seconds += measured_seconds
            self._error_sum += error
            self._error_count += 1
            self._samples.append({
                "executor": plan.executor,
                "queries": plan.queries,
                "solves": plan.solves,
                "predicted_seconds": plan.predicted_seconds,
                "measured_seconds": measured_seconds,
                "rel_error": error,
            })
            if len(self._samples) > self.MAX_SAMPLES:
                del self._samples[:self.MAX_SAMPLES // 2]
            self.model.observe(plan.predicted_seconds, measured_seconds)

    def samples(self) -> list[dict]:
        """A copy of the bounded per-batch prediction records."""
        with self._lock:
            return [dict(sample) for sample in self._samples]

    def stats(self) -> dict:
        """The fixed-key metrics block embedded in ``stats()["planner"]``."""
        with self._lock:
            mean_error = (self._error_sum / self._error_count
                          if self._error_count else None)
            return {
                "calibrated": self.model.calibrated,
                "planned": self.planned,
                "predicted_seconds": self.predicted_seconds,
                "measured_seconds": self.measured_seconds,
                "mean_rel_error": mean_error,
                "plans": {name: self.plans_by_executor.get(name, 0)
                          for name in EXECUTOR_NAMES},
            }


def explain_plan(plan: Plan, model: CostModel) -> str:
    """Human-readable rendering of one plan (the ``repro plan`` output)."""
    lines = [
        f"plan: executor {plan.executor}  "
        f"predicted {plan.predicted_seconds * 1e3:.3f} ms  "
        f"({plan.queries} queries, {plan.solves} fresh solves; "
        f"model {'calibrated' if model.calibrated else 'defaults'}, "
        f"online scale {model.scale:.2f})",
    ]
    breakdown = plan.breakdown
    lines.append(f"  dispatch {breakdown['dispatch'] * 1e3:.3f} ms"
                 f" + matrices {breakdown['matrix'] * 1e3:.3f} ms"
                 f" + solves {breakdown['solve'] * 1e3:.3f} ms")
    for family, k_cap, k_prime in sorted(plan.matrix_strategy):
        strategy = plan.matrix_strategy[(family, k_cap, k_prime)]
        lines.append(f"  rung {family} k<={k_cap} k'={k_prime}: "
                     f"matrix {strategy}")
    for name, seconds in sorted(breakdown["candidates"].items(),
                                key=lambda item: item[1]):
        marker = "->" if name == plan.executor else "  "
        lines.append(f"  {marker} {name:8s} {seconds * 1e3:10.3f} ms")
    return "\n".join(lines)


def _time_best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_calibration(*, sizes: tuple[int, ...] = (96, 256),
                    k: int = 8,
                    dtypes: Iterable[str] = ("float64", "float32"),
                    objectives: Iterable[str] | None = None,
                    executors: Iterable[str] = EXECUTOR_NAMES,
                    repeats: int = 2, seed: int = 0,
                    workers: int = 4) -> dict:
    """Measure this machine's kernel, solve and dispatch costs.

    The ``repro calibrate`` implementation.  Three measurement families,
    all on synthetic data sized like ladder rungs (seconds per run, not
    per benchmark suite — the whole calibration targets well under a
    minute):

    * **matrix** — time :meth:`PointSet.pairwise` per dtype at each size
      in *sizes*; the per-``n^2``-cell rate is the model's blocked-kernel
      coefficient.
    * **solve** — time :func:`solve_on_matrix` per objective on the
      largest matrix; the per-``k*n``-cell rate is the solve class
      coefficient.
    * **dispatch** — run the same one-query and eight-query batches
      through each requested executor on a small warm service (matrices
      pre-computed, process pool pre-warmed) and fit
      ``wall = dispatch + slope * serial_solve_seconds`` from the two
      points: the intercept is the executor's dispatch overhead, the
      slope its parallel solve scale.

    Returns the JSON-ready :meth:`CostModel.to_payload` block that
    :func:`repro.tuning.save_calibration` persists (profile format v3).
    """
    import numpy as np

    from repro.diversity.objectives import get_objective, list_objectives
    from repro.diversity.sequential.registry import solve_on_matrix
    from repro.metricspace.points import PointSet

    rng = np.random.default_rng(seed)
    model = CostModel.default()
    model.scale = 1.0

    for dtype in dtypes:
        rates = []
        for n in sizes:
            points = PointSet(
                rng.normal(size=(n, 3)).astype(np.dtype(dtype)))
            points.pairwise()  # warm allocator and kernel dispatch
            seconds = _time_best_of(points.pairwise, repeats)
            rates.append(seconds / (n * n))
        model.matrix_seconds_per_cell[str(dtype)] = float(np.median(rates))

    n = max(sizes)
    dist = PointSet(rng.normal(size=(n, 3))).pairwise()
    for name in (objectives if objectives is not None else list_objectives()):
        objective = get_objective(name)
        solve_on_matrix(dist, k, objective)  # warm
        seconds = _time_best_of(
            lambda objective=objective: solve_on_matrix(dist, k, objective),
            repeats)
        model.solve_seconds_per_cell[objective.name] = seconds / (k * n)

    executors = tuple(executors)
    if executors:
        _calibrate_dispatch(model, executors, repeats=repeats, seed=seed,
                            workers=workers, rng=rng)

    model.calibrated = True
    return model.to_payload()


def _calibrate_dispatch(model: CostModel, executors: tuple[str, ...],
                        *, repeats: int, seed: int, workers: int,
                        rng) -> None:
    """Fit per-executor ``(dispatch, solve_scale)`` from two batch sizes."""
    from repro.diversity.objectives import list_objectives
    from repro.metricspace.points import PointSet
    from repro.service.index import build_coreset_index
    from repro.service.service import DiversityService, Query

    points = PointSet(rng.normal(size=(600, 3)))
    index = build_coreset_index(points, 16, seed=seed)
    names = list_objectives()
    # Distinct (objective, k) pairs so no batch ever repeats a cache key;
    # the one-query and eight-query sets are disjoint per executor run.
    combos = [(names[i % len(names)], 9 + i % 8) for i in range(9)]
    small = [Query(*combos[0])]
    large = [Query(*combo) for combo in combos[1:]]

    walls: dict[str, tuple[float, float]] = {}
    for name in executors:
        with DiversityService(index, cache_size=256,
                              executor_workers=workers) as service:
            for rung in index.all_rungs():
                service._matrix_for(service._matrices, 0, rung)
            service.warm_executor(name, workers)
            best_small = best_large = float("inf")
            for round_ in range(max(repeats, 1)):
                # Fresh result-cache per repeat so every solve is real.
                service.cache = service.cache.successor()
                started = time.perf_counter()
                service.query_batch(small, executor=name)
                best_small = min(best_small,
                                 time.perf_counter() - started)
                service.cache = service.cache.successor()
                started = time.perf_counter()
                service.query_batch(large, executor=name)
                best_large = min(best_large,
                                 time.perf_counter() - started)
            walls[name] = (best_small, best_large)
            if name == "serial":
                # Every key is now cache-resident: replaying the batch
                # measures pure per-query bookkeeping (normalization,
                # routing, cache probes) with zero solve work.
                hit_wall = _time_best_of(
                    lambda service=service: service.query_batch(
                        large, executor=name), repeats)
                model.query_overhead_seconds = max(
                    hit_wall / len(large), 1e-7)

    reference = walls.get("serial")
    if reference is None:
        # Without a serial reference the intercept/slope fit has no
        # baseline; record the raw walls as dispatch overhead deltas.
        for name, (small_wall, _large_wall) in walls.items():
            model.dispatch_seconds[name] = small_wall
        return
    serial_small, serial_large = reference
    model.dispatch_seconds["serial"] = 0.0
    model.solve_scale["serial"] = 1.0
    denominator = max(serial_large - serial_small, _EPS_SECONDS)
    for name, (small_wall, large_wall) in walls.items():
        if name == "serial":
            continue
        slope = (large_wall - small_wall) / denominator
        slope = min(max(slope, 0.05), 4.0)
        model.solve_scale[name] = slope
        model.dispatch_seconds[name] = max(
            small_wall - slope * serial_small, 0.0)
