"""Core-set constructions — the paper's primary contribution.

Two families, one per computational model:

* **MapReduce / offline** (Section 5): :func:`~repro.coresets.gmm.gmm`
  (Gonzalez farthest-point greedy) for remote-edge and remote-cycle;
  :func:`~repro.coresets.gmm_ext.gmm_ext` adds per-center delegate points
  for the four objectives needing injective proxies (Lemma 2);
  :func:`~repro.coresets.gmm_gen.gmm_gen` keeps only delegate *counts*
  (generalized core-sets, Section 6).
* **Streaming** (Section 4): :class:`~repro.coresets.smm.SMM` — the
  doubling-algorithm variant of Charikar et al. — with the analogous
  :class:`~repro.coresets.smm_ext.SMMExt` and
  :class:`~repro.coresets.smm_gen.SMMGen` extensions.

On a metric space of doubling dimension ``D``, running any of these with
``k' = (c/eps')^D * k`` yields a ``(1 + eps)``-(composable) core-set for the
corresponding objectives (Theorems 1, 2, 4, 5).
"""

from repro.coresets.gmm import GMMResult, gmm, gmm_on_matrix
from repro.coresets.gmm_ext import gmm_ext
from repro.coresets.gmm_gen import gmm_gen
from repro.coresets.generalized import GeneralizedCoreset
from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.coresets.smm_gen import SMMGen
from repro.coresets.characterization import (
    coreset_range,
    coreset_farness,
    optimal_range_upper_bound,
    proxy_distance_bound,
    injective_proxy_distance_bound,
)
from repro.coresets.composable import (
    coreset_size_for,
    epsilon_prime_for,
    build_composable_coreset,
    union_coresets,
)

__all__ = [
    "GMMResult",
    "gmm",
    "gmm_on_matrix",
    "gmm_ext",
    "gmm_gen",
    "GeneralizedCoreset",
    "SMM",
    "SMMExt",
    "SMMGen",
    "coreset_range",
    "coreset_farness",
    "optimal_range_upper_bound",
    "proxy_distance_bound",
    "injective_proxy_distance_bound",
    "coreset_size_for",
    "epsilon_prime_for",
    "build_composable_coreset",
    "union_coresets",
]
