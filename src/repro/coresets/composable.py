"""Composable core-set helpers: parameter sizing and partition-wise builds.

:func:`coreset_size_for` computes the theoretical ``k'`` of Theorems 1-5
from ``(k, eps, D)``; experiments usually override it with the small
practical values Section 7 shows are sufficient.  :func:`build_composable_coreset`
applies the correct construction (GMM / GMM-EXT / GMM-GEN) to one partition,
and :func:`union_coresets` aggregates partition core-sets, mirroring the
composability definition (Definition 2).
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from repro.coresets.generalized import GeneralizedCoreset
from repro.coresets.gmm import gmm
from repro.coresets.gmm_ext import gmm_ext
from repro.coresets.gmm_gen import gmm_gen
from repro.diversity.objectives import Objective, get_objective
from repro.metricspace.points import PointSet
from repro.utils.validation import check_in_range, check_positive_int

Model = Literal["mapreduce", "streaming"]


def epsilon_prime_for(epsilon: float, alpha: float = 1.0) -> float:
    """Convert a target approximation slack ``eps`` into ``eps'``.

    Theorems 1-6 set ``1/(1 - eps') = 1 + eps/alpha``, i.e.
    ``eps' = eps / (alpha + eps)``; with ``alpha = 1`` this is the core-set
    lemmas' own relation ``(1 - eps') = 1/(1 + eps)``.
    """
    check_in_range(epsilon, "epsilon", 0.0, 1.0)
    if alpha < 1.0:
        raise ValueError(f"alpha must be at least 1, got {alpha}")
    return epsilon / (alpha + epsilon)


def coreset_size_for(k: int, epsilon: float, doubling_dimension: float,
                     objective: str | Objective, model: Model = "mapreduce",
                     alpha: float | None = None) -> int:
    """Theoretical ``k' = (c/eps')^D * k`` for the requested construction.

    ``c`` is 8/16 (MapReduce) or 32/64 (streaming) depending on whether the
    objective needs injective proxies.  This grows quickly with ``D``; the
    paper's experiments (and ours) show small constant multiples of ``k``
    already give excellent ratios, so treat this as an upper bound.
    """
    objective = get_objective(objective)
    check_positive_int(k, "k")
    if alpha is None:
        alpha = objective.sequential_alpha
    eps_prime = epsilon_prime_for(epsilon, alpha)
    if model == "mapreduce":
        constant = objective.mr_constant
    elif model == "streaming":
        constant = objective.streaming_constant
    else:
        raise ValueError(f"model must be 'mapreduce' or 'streaming', got {model!r}")
    return int(math.ceil((constant / eps_prime) ** doubling_dimension * k))


def practical_coreset_size(k: int, epsilon: float, doubling_dimension: float,
                           objective: str | Objective,
                           model: Model = "mapreduce",
                           base_multiplier: int = 4) -> int:
    """The ``k'`` a query actually needs: theory clamped to practice.

    :func:`coreset_size_for` grows like ``(c/eps')^D`` and is astronomically
    pessimistic for moderate ``D``; Section 7 shows small multiples of ``k``
    suffice — ``4k`` already gives ratios near 1.  So the effective
    multiplier starts at *base_multiplier* for the default slack
    (``eps = 1``) and widens as ``base_multiplier / eps`` for tighter
    requests, capped by the dimension band (``2 + 2D``, clipped to
    ``[2, 16]`` — higher-dimensional data benefits from more kernel
    points, the empirical lesson of Figures 1-2, but a query can never
    demand more than the band justifies).  The query-routing layer of
    :mod:`repro.service` uses this to pick the cheapest ladder rung that
    still covers a ``(k, eps)`` request: generous slack routes to the
    first covering rung, tight slack climbs the ladder.
    """
    check_positive_int(base_multiplier, "base_multiplier")
    theoretical = coreset_size_for(k, epsilon, doubling_dimension, objective,
                                   model=model)
    band = np.clip(2 + 2 * doubling_dimension, 2, 16)
    multiplier = np.clip(base_multiplier / epsilon, base_multiplier,
                         max(band, base_multiplier))
    return max(k, min(theoretical, int(multiplier) * k))


def ladder_parameters(k_max: int, multiplier: int = 4, growth: int = 2,
                      k_min: int = 4) -> list[tuple[int, int]]:
    """Ladder of ``(k_cap, k_prime)`` rungs covering queries with ``k <= k_max``.

    Composability (Definition 2) makes one core-set built for ``k'`` a valid
    substrate for *every* query with ``k <= k'``, so a build-once/serve-many
    index only needs a small geometric ladder of resolutions: rung caps grow
    by *growth* from *k_min* up to (and including) *k_max*, and each rung's
    kernel size is ``multiplier * k_cap`` (Figure 4 explores exactly these
    multiples).  Returns rungs sorted by increasing ``k_cap`` — i.e. by
    increasing query cost, since the round-2 solver is quadratic in ``k'``.

    >>> ladder_parameters(32)
    [(4, 16), (8, 32), (16, 64), (32, 128)]
    >>> ladder_parameters(24, multiplier=2, k_min=8)
    [(8, 16), (16, 32), (24, 48)]
    """
    check_positive_int(k_max, "k_max")
    check_positive_int(multiplier, "multiplier")
    check_positive_int(k_min, "k_min")
    if growth < 2:
        raise ValueError(f"growth must be at least 2, got {growth}")
    caps: list[int] = []
    cap = min(k_min, k_max)
    while cap < k_max:
        caps.append(cap)
        cap *= growth
    caps.append(k_max)
    return [(cap, multiplier * cap) for cap in caps]


def composable_coreset_indices(
    partition: PointSet, k: int, k_prime: int,
    objective: str | Objective,
    delegate_cap: int | None = None,
) -> np.ndarray:
    """Local row indices of the partition's composable core-set.

    Index-level form of :func:`build_composable_coreset` for the
    point-subset constructions (GMM / GMM-EXT).  The zero-copy MapReduce
    path uses this so reducers can reply with index sets into the shared
    dataset instead of shipping point rows back through IPC.  Generalized
    (multiplicity) core-sets are not index-representable; ask
    :func:`build_composable_coreset` for those.
    """
    objective = get_objective(objective)
    n = len(partition)
    if not objective.requires_injective_proxy:
        # The plain-GMM core-set must itself contain k points.
        if k_prime < k:
            raise ValueError(f"k' must be at least k, got k'={k_prime} < k={k}")
        if n <= k_prime:
            return np.arange(n, dtype=np.intp)
        return np.asarray(gmm(partition, k_prime).indices, dtype=np.intp)
    cap = k if delegate_cap is None else max(int(delegate_cap), 1)
    if n <= k_prime:
        return np.arange(n, dtype=np.intp)
    return np.asarray(gmm_ext(partition, cap, k_prime).indices, dtype=np.intp)


def build_composable_coreset(
    partition: PointSet, k: int, k_prime: int,
    objective: str | Objective,
    use_generalized: bool = False,
    delegate_cap: int | None = None,
) -> PointSet | GeneralizedCoreset:
    """Build the partition core-set prescribed for *objective*.

    * non-injective objectives (remote-edge, remote-cycle): plain ``GMM``;
    * injective objectives: ``GMM-EXT`` (delegates), or ``GMM-GEN``
      (multiplicities) when *use_generalized* is set.

    *delegate_cap* overrides the per-cluster delegate budget (defaults to
    ``k``); the randomized MapReduce algorithm of Theorem 7 passes the
    smaller ``Theta(max(log n, k/l))`` budget here.

    When the partition has at most ``k'`` points it is its own (perfect)
    core-set.
    """
    objective = get_objective(objective)
    n = len(partition)
    if objective.requires_injective_proxy and use_generalized:
        cap = k if delegate_cap is None else max(int(delegate_cap), 1)
        if n <= k_prime:
            return GeneralizedCoreset(
                points=partition.points,
                multiplicities=np.ones(n, dtype=np.int64),
                metric=partition.metric,
            )
        return gmm_gen(partition, cap, k_prime)
    indices = composable_coreset_indices(partition, k, k_prime, objective,
                                         delegate_cap=delegate_cap)
    if len(indices) == n:
        return partition  # the partition is its own (perfect) core-set
    return partition.subset(indices)


def merge_coresets(parts: list[PointSet], k: int, k_prime: int,
                   objective: str | Objective,
                   max_points: int | None = None) -> PointSet:
    """Union point-subset core-sets, re-reducing when the union is oversized.

    The incremental-maintenance form of composability (Definition 2): the
    union of valid ``(k, k')`` core-sets is itself a valid core-set of the
    concatenated data, so an index rung can absorb a core-set of freshly
    ingested points by plain union.  To keep rungs bounded across many
    such merges, a union larger than *max_points* is re-reduced with the
    family's own construction (:func:`build_composable_coreset`) — a
    core-set of a core-set, which composes with a summed slack.  With
    ``max_points=None`` the union is returned untouched.

    Used by :meth:`repro.service.index.CoresetIndex.extend`; only the
    point-subset families (GMM / GMM-EXT) are supported here, since
    generalized (multiplicity) core-sets cannot be re-reduced by a point
    construction.
    """
    for part in parts:
        if not isinstance(part, PointSet):
            raise ValueError(
                "merge_coresets supports point-subset core-sets only; "
                f"got {type(part).__name__}")
    union = union_coresets(parts)
    if max_points is not None and len(union) > max(int(max_points), k_prime):
        reduced = build_composable_coreset(union, k, k_prime, objective)
        assert isinstance(reduced, PointSet)
        return reduced
    return union  # type: ignore[return-value]


def union_coresets(parts: list[PointSet | GeneralizedCoreset]) -> PointSet | GeneralizedCoreset:
    """Union per-partition core-sets into the aggregate core-set.

    All parts must be of the same kind (plain point sets or generalized
    core-sets).
    """
    if not parts:
        raise ValueError("cannot union an empty list of core-sets")
    if isinstance(parts[0], GeneralizedCoreset):
        if not all(isinstance(part, GeneralizedCoreset) for part in parts):
            raise ValueError("cannot mix plain and generalized core-sets")
        return GeneralizedCoreset.union_all(parts)  # type: ignore[arg-type]
    union = parts[0]
    for part in parts[1:]:
        union = union.concat(part)  # type: ignore[union-attr]
    return union
