"""SMM: the streaming doubling core-set algorithm (Section 4).

SMM is a variant of the 8-approximation doubling algorithm for k-center of
Charikar et al. [13].  It maintains a set ``T`` of at most ``k' + 1``
centers and a distance threshold ``d`` that doubles whenever ``T``
overflows.  Each *phase* consists of

* a **merge step** — a greedy maximal independent set of the threshold
  graph on ``T`` (edges between centers within ``2d``), which shrinks ``T``
  while preserving coverage; and
* an **update step** — new stream points within ``4d`` of a current center
  are discarded (or absorbed by subclasses), farther points join ``T``.

The phase invariants (coverage within ``2d``, pairwise separation at least
``d``) yield the range bound ``r_T <= 8 r*_{k'}`` of [13], which combined
with the doubling-dimension argument of Lemma 3 gives the
``(eps'/2) rho*_k`` proxy-distance bound that makes ``T`` a
``(1 + eps)``-core-set (Theorem 1).

To guarantee ``|T| >= k`` at the end of the stream, the algorithm retains
the set ``M`` of centers removed by the most recent merge and pads from it
if needed.

Implementation notes
--------------------
* Points can be processed one at a time through :meth:`process` or in
  blocks through :meth:`process_batch`; either way the only state is
  ``O(k')`` points, so the class honestly simulates the streaming model
  (``repro.streaming.memory`` audits this).
* Centers live in a preallocated ``(k'+1, dim)`` buffer so the per-point
  distance kernel is a single vectorized call with no re-stacking.
* :meth:`process_batch` is the hot path: it classifies a whole block
  against the current centers with **one** ``Metric.cross`` call, absorbs
  every covered run in bulk, and touches Python-level control flow only
  for the rare survivors that become centers (the *covered-filter*
  invariant: absorbing a covered point never changes the center set, the
  threshold, or the coverage status of later points, so covered runs can
  be retired wholesale without replaying them).  Its results — centers,
  threshold, phase count, subclass payloads, and peak-memory accounting —
  are identical to sequential ingestion.
* Exact duplicate points are discarded during initialization (they can
  never increase any diversity measure beyond one copy; subclasses absorb
  them as delegates instead).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.points import PointSet
from repro.utils.validation import (as_float_array, check_points_array,
                                    check_positive_int)


class SMM:
    """One-pass streaming core-set for remote-edge and remote-cycle.

    Parameters
    ----------
    k:
        Target solution size; the returned core-set has at least ``k``
        points (stream length permitting).
    k_prime:
        Core-set size parameter ``k'`` (``k' >= k``); theory wants
        ``k' = (32/eps')^D * k``, practice is happy with small multiples
        of ``k`` (Section 7.1).
    metric:
        Metric instance or registry name.

    Example
    -------
    >>> smm = SMM(k=2, k_prime=4, metric="euclidean")
    >>> for x in [0.0, 1.0, 5.0, 9.0, 10.0]:
    ...     smm.process([x])
    >>> coreset = smm.finalize()
    >>> len(coreset) >= 2
    True
    """

    def __init__(self, k: int, k_prime: int, metric: str | Metric = "euclidean"):
        self.k = check_positive_int(k, "k")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        if self.k_prime < self.k:
            raise ValueError(f"k' must be at least k, got k'={k_prime} < k={k}")
        self.metric = get_metric(metric)
        self._capacity = self.k_prime + 1
        self._buffer: np.ndarray | None = None
        self._count = 0
        self._removed: list[np.ndarray] = []
        self._threshold: float = 0.0
        self._initialized = False
        self._finalized = False
        self._points_seen = 0
        self._phases = 0
        self._peak_memory = 0

    # -- public properties -----------------------------------------------------
    @property
    def threshold(self) -> float:
        """Current phase threshold ``d_i`` (0 until initialization ends)."""
        return self._threshold

    @property
    def phases(self) -> int:
        """Number of completed merge phases."""
        return self._phases

    @property
    def points_seen(self) -> int:
        """Number of stream points processed so far."""
        return self._points_seen

    @property
    def peak_memory_points(self) -> int:
        """Peak number of points held in memory at any time."""
        return self._peak_memory

    @property
    def num_centers(self) -> int:
        """Current number of centers in ``T``."""
        return self._count

    def centers(self) -> np.ndarray:
        """Snapshot of the current center set ``T`` (copy)."""
        if self._buffer is None:
            return np.empty((0, 0))
        return self._buffer[:self._count].copy()

    def memory_in_points(self) -> int:
        """Current number of points held (centers + merge leftovers)."""
        return self._count + len(self._removed)

    # -- subclass hooks ----------------------------------------------------------
    def _on_new_center(self, point: np.ndarray) -> None:
        """Called when *point* becomes a new center (subclass state)."""

    def _on_absorb(self, point: np.ndarray, center_position: int) -> None:
        """Called when *point* is covered by the center at *center_position*."""

    def _on_absorb_batch(self, points: np.ndarray, center_positions: np.ndarray) -> None:
        """Called when a block of covered *points* (rows, in stream order) is
        absorbed at once; ``center_positions[i]`` is the nearest center of
        row ``i``.  Subclasses with per-absorb state override this with a
        vectorized update; the default replays the per-point hook so
        subclasses that only override :meth:`_on_absorb` stay correct."""
        if type(self)._on_absorb is SMM._on_absorb:
            return  # the per-point hook is the base no-op; nothing to replay
        for row, position in zip(points, center_positions):
            self._on_absorb(row, int(position))

    def _on_merge_keep(self, old_positions: list[int]) -> None:
        """Called after a merge with the surviving old positions, in order."""

    def _on_merge_transfer(self, removed_old_position: int,
                           absorber_new_position: int) -> None:
        """Called when a removed center's payload moves to a survivor."""

    def _extra_memory_points(self) -> int:
        """Additional per-subclass memory, counted in points."""
        return 0

    # -- streaming interface ----------------------------------------------------
    def process(self, point: np.ndarray) -> None:
        """Feed one stream point into the sketch."""
        if self._finalized:
            raise NotFittedError("cannot process points after finalize()")
        point = as_float_array(point).reshape(-1)
        if self._buffer is None:
            self._buffer = np.empty((self._capacity, point.shape[0]),
                                    dtype=point.dtype)
        self._points_seen += 1
        if not self._initialized:
            self._process_initial(point)
        else:
            self._process_update(point)
        self._record_peak()

    def process_batch(self, points: np.ndarray) -> None:
        """Feed a block of stream points at once (the vectorized hot path).

        Equivalent to calling :meth:`process` on every row in order — the
        resulting centers, threshold, phases, subclass payloads, and peak
        memory are identical — but covered points are classified with one
        ``Metric.cross`` call per block instead of one kernel call per
        point, and absorbed in bulk through :meth:`_on_absorb_batch`.

        Accepts any ``(n, dim)`` array-like; a 1-d array of length ``n``
        is treated as ``n`` one-dimensional points, matching the row-wise
        reading of the per-point interface.  Empty blocks are no-ops.
        Unlike :meth:`process`, non-finite values are rejected eagerly.
        """
        if self._finalized:
            raise NotFittedError("cannot process points after finalize()")
        batch = as_float_array(points)
        if batch.size == 0:
            return
        batch = check_points_array(batch, "points")
        if self._buffer is None:
            self._buffer = np.empty((self._capacity, batch.shape[1]),
                                    dtype=batch.dtype)
        elif batch.shape[1] != self._buffer.shape[1]:
            raise ValidationError(
                f"points have dimension {batch.shape[1]}, "
                f"sketch expects {self._buffer.shape[1]}")
        index = 0
        total = batch.shape[0]
        # Initialization absorbs only exact duplicates and appends everything
        # else, so each row changes the center set; run it point-wise.
        while index < total and not self._initialized:
            self._points_seen += 1
            self._process_initial(batch[index])
            self._record_peak()
            index += 1
        while index < total:
            index = self._process_update_block(batch, index)

    def process_many(self, points: np.ndarray) -> None:
        """Deprecated alias for :meth:`process_batch`.

        .. deprecated::
            The historical implementation looped :meth:`process` row by
            row, re-validating and reshaping every point; use
            :meth:`process_batch`, which ingests the block vectorized with
            identical semantics.
        """
        warnings.warn(
            "SMM.process_many is deprecated; use process_batch, which "
            "ingests the block vectorized with identical semantics",
            DeprecationWarning, stacklevel=2,
        )
        self.process_batch(points)

    def finalize(self) -> PointSet:
        """Close the stream and return the core-set (``>= k`` points)."""
        self._finalized = True
        if self._buffer is None:
            raise NotFittedError("finalize() called before any point was processed")
        selected = [self._buffer[i] for i in range(self._count)]
        if len(selected) < self.k:
            # Pad from the most recent merge's leftovers; M ∪ I had k'+1 >= k
            # points, so enough padding always exists for streams >= k.
            needed = self.k - len(selected)
            selected.extend(self._removed[:needed])
        if len(selected) < self.k <= self._points_seen:
            # Streams containing exact duplicates can leave fewer than k
            # distinct points; replicate (faithfully — the input multiset
            # provably held duplicates) until k copies are available.
            cursor = 0
            while len(selected) < self.k:
                selected.append(selected[cursor])
                cursor += 1
        return PointSet(np.vstack(selected), self.metric)

    # -- internals ---------------------------------------------------------------
    def _record_peak(self) -> None:
        memory = self.memory_in_points() + self._extra_memory_points()
        if memory > self._peak_memory:
            self._peak_memory = memory

    def _distances_to_centers(self, point: np.ndarray) -> np.ndarray:
        return self.metric.point_to_set(point, self._buffer[:self._count])

    def _append_center(self, point: np.ndarray) -> None:
        self._buffer[self._count] = point
        self._count += 1
        self._on_new_center(point)

    def _process_initial(self, point: np.ndarray) -> None:
        if self._count:
            dist = self._distances_to_centers(point)
            nearest = int(dist.argmin())
            # Exact duplicate: absorb instead of keeping a zero-distance
            # center, which would wedge the doubling schedule at d = 0.
            # The Gram-expansion kernel can report a tiny *nonzero*
            # distance for bitwise-identical rows (while the pairwise
            # matrix used for the threshold reports exactly 0), so the
            # distance test alone is not enough — compare the rows too.
            if (float(dist[nearest]) == 0.0
                    or np.array_equal(point, self._buffer[nearest])):
                self._on_absorb(point, nearest)
                return
        self._append_center(point)
        if self._count == self._capacity:
            pair_dist = self.metric.pairwise(self._buffer[:self._count])
            iu, ju = np.triu_indices(self._count, k=1)
            self._threshold = float(pair_dist[iu, ju].min())
            self._initialized = True
            self._start_phase()

    def _process_update(self, point: np.ndarray) -> None:
        dist = self._distances_to_centers(point)
        nearest = int(dist.argmin())
        if float(dist[nearest]) > 4.0 * self._threshold:
            self._append_center(point)
            if self._count == self._capacity:
                self._threshold *= 2.0
                self._start_phase()
        else:
            self._on_absorb(point, nearest)

    def _process_update_block(self, batch: np.ndarray, start: int) -> int:
        """Ingest ``batch[start:]`` until the block ends or a merge rescales.

        Covered runs are absorbed wholesale; each uncovered survivor becomes
        a center and only its distances to the *remaining* rows are
        computed, folding into the tracked nearest-center state.  Ties keep
        the earlier center, exactly like ``argmin`` over a fresh distance
        vector, because survivors take over only when strictly closer.  A
        merge changes both the threshold and the center set, so the caller
        must re-classify the remainder; returns the first unprocessed index.
        """
        block = batch[start:]
        distances = self.metric.cross(block, self._buffer[:self._count])
        nearest = distances.argmin(axis=1)
        nearest_dist = distances[np.arange(block.shape[0]), nearest]
        limit = 4.0 * self._threshold
        covered = nearest_dist <= limit
        row = 0
        rows = block.shape[0]
        while row < rows:
            uncovered_ahead = np.flatnonzero(~covered[row:])
            stop = row + int(uncovered_ahead[0]) if uncovered_ahead.size else rows
            if stop > row:
                # Absorbing covered points never shrinks memory, so the peak
                # over the run equals the state after its last point.
                self._points_seen += stop - row
                self._on_absorb_batch(block[row:stop], nearest[row:stop])
                self._record_peak()
                row = stop
                if row >= rows:
                    break
            self._points_seen += 1
            self._append_center(block[row])
            row += 1
            if self._count == self._capacity:
                self._threshold *= 2.0
                self._start_phase()
                self._record_peak()
                return start + row
            self._record_peak()
            if row < rows:
                survivor = self._buffer[self._count - 1:self._count]
                extra = self.metric.cross(block[row:], survivor)[:, 0]
                closer = extra < nearest_dist[row:]
                tail_dist = nearest_dist[row:]
                tail_dist[closer] = extra[closer]
                nearest[row:][closer] = self._count - 1
                covered[row:][closer] = tail_dist[closer] <= limit
        return start + rows

    def _start_phase(self) -> None:
        """Run merge steps (doubling further if needed) until ``|T| <= k'``."""
        self._merge()
        while self._count == self._capacity:
            # The independent set can be the whole of T when all centers are
            # farther than 2d apart; double and merge again.
            if self._threshold > 0.0:
                self._threshold *= 2.0
            else:
                # d wedged at exactly 0 (cancellation in the distance
                # kernel can report zero separation for distinct
                # near-identical centers, making the initial threshold 0
                # while doubling is a no-op): restart the schedule from
                # the smallest positive separation.  One exists, or the
                # zero-limit merge above would have shrunk T.
                pair_dist = self.metric.pairwise(self._buffer[:self._count])
                iu, ju = np.triu_indices(self._count, k=1)
                gaps = pair_dist[iu, ju]
                self._threshold = float(gaps[gaps > 0.0].min())
            self._merge()
        self._phases += 1

    def _merge(self) -> None:
        """Greedy maximal independent set of the ``2d``-threshold graph."""
        pair_dist = self.metric.pairwise(self._buffer[:self._count])
        limit = 2.0 * self._threshold
        kept: list[int] = []
        removed: list[int] = []
        for position in range(self._count):
            if kept and float(pair_dist[position, kept].min()) <= limit:
                removed.append(position)
            else:
                kept.append(position)
        self._removed = [self._buffer[i].copy() for i in removed]
        self._on_merge_keep(kept)
        # Attribute each removed center to its nearest survivor (which is
        # within 2d by maximality of the independent set).
        for old_position in removed:
            absorber = int(np.asarray(pair_dist[old_position, kept]).argmin())
            self._on_merge_transfer(old_position, absorber)
        self._buffer[:len(kept)] = self._buffer[kept]
        self._count = len(kept)
