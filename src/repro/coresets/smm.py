"""SMM: the streaming doubling core-set algorithm (Section 4).

SMM is a variant of the 8-approximation doubling algorithm for k-center of
Charikar et al. [13].  It maintains a set ``T`` of at most ``k' + 1``
centers and a distance threshold ``d`` that doubles whenever ``T``
overflows.  Each *phase* consists of

* a **merge step** — a greedy maximal independent set of the threshold
  graph on ``T`` (edges between centers within ``2d``), which shrinks ``T``
  while preserving coverage; and
* an **update step** — new stream points within ``4d`` of a current center
  are discarded (or absorbed by subclasses), farther points join ``T``.

The phase invariants (coverage within ``2d``, pairwise separation at least
``d``) yield the range bound ``r_T <= 8 r*_{k'}`` of [13], which combined
with the doubling-dimension argument of Lemma 3 gives the
``(eps'/2) rho*_k`` proxy-distance bound that makes ``T`` a
``(1 + eps)``-core-set (Theorem 1).

To guarantee ``|T| >= k`` at the end of the stream, the algorithm retains
the set ``M`` of centers removed by the most recent merge and pads from it
if needed.

Implementation notes
--------------------
* Points are processed strictly one at a time through :meth:`process`; the
  only state is ``O(k')`` points, so the class honestly simulates the
  streaming model (``repro.streaming.memory`` audits this).
* Centers live in a preallocated ``(k'+1, dim)`` buffer so the per-point
  distance kernel is a single vectorized call with no re-stacking.
* Exact duplicate points are discarded during initialization (they can
  never increase any diversity measure beyond one copy; subclasses absorb
  them as delegates instead).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.points import PointSet
from repro.utils.validation import check_positive_int


class SMM:
    """One-pass streaming core-set for remote-edge and remote-cycle.

    Parameters
    ----------
    k:
        Target solution size; the returned core-set has at least ``k``
        points (stream length permitting).
    k_prime:
        Core-set size parameter ``k'`` (``k' >= k``); theory wants
        ``k' = (32/eps')^D * k``, practice is happy with small multiples
        of ``k`` (Section 7.1).
    metric:
        Metric instance or registry name.

    Example
    -------
    >>> smm = SMM(k=2, k_prime=4, metric="euclidean")
    >>> for x in [0.0, 1.0, 5.0, 9.0, 10.0]:
    ...     smm.process([x])
    >>> coreset = smm.finalize()
    >>> len(coreset) >= 2
    True
    """

    def __init__(self, k: int, k_prime: int, metric: str | Metric = "euclidean"):
        self.k = check_positive_int(k, "k")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        if self.k_prime < self.k:
            raise ValueError(f"k' must be at least k, got k'={k_prime} < k={k}")
        self.metric = get_metric(metric)
        self._capacity = self.k_prime + 1
        self._buffer: np.ndarray | None = None
        self._count = 0
        self._removed: list[np.ndarray] = []
        self._threshold: float = 0.0
        self._initialized = False
        self._finalized = False
        self._points_seen = 0
        self._phases = 0
        self._peak_memory = 0

    # -- public properties -----------------------------------------------------
    @property
    def threshold(self) -> float:
        """Current phase threshold ``d_i`` (0 until initialization ends)."""
        return self._threshold

    @property
    def phases(self) -> int:
        """Number of completed merge phases."""
        return self._phases

    @property
    def points_seen(self) -> int:
        """Number of stream points processed so far."""
        return self._points_seen

    @property
    def peak_memory_points(self) -> int:
        """Peak number of points held in memory at any time."""
        return self._peak_memory

    @property
    def num_centers(self) -> int:
        """Current number of centers in ``T``."""
        return self._count

    def centers(self) -> np.ndarray:
        """Snapshot of the current center set ``T`` (copy)."""
        if self._buffer is None:
            return np.empty((0, 0))
        return self._buffer[:self._count].copy()

    def memory_in_points(self) -> int:
        """Current number of points held (centers + merge leftovers)."""
        return self._count + len(self._removed)

    # -- subclass hooks ----------------------------------------------------------
    def _on_new_center(self, point: np.ndarray) -> None:
        """Called when *point* becomes a new center (subclass state)."""

    def _on_absorb(self, point: np.ndarray, center_position: int) -> None:
        """Called when *point* is covered by the center at *center_position*."""

    def _on_merge_keep(self, old_positions: list[int]) -> None:
        """Called after a merge with the surviving old positions, in order."""

    def _on_merge_transfer(self, removed_old_position: int,
                           absorber_new_position: int) -> None:
        """Called when a removed center's payload moves to a survivor."""

    def _extra_memory_points(self) -> int:
        """Additional per-subclass memory, counted in points."""
        return 0

    # -- streaming interface ----------------------------------------------------
    def process(self, point: np.ndarray) -> None:
        """Feed one stream point into the sketch."""
        if self._finalized:
            raise NotFittedError("cannot process points after finalize()")
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if self._buffer is None:
            self._buffer = np.empty((self._capacity, point.shape[0]))
        self._points_seen += 1
        if not self._initialized:
            self._process_initial(point)
        else:
            self._process_update(point)
        memory = self.memory_in_points() + self._extra_memory_points()
        if memory > self._peak_memory:
            self._peak_memory = memory

    def process_many(self, points: np.ndarray) -> None:
        """Feed a batch of points (row by row) — convenience for arrays."""
        for row in np.asarray(points, dtype=np.float64):
            self.process(row)

    def finalize(self) -> PointSet:
        """Close the stream and return the core-set (``>= k`` points)."""
        self._finalized = True
        if self._buffer is None:
            raise NotFittedError("finalize() called before any point was processed")
        selected = [self._buffer[i] for i in range(self._count)]
        if len(selected) < self.k:
            # Pad from the most recent merge's leftovers; M ∪ I had k'+1 >= k
            # points, so enough padding always exists for streams >= k.
            needed = self.k - len(selected)
            selected.extend(self._removed[:needed])
        if len(selected) < self.k <= self._points_seen:
            # Streams containing exact duplicates can leave fewer than k
            # distinct points; replicate (faithfully — the input multiset
            # provably held duplicates) until k copies are available.
            cursor = 0
            while len(selected) < self.k:
                selected.append(selected[cursor])
                cursor += 1
        return PointSet(np.vstack(selected), self.metric)

    # -- internals ---------------------------------------------------------------
    def _distances_to_centers(self, point: np.ndarray) -> np.ndarray:
        return self.metric.point_to_set(point, self._buffer[:self._count])

    def _append_center(self, point: np.ndarray) -> None:
        self._buffer[self._count] = point
        self._count += 1
        self._on_new_center(point)

    def _process_initial(self, point: np.ndarray) -> None:
        if self._count:
            dist = self._distances_to_centers(point)
            if float(dist.min()) == 0.0:
                # Exact duplicate: absorb instead of keeping a zero-distance
                # center, which would wedge the doubling schedule at d = 0.
                self._on_absorb(point, int(dist.argmin()))
                return
        self._append_center(point)
        if self._count == self._capacity:
            pair_dist = self.metric.pairwise(self._buffer[:self._count])
            iu, ju = np.triu_indices(self._count, k=1)
            self._threshold = float(pair_dist[iu, ju].min())
            self._initialized = True
            self._start_phase()

    def _process_update(self, point: np.ndarray) -> None:
        dist = self._distances_to_centers(point)
        nearest = int(dist.argmin())
        if float(dist[nearest]) > 4.0 * self._threshold:
            self._append_center(point)
            if self._count == self._capacity:
                self._threshold *= 2.0
                self._start_phase()
        else:
            self._on_absorb(point, nearest)

    def _start_phase(self) -> None:
        """Run merge steps (doubling further if needed) until ``|T| <= k'``."""
        self._merge()
        while self._count == self._capacity:
            # The independent set can be the whole of T when all centers are
            # farther than 2d apart; double and merge again.
            self._threshold *= 2.0
            self._merge()
        self._phases += 1

    def _merge(self) -> None:
        """Greedy maximal independent set of the ``2d``-threshold graph."""
        pair_dist = self.metric.pairwise(self._buffer[:self._count])
        limit = 2.0 * self._threshold
        kept: list[int] = []
        removed: list[int] = []
        for position in range(self._count):
            if kept and float(pair_dist[position, kept].min()) <= limit:
                removed.append(position)
            else:
                kept.append(position)
        self._removed = [self._buffer[i].copy() for i in removed]
        self._on_merge_keep(kept)
        # Attribute each removed center to its nearest survivor (which is
        # within 2d by maximality of the independent set).
        for old_position in removed:
            absorber = int(np.asarray(pair_dist[old_position, kept]).argmin())
            self._on_merge_transfer(old_position, absorber)
        self._buffer[:len(kept)] = self._buffer[kept]
        self._count = len(kept)
