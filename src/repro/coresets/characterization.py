"""Core-set characterization quantities (Section 3).

These functions compute the geometric quantities the paper's analysis is
built on — the *range* ``r_T``, the *farness* ``rho_T``, and the proxy
distances of Lemmas 1 and 2 — so tests and experiments can check the
sufficient core-set conditions directly rather than trusting the
constructions blindly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet


def coreset_range(points: PointSet, subset_indices: np.ndarray) -> float:
    """``r_T = max_{p in S} d(p, T)`` for ``T`` given by *subset_indices*.

    (The paper takes the max over ``S \\ T``; including ``T`` is harmless
    since members contribute zero.)
    """
    subset_indices = np.asarray(subset_indices, dtype=np.intp)
    if subset_indices.size == 0:
        raise ValidationError("core-set must contain at least one point")
    centers = points.points[subset_indices]
    dist = points.metric.cross(points.points, centers)
    return float(dist.min(axis=1).max())


def coreset_farness(points: PointSet, subset_indices: np.ndarray) -> float:
    """``rho_T = min_{c in T} d(c, T \\ {c})`` — minimum pairwise distance."""
    subset_indices = np.asarray(subset_indices, dtype=np.intp)
    if subset_indices.size < 2:
        raise ValidationError("farness needs at least two core-set points")
    sub = points.subset(subset_indices)
    dist = sub.pairwise()
    iu, ju = np.triu_indices(len(sub), k=1)
    return float(dist[iu, ju].min())


def optimal_range_upper_bound(points: PointSet, k: int,
                              gmm_indices: np.ndarray) -> float:
    """Upper bound ``r*_k <= r_T`` witnessed by a k-point GMM prefix.

    GMM guarantees ``r_T <= 2 r*_k``, so the returned value over-estimates
    the optimal range by at most a factor two — enough for the sanity
    checks in tests.
    """
    return coreset_range(points, np.asarray(gmm_indices[:k], dtype=np.intp))


def proxy_distance_bound(points: PointSet, coreset: PointSet,
                         candidate_indices: np.ndarray) -> float:
    """``max_x d(x, T)`` over the candidate points — Lemma 1's quantity.

    For the non-injective objectives (remote-edge, remote-cycle) the proxy
    of ``x`` is simply its nearest core-set point, so the relevant bound is
    the maximum nearest-neighbour distance of the candidate set into the
    core-set.
    """
    candidate_indices = np.asarray(candidate_indices, dtype=np.intp)
    candidates = points.points[candidate_indices]
    dist = points.metric.cross(candidates, coreset.points)
    return float(dist.min(axis=1).max())


def injective_proxy_distance_bound(points: PointSet, coreset: PointSet,
                                   candidate_indices: np.ndarray) -> float:
    """Smallest ``delta`` admitting an *injective* proxy within distance ``delta``.

    Lemma 2 needs distinct core-set proxies for the candidate points.  We
    compute, by binary search over candidate-to-core-set distances, the
    smallest threshold at which a perfect matching of candidates into the
    core-set exists (Hall's condition checked by Hopcroft-Karp-style
    augmenting paths on the threshold bipartite graph).

    Returns ``inf`` when the core-set is smaller than the candidate set.
    """
    candidate_indices = np.asarray(candidate_indices, dtype=np.intp)
    k = candidate_indices.size
    if len(coreset) < k:
        return float("inf")
    candidates = points.points[candidate_indices]
    dist = points.metric.cross(candidates, coreset.points)
    thresholds = np.unique(dist)
    lo, hi = 0, len(thresholds) - 1
    if not _has_perfect_matching(dist, float(thresholds[hi])):
        return float("inf")
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_perfect_matching(dist, float(thresholds[mid])):
            hi = mid
        else:
            lo = mid + 1
    return float(thresholds[lo])


def _has_perfect_matching(dist: np.ndarray, threshold: float) -> bool:
    """Does the bipartite graph ``dist <= threshold`` match every left node?"""
    k, m = dist.shape
    adjacency = [np.flatnonzero(dist[i] <= threshold) for i in range(k)]
    match_right = np.full(m, -1, dtype=np.intp)

    def augment(left: int, visited: np.ndarray) -> bool:
        for right in adjacency[left]:
            if visited[right]:
                continue
            visited[right] = True
            if match_right[right] == -1 or augment(int(match_right[right]), visited):
                match_right[right] = left
                return True
        return False

    for left in range(k):
        if not augment(left, np.zeros(m, dtype=bool)):
            return False
    return True
