"""GMM-EXT: delegate-augmented core-sets (Algorithm 1 of the paper).

For the four objectives whose core-set proxy function must be injective
(remote-clique, remote-star, remote-bipartition, remote-tree), a kernel of
``k'`` GMM centers is not enough: an optimal solution may place several of
its ``k`` points inside one kernel cluster, and they all need *distinct*
nearby proxies.  GMM-EXT therefore clusters the input around the kernel and
keeps, from each cluster, its center plus up to ``k - 1`` additional
delegate points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coresets.gmm import GMMResult, gmm
from repro.metricspace.points import PointSet
from repro.utils.validation import check_k_le_n, check_positive_int


@dataclass(frozen=True)
class GMMExtResult:
    """Outcome of GMM-EXT.

    Attributes
    ----------
    indices:
        All selected indices (kernel centers and delegates), kernel-cluster
        by kernel-cluster.
    kernel:
        The underlying :class:`~repro.coresets.gmm.GMMResult` for ``k'``.
    cluster_sizes:
        ``cluster_sizes[j]`` is the number of selected points (center plus
        delegates) contributed by kernel cluster ``j``; always in
        ``[1, k]``.
    """

    indices: np.ndarray
    kernel: GMMResult
    cluster_sizes: np.ndarray


def gmm_ext(points: PointSet, k: int, k_prime: int,
            first_index: int | None = None) -> GMMExtResult:
    """Run GMM-EXT(S, k, k'): kernel of ``k'`` centers + up to ``k-1`` delegates each.

    The clustering assigns each point to its closest kernel center with ties
    broken toward earlier centers, exactly as the sets ``C_j`` of
    Algorithm 1.  "Arbitrary" delegates are taken in input order, which
    keeps the construction deterministic.

    The output size is at most ``k * k'`` (Theorem 5's core-set size).
    """
    check_positive_int(k, "k")
    k_prime = check_k_le_n(k_prime, len(points), what="kernel centers")
    # Note: k' < k is legal here — the delegate sets guarantee at least
    # min(n, k) output points even from a single kernel cluster.
    kernel = gmm(points, k_prime, first_index=first_index)
    selected: list[int] = []
    cluster_sizes = np.zeros(k_prime, dtype=np.int64)
    for j in range(k_prime):
        center = int(kernel.indices[j])
        members = np.flatnonzero(kernel.assignment == j)
        # The center itself belongs to its own cluster; take it first, then
        # up to k - 1 other members in input order.
        delegates = [center]
        for member in members:
            if len(delegates) >= k:
                break
            if member != center:
                delegates.append(int(member))
        selected.extend(delegates)
        cluster_sizes[j] = len(delegates)
    return GMMExtResult(
        indices=np.asarray(selected, dtype=np.intp),
        kernel=kernel,
        cluster_sizes=cluster_sizes,
    )
