"""SMM-EXT: streaming core-sets with per-center delegate sets (Section 4).

SMM-EXT runs the same doubling schedule as :class:`~repro.coresets.smm.SMM`
but keeps, for every center ``t``, a set ``E_t`` of up to ``k`` nearby
delegate points (including ``t`` itself).  When a merge removes a center its
delegates are inherited by a surviving center within ``2d``; when an update
point is absorbed it joins its nearest center's delegate set if there is
room.  The union of the delegate sets is the output, and Lemma 4 shows it
admits an *injective* proxy function from any ``k``-point subset — the
property the remote-clique / star / bipartition / tree core-sets need
(Theorem 2).

Memory is ``O(k' * k)`` points.

Note: the paper prints the merge-transfer count as
``max{|E_t1|, k - |E_t2|}``; we implement the evident intent
``min{|E_t1|, k - |E_t2|}`` (fill the survivor up to ``k``), which is what
the proof of Lemma 4 relies on — see DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.coresets.smm import SMM
from repro.metricspace.distance import Metric
from repro.metricspace.points import PointSet


class SMMExt(SMM):
    """One-pass streaming core-set for the injective-proxy objectives.

    The interface matches :class:`SMM`; :meth:`finalize` returns the union
    of the delegate sets, grouped center by center.

    Example
    -------
    >>> sketch = SMMExt(k=2, k_prime=3)
    >>> sketch.process_batch([[0.0], [1.0], [5.0], [9.0], [10.0]])
    >>> len(sketch.finalize()) >= 2
    True
    """

    def __init__(self, k: int, k_prime: int, metric: str | Metric = "euclidean"):
        super().__init__(k, k_prime, metric)
        # _delegates[i] holds E_t for the center at position i; each list
        # starts with the center itself and never exceeds k points.
        self._delegates: list[list[np.ndarray]] = []
        self._old_delegates: list[list[np.ndarray]] = []

    # -- SMM hooks --------------------------------------------------------------
    # Stored delegates are copies: the hooks receive row views into the
    # caller's (possibly large) stream block, and retaining a view would
    # pin the whole block in memory, breaking the O(k' k)-points model.
    def _on_new_center(self, point: np.ndarray) -> None:
        self._delegates.append([point.copy()])

    def _on_absorb(self, point: np.ndarray, center_position: int) -> None:
        bucket = self._delegates[center_position]
        if len(bucket) < self.k:
            bucket.append(point.copy())

    def _on_absorb_batch(self, points: np.ndarray, center_positions: np.ndarray) -> None:
        # Per center, the earliest rows of the block fill the remaining
        # room — the same points the per-point hook would have kept, since
        # absorbs never reorder and buckets only grow.
        for position in np.unique(center_positions):
            bucket = self._delegates[int(position)]
            room = self.k - len(bucket)
            if room <= 0:
                continue
            chosen = np.flatnonzero(center_positions == position)[:room]
            bucket.extend(points[row].copy() for row in chosen)

    def _on_merge_keep(self, old_positions: list[int]) -> None:
        self._old_delegates = self._delegates
        self._delegates = [self._old_delegates[i] for i in old_positions]

    def _on_merge_transfer(self, removed_old_position: int,
                           absorber_new_position: int) -> None:
        source = self._old_delegates[removed_old_position]
        target = self._delegates[absorber_new_position]
        room = self.k - len(target)
        if room > 0:
            target.extend(source[:room])

    def _extra_memory_points(self) -> int:
        # Delegates beyond the center itself are extra stored points.
        return sum(max(len(bucket) - 1, 0) for bucket in self._delegates)

    # -- output -------------------------------------------------------------------
    def finalize(self) -> PointSet:
        """Union of the delegate sets ``T' = ∪_t E_t`` (``>= k`` points)."""
        self._finalized = True
        selected: list[np.ndarray] = []
        for bucket in self._delegates:
            selected.extend(bucket)
        if len(selected) < self.k:
            # Tiny streams only: fall back to merge leftovers like SMM.
            needed = self.k - len(selected)
            selected.extend(self._removed[:needed])
        if not selected:
            raise ValueError("finalize() called before any point was processed")
        if len(selected) < self.k <= self.points_seen:
            # Duplicate-heavy streams: replicate (the input held duplicates).
            cursor = 0
            while len(selected) < self.k:
                selected.append(selected[cursor])
                cursor += 1
        return PointSet(np.vstack(selected), self.metric)

    def delegate_sizes(self) -> list[int]:
        """Current ``|E_t|`` per center — used by tests and diagnostics."""
        return [len(bucket) for bucket in self._delegates]
