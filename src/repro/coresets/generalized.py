"""Generalized core-sets: kernel points with multiplicities (Section 6).

A generalized core-set represents the delegate-augmented core-set of
GMM-EXT *implicitly*: instead of storing up to ``k - 1`` delegates per
kernel point it stores a single integer multiplicity.  The expansion of the
core-set treats ``m_p`` replicas of ``p`` as distinct points at mutual
distance zero, and Lemma 7 bounds the diversity loss when replicas are later
re-materialized by *delta-instantiation* with true input points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.metricspace.distance import Metric
from repro.metricspace.points import PointSet
from repro.utils.validation import as_float_array


@dataclass
class GeneralizedCoreset:
    """A set of ``(point, multiplicity)`` pairs over a shared metric.

    Attributes
    ----------
    points:
        ``(s, d)`` array of distinct kernel points.
    multiplicities:
        ``(s,)`` positive integer array; ``m(T) = multiplicities.sum()``.
    metric:
        The metric the kernel points live in.
    """

    points: np.ndarray
    multiplicities: np.ndarray
    metric: Metric

    def __post_init__(self) -> None:
        self.points = as_float_array(self.points)
        self.multiplicities = np.asarray(self.multiplicities, dtype=np.int64)
        if self.points.ndim != 2:
            raise ValidationError("kernel points must form a 2-d array")
        if self.multiplicities.shape != (self.points.shape[0],):
            raise ValidationError("one multiplicity is required per kernel point")
        if np.any(self.multiplicities <= 0):
            raise ValidationError("multiplicities must be positive")

    # -- sizes ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """``s(T)``: number of stored pairs."""
        return int(self.points.shape[0])

    @property
    def expanded_size(self) -> int:
        """``m(T)``: total multiplicity."""
        return int(self.multiplicities.sum())

    def __len__(self) -> int:
        return self.size

    # -- views ---------------------------------------------------------------
    def as_point_set(self) -> PointSet:
        """The kernel points (multiplicities dropped) as a :class:`PointSet`."""
        return PointSet(self.points, self.metric)

    def expansion_owners(self) -> np.ndarray:
        """Kernel index owning each replica of the expansion, length ``m(T)``."""
        return np.repeat(np.arange(self.size), self.multiplicities)

    def expanded_distance_matrix(self) -> np.ndarray:
        """Dense ``m(T) x m(T)`` distance matrix of the expansion.

        Replicas of the same kernel point are at distance zero, replicas of
        different kernel points inherit the kernel distance.
        """
        owners = self.expansion_owners()
        kernel_dist = self.metric.pairwise(self.points)
        return kernel_dist[np.ix_(owners, owners)]

    # -- algebra ---------------------------------------------------------------
    def union(self, other: "GeneralizedCoreset") -> "GeneralizedCoreset":
        """Concatenate two generalized core-sets (disjoint kernels assumed).

        Used to aggregate per-partition core-sets in MapReduce round two;
        partitions are disjoint so kernel points never collide.
        """
        if type(other.metric) is not type(self.metric):
            raise ValidationError("cannot union generalized core-sets over different metrics")
        return GeneralizedCoreset(
            points=np.vstack([self.points, other.points]),
            multiplicities=np.concatenate([self.multiplicities, other.multiplicities]),
            metric=self.metric,
        )

    def coherent_subset(self, kernel_indices: np.ndarray,
                        counts: np.ndarray) -> "GeneralizedCoreset":
        """The coherent subset taking ``counts[i]`` replicas of kernel ``i``.

        Enforces the coherence condition ``counts <= multiplicities`` of
        Section 6 (written ``T1 ⊑ T2`` in the paper).
        """
        kernel_indices = np.asarray(kernel_indices, dtype=np.intp)
        counts = np.asarray(counts, dtype=np.int64)
        if np.any(counts > self.multiplicities[kernel_indices]):
            raise ValidationError("coherent subset cannot exceed stored multiplicities")
        keep = counts > 0
        return GeneralizedCoreset(
            points=self.points[kernel_indices[keep]],
            multiplicities=counts[keep],
            metric=self.metric,
        )

    @staticmethod
    def union_all(parts: list["GeneralizedCoreset"]) -> "GeneralizedCoreset":
        """Union an arbitrary number of generalized core-sets."""
        if not parts:
            raise ValidationError("cannot union an empty list of generalized core-sets")
        result = parts[0]
        for part in parts[1:]:
            result = result.union(part)
        return result
