"""The GMM farthest-point greedy (Gonzalez 1985).

``GMM(S, k)`` starts from an arbitrary point and repeatedly adds the point
farthest from the current selection.  It is simultaneously

* a 2-approximation for the k-center problem (``r_T <= 2 r*_k``), and
* an *anticover*: every prefix satisfies ``r_prefix <= d_j <= rho_prefix``,
  where ``d_j`` is the distance of the j-th selected point from the earlier
  ones.

Those two facts drive every MapReduce core-set bound in the paper
(Lemmas 5 and 6), and make ``GMM(S, k)`` itself the classical sequential
2-approximation for remote-edge.

The implementation maintains a running min-distance vector, so selecting
``k`` centers from ``n`` points costs ``O(nk)`` vectorized distance
evaluations and never materializes the full ``n x n`` matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import as_float_array, check_k_le_n


@dataclass(frozen=True)
class GMMResult:
    """Outcome of a GMM run.

    Attributes
    ----------
    indices:
        Selected point indices, in selection order.
    anticover_radii:
        ``radii[j]`` is the distance of the j-th selected point from the
        previously selected ones (``radii[0] = inf``).  Non-increasing.
    min_dist:
        Distance of *every* input point to the selected set; its maximum is
        the range ``r_T`` of the selection.
    assignment:
        For every input point, the position (in ``indices``) of its nearest
        selected center, with ties broken toward the earlier center —
        exactly the clustering used by GMM-EXT (Algorithm 1).
    """

    indices: np.ndarray
    anticover_radii: np.ndarray
    min_dist: np.ndarray
    assignment: np.ndarray

    @property
    def range(self) -> float:
        """``r_T = max_p d(p, T)`` over the whole input."""
        return float(self.min_dist.max())

    def prefix_radius(self, k: int) -> float:
        """``d_k``: the anticover radius after selecting ``k`` centers.

        Equals the distance of the (k+1)-st center from the first ``k``,
        i.e. the range upper bound for the k-prefix; ``inf`` when ``k`` is 0.
        """
        if k <= 0:
            return float("inf")
        if k >= len(self.indices):
            return self.range
        return float(self.anticover_radii[k])


def gmm(points: PointSet, k: int, first_index: int | None = None,
        seed: RngLike = None) -> GMMResult:
    """Run the farthest-point greedy, selecting ``k`` centers from *points*.

    Parameters
    ----------
    points:
        The input set.
    k:
        Number of centers to select (``1 <= k <= n``).
    first_index:
        Index of the initial (arbitrary) center.  Defaults to ``0`` for
        determinism; pass ``seed`` instead for a random start.
    seed:
        If given and *first_index* is ``None``, the initial center is drawn
        uniformly at random.

    Example
    -------
    >>> ps = PointSet([[0.0], [1.0], [10.0]], metric="euclidean")
    >>> list(gmm(ps, 2).indices)
    [0, 2]
    """
    n = len(points)
    k = check_k_le_n(k, n, what="centers")
    if first_index is None:
        first_index = int(ensure_rng(seed).integers(0, n)) if seed is not None else 0
    if not 0 <= first_index < n:
        raise ValueError(f"first_index {first_index} out of range [0, {n})")

    indices = np.empty(k, dtype=np.intp)
    radii = np.empty(k, dtype=np.float64)
    indices[0] = first_index
    radii[0] = np.inf
    min_dist = points.distances_to(points[first_index])
    assignment = np.zeros(n, dtype=np.intp)
    for j in range(1, k):
        nxt = int(np.argmax(min_dist))
        indices[j] = nxt
        radii[j] = float(min_dist[nxt])
        dist = points.distances_to(points[nxt])
        # Strict '<' keeps ties assigned to the earlier center, matching the
        # tie-breaking rule of Algorithm 1 in the paper.
        closer = dist < min_dist
        assignment[closer] = j
        np.minimum(min_dist, dist, out=min_dist)
    return GMMResult(indices=indices, anticover_radii=radii,
                     min_dist=min_dist, assignment=assignment)


def gmm_on_matrix(dist: np.ndarray, k: int, first_index: int = 0) -> np.ndarray:
    """Farthest-point greedy on a precomputed distance matrix.

    Used by the sequential solvers, which operate on (small) core-sets whose
    full pairwise matrix is cheap.  Rows/columns at distance zero (multiset
    copies) are handled naturally: a copy is selected only when nothing
    farther remains.

    Returns the selected indices in selection order.
    """
    dist = as_float_array(dist)
    n = dist.shape[0]
    k = check_k_le_n(k, n, what="centers")
    if not 0 <= first_index < n:
        raise ValueError(f"first_index {first_index} out of range [0, {n})")
    indices = np.empty(k, dtype=np.intp)
    indices[0] = first_index
    min_dist = dist[first_index].copy()
    for j in range(1, k):
        nxt = int(np.argmax(min_dist))
        indices[j] = nxt
        np.minimum(min_dist, dist[nxt], out=min_dist)
    return indices
