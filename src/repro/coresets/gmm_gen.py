"""GMM-GEN: the generalized (multiplicity-only) core-set construction (§6.2).

GMM-GEN behaves like GMM-EXT but, instead of storing up to ``k - 1``
delegates per kernel center, it records only *how many* delegates each
center would have kept.  The result is a
:class:`~repro.coresets.generalized.GeneralizedCoreset` of size ``s(T) = k'``
and expanded size ``m(T) <= k * k'`` — the key ingredient of the 3-round
MapReduce algorithm (Theorem 10).
"""

from __future__ import annotations

import numpy as np

from repro.coresets.generalized import GeneralizedCoreset
from repro.coresets.gmm import gmm
from repro.metricspace.points import PointSet
from repro.utils.validation import check_k_le_n, check_positive_int


def gmm_gen(points: PointSet, k: int, k_prime: int,
            first_index: int | None = None) -> GeneralizedCoreset:
    """Run GMM-GEN(S, k, k'): kernel centers with delegate *counts*.

    For each kernel cluster ``C_j`` the stored multiplicity is
    ``min(|C_j|, k)`` — the size of the delegate set ``E_j`` that GMM-EXT
    would have kept.
    """
    check_positive_int(k, "k")
    k_prime = check_k_le_n(k_prime, len(points), what="kernel centers")
    # As with GMM-EXT, k' < k is legal: multiplicities cover the shortfall.
    kernel = gmm(points, k_prime, first_index=first_index)
    cluster_counts = np.bincount(kernel.assignment, minlength=k_prime)
    multiplicities = np.minimum(cluster_counts, k).astype(np.int64)
    # Every kernel center covers at least itself.
    multiplicities = np.maximum(multiplicities, 1)
    return GeneralizedCoreset(
        points=points.points[kernel.indices],
        multiplicities=multiplicities,
        metric=points.metric,
    )
