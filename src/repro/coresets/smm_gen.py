"""SMM-GEN: streaming *generalized* core-sets (Section 6.1, Theorem 9).

SMM-GEN is SMM-EXT with delegate sets replaced by delegate *counts*: the
memory drops from ``O(k' k)`` to ``O(k')`` points, matching the remote-edge
bound, at the price of a second pass to re-materialize actual delegate
points (the *delta-instantiation* of Lemma 7).  The two-pass streaming
driver lives in :mod:`repro.streaming.algorithm`.
"""

from __future__ import annotations

import numpy as np

from repro.coresets.generalized import GeneralizedCoreset
from repro.coresets.smm import SMM
from repro.metricspace.distance import Metric


class SMMGen(SMM):
    """One-pass streaming sketch producing a generalized core-set.

    :meth:`finalize_generalized` returns the
    :class:`~repro.coresets.generalized.GeneralizedCoreset` of kernel points
    and multiplicities, plus the radius bound ``r_T <= 4 d_ell`` needed by
    the instantiation pass.
    """

    def __init__(self, k: int, k_prime: int, metric: str | Metric = "euclidean"):
        super().__init__(k, k_prime, metric)
        # _counts[i] = multiplicity m_t for the center at position i
        # (capped at k, always >= 1 for the center itself).
        self._counts: list[int] = []
        self._old_counts: list[int] = []

    # -- SMM hooks --------------------------------------------------------------
    def _on_new_center(self, point: np.ndarray) -> None:
        self._counts.append(1)

    def _on_absorb(self, point: np.ndarray, center_position: int) -> None:
        if self._counts[center_position] < self.k:
            self._counts[center_position] += 1

    def _on_absorb_batch(self, points: np.ndarray, center_positions: np.ndarray) -> None:
        # Capped increments commute, so a histogram of the block followed by
        # clamping at k matches the per-point hook exactly.
        absorbed = np.bincount(center_positions, minlength=len(self._counts))
        for position in np.flatnonzero(absorbed):
            self._counts[position] = min(
                self.k, self._counts[position] + int(absorbed[position]))

    def _on_merge_keep(self, old_positions: list[int]) -> None:
        self._old_counts = self._counts
        self._counts = [self._old_counts[i] for i in old_positions]

    def _on_merge_transfer(self, removed_old_position: int,
                           absorber_new_position: int) -> None:
        transferred = min(
            self._old_counts[removed_old_position],
            self.k - self._counts[absorber_new_position],
        )
        if transferred > 0:
            self._counts[absorber_new_position] += transferred

    # -- output -------------------------------------------------------------------
    def radius_bound(self) -> float:
        """``4 d_ell`` — upper bound on the distance from any stream point
        to its nearest kernel point, used as ``delta`` by instantiation."""
        return 4.0 * self._threshold if self._initialized else 0.0

    def finalize_generalized(self) -> GeneralizedCoreset:
        """Close the stream and return the generalized core-set."""
        self._finalized = True
        if self.num_centers == 0:
            raise ValueError("finalize called before any point was processed")
        return GeneralizedCoreset(
            points=self.centers(),
            multiplicities=np.asarray(self._counts, dtype=np.int64),
            metric=self.metric,
        )

    def finalize(self):  # pragma: no cover - guidance only
        raise NotImplementedError(
            "SMMGen produces a generalized core-set; call finalize_generalized()"
        )
