"""repro — diversity maximization with core-sets in Streaming and MapReduce.

A faithful, from-scratch Python reproduction of

    M. Ceccarello, A. Pietracaprina, G. Pucci, E. Upfal.
    "MapReduce and Streaming Algorithms for Diversity Maximization in
    Metric Spaces of Bounded Doubling Dimension." PVLDB 10(5), 2017.

Quickstart
----------
>>> import numpy as np
>>> from repro import PointSet, MRDiversityMaximizer
>>> points = PointSet(np.random.default_rng(0).normal(size=(1000, 3)))
>>> algo = MRDiversityMaximizer(k=8, k_prime=32, objective="remote-edge",
...                             parallelism=4)
>>> result = algo.run(points)
>>> result.k
8

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.metricspace import (
    Metric,
    EuclideanMetric,
    ManhattanMetric,
    ChebyshevMetric,
    CosineDistance,
    JaccardDistance,
    HammingDistance,
    get_metric,
    PointSet,
    estimate_doubling_dimension,
)
from repro.diversity import (
    Objective,
    get_objective,
    list_objectives,
    evaluate_diversity,
    divk_exact,
    solve_sequential,
)
from repro.coresets import (
    gmm,
    gmm_ext,
    gmm_gen,
    GeneralizedCoreset,
    SMM,
    SMMExt,
    SMMGen,
    coreset_size_for,
)
from repro.streaming import (
    ArrayStream,
    IteratorStream,
    ShuffledStream,
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.mapreduce import (
    MapReduceEngine,
    MRDiversityMaximizer,
)
from repro.baselines import (
    AFZDiversityMaximizer,
    IMMMStreamingMaximizer,
)
from repro.datasets import (
    sphere_shell,
    uniform_cube,
    gaussian_clusters,
    zipf_bag_of_words,
)
from repro.clustering import kcenter_greedy, kcenter_streaming
from repro.diversity.matroid import (
    PartitionMatroid,
    TruncatedMatroid,
    UniformMatroid,
    solve_matroid_clique,
)
from repro.tuning import recommend_k_prime
from repro.service import (
    CoresetIndex,
    DiversityService,
    build_coreset_index,
    load_index,
    save_index,
)

__version__ = "1.8.0"

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "CosineDistance",
    "JaccardDistance",
    "HammingDistance",
    "get_metric",
    "PointSet",
    "estimate_doubling_dimension",
    "Objective",
    "get_objective",
    "list_objectives",
    "evaluate_diversity",
    "divk_exact",
    "solve_sequential",
    "gmm",
    "gmm_ext",
    "gmm_gen",
    "GeneralizedCoreset",
    "SMM",
    "SMMExt",
    "SMMGen",
    "coreset_size_for",
    "ArrayStream",
    "IteratorStream",
    "ShuffledStream",
    "StreamingDiversityMaximizer",
    "TwoPassStreamingDiversityMaximizer",
    "MapReduceEngine",
    "MRDiversityMaximizer",
    "AFZDiversityMaximizer",
    "IMMMStreamingMaximizer",
    "sphere_shell",
    "uniform_cube",
    "gaussian_clusters",
    "zipf_bag_of_words",
    "kcenter_greedy",
    "kcenter_streaming",
    "PartitionMatroid",
    "TruncatedMatroid",
    "UniformMatroid",
    "solve_matroid_clique",
    "recommend_k_prime",
    "CoresetIndex",
    "DiversityService",
    "build_coreset_index",
    "load_index",
    "save_index",
    "__version__",
]
