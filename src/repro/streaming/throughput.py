"""Streaming kernel throughput measurement (Figure 3).

The paper reports the rate sustained by the core-set construction itself,
"ignoring the cost of streaming data from memory": we therefore time the
aggregate of the sketch's ``process`` / ``process_batch`` calls, not the
surrounding loop.  Pass ``batch_size`` to measure the vectorized ingestion
path; it produces the same sketch state, so batched and per-point reports
are directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.coresets.smm import SMM
from repro.streaming.stream import Stream
from repro.utils.validation import as_float_array


@dataclass(frozen=True)
class ThroughputReport:
    """Result of one throughput measurement.

    ``batch_size`` is 0 for point-at-a-time ingestion, else the block size
    fed to ``process_batch``.
    """

    points: int
    kernel_seconds: float
    wall_seconds: float
    batch_size: int = 0

    @property
    def kernel_points_per_second(self) -> float:
        """Throughput of the sketch kernel alone (Figure 3's metric)."""
        if self.kernel_seconds <= 0.0:
            return float("inf")
        return self.points / self.kernel_seconds

    @property
    def wall_points_per_second(self) -> float:
        """Throughput including stream iteration overhead."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.points / self.wall_seconds


def measure_throughput(sketch: SMM, stream: Stream,
                       batch_size: int | None = None) -> ThroughputReport:
    """Feed *stream* through *sketch*, timing the kernel.

    With ``batch_size`` unset, each point goes through ``process`` (the
    historical per-point measurement); otherwise the stream is read in
    ``batch_size`` blocks through ``process_batch``.
    """
    kernel_seconds = 0.0
    points = 0
    wall_start = time.perf_counter()
    if batch_size:
        for block in stream.batches(batch_size):
            start = time.perf_counter()
            sketch.process_batch(block)
            kernel_seconds += time.perf_counter() - start
            points += block.shape[0]
    else:
        for point in stream:
            row = as_float_array(point)
            start = time.perf_counter()
            sketch.process(row)
            kernel_seconds += time.perf_counter() - start
            points += 1
    wall_seconds = time.perf_counter() - wall_start
    return ThroughputReport(points=points, kernel_seconds=kernel_seconds,
                            wall_seconds=wall_seconds,
                            batch_size=batch_size or 0)
