"""End-to-end streaming diversity maximization (Theorems 3 and 9).

One pass builds a core-set with the sketch matching the objective (SMM for
remote-edge/cycle, SMM-EXT for the injective-proxy objectives); the final
solution is computed on the core-set by the sequential ``alpha``-approximation,
giving an ``alpha + eps`` approximation overall.

:class:`TwoPassStreamingDiversityMaximizer` implements the memory-saving
variant of Theorem 9 for the four injective-proxy objectives: pass one runs
SMM-GEN (counts only, ``O(k')`` memory), the adapted sequential algorithm
picks a coherent subset of expanded size ``k`` (Fact 2), and pass two
re-materializes actual delegate points by ``delta``-instantiation
(Lemma 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.coresets.smm_gen import SMMGen
from repro.diversity.generalized import solve_generalized
from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_sequential
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.points import PointSet
from repro.streaming.stream import ArrayStream, Stream
from repro.streaming.throughput import measure_throughput
from repro.utils.validation import as_float_array, check_positive_int


def stream_coreset(source: Stream | PointSet | np.ndarray, k: int,
                   k_prime: int, objective: str | Objective = "remote-edge",
                   metric: str | Metric | None = None,
                   batch_size: int | None = None) -> PointSet:
    """One-pass composable core-set of *source* via the batched SMM path.

    Runs the sketch matching *objective* (SMM for the non-injective
    objectives, SMM-EXT for the injective ones) over the input in blocks
    of *batch_size* points and returns the finalized core-set — the
    streaming-model counterpart of
    :func:`repro.coresets.composable.build_composable_coreset`, and the
    ingestion kernel behind :meth:`repro.service.index.CoresetIndex.extend`.

    Parameters
    ----------
    source:
        A :class:`~repro.streaming.stream.Stream`, a
        :class:`~repro.metricspace.points.PointSet`, or a point array.
    k, k_prime:
        Sketch parameters (``k' >= k``); the core-set has at least ``k``
        points, stream length permitting.
    objective:
        Diversity objective selecting the sketch family.
    metric:
        Metric override; defaults to the point set's own metric
        (``"euclidean"`` for raw arrays and streams).
    batch_size:
        Ingestion block size; when omitted, the auto-tuned
        :func:`repro.tuning.recommend_batch_size` recommendation is used.
        Batched and per-point ingestion produce identical sketches.
    """
    objective = get_objective(objective)
    if isinstance(source, PointSet):
        if metric is None:
            metric = source.metric
        stream: Stream = ArrayStream(source.points)
    elif isinstance(source, Stream):
        stream = source
    else:
        stream = ArrayStream(as_float_array(source))
    metric = get_metric("euclidean" if metric is None else metric)
    if batch_size is None:
        from repro.tuning import DEFAULT_BATCH_SIZE, recommend_batch_size

        batch_size = recommend_batch_size(default=DEFAULT_BATCH_SIZE)
    maximizer = StreamingDiversityMaximizer(k=k, k_prime=k_prime,
                                            objective=objective,
                                            metric=metric,
                                            batch_size=batch_size)
    sketch = maximizer.make_sketch()
    for batch in stream.batches(maximizer.batch_size):
        sketch.process_batch(batch)
    return sketch.finalize()


@dataclass
class StreamingResult:
    """Outcome of a streaming run.

    Attributes
    ----------
    solution:
        The selected ``k`` points.
    value:
        Diversity of the solution under the chosen objective.
    coreset_size:
        Number of points in the core-set handed to the sequential solver.
    peak_memory_points:
        Maximum number of points held in memory during the pass(es).
    points_processed:
        Total points consumed (summed over passes).
    passes:
        Number of passes over the stream.
    kernel_seconds:
        Time spent inside the sketch's ``process`` calls (the "kernel"
        throughput measure of Figure 3 excludes stream I/O).
    extra:
        Free-form diagnostics (phase counts, instantiation flags, ...).
    """

    solution: PointSet
    value: float
    coreset_size: int
    peak_memory_points: int
    points_processed: int
    passes: int
    kernel_seconds: float
    extra: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.solution)

    @property
    def kernel_throughput(self) -> float:
        """Points per second through the sketch kernel."""
        if self.kernel_seconds <= 0.0:
            return float("inf")
        return self.points_processed / self.kernel_seconds


class StreamingDiversityMaximizer:
    """One-pass streaming algorithm (Theorem 3).

    Parameters
    ----------
    k:
        Solution size.
    k_prime:
        Core-set parameter ``k'``; small multiples of ``k`` suffice in
        practice (Figures 1-2).
    objective:
        One of the six diversity objectives (name or instance).
    metric:
        Metric of the point space.
    batch_size:
        If set, ingest the stream in blocks of this many points through
        the sketch's vectorized ``process_batch`` path.  For any finite
        stream the result is identical to point-wise ingestion (same
        solution, memory, and core-set); only the kernel throughput
        changes.  (Non-finite points are rejected eagerly on the batched
        path; replayable array streams reject them at construction
        either way.)

    Example
    -------
    >>> from repro.streaming import ArrayStream
    >>> import numpy as np
    >>> stream = ArrayStream(np.random.default_rng(0).normal(size=(200, 2)))
    >>> algo = StreamingDiversityMaximizer(k=4, k_prime=16, objective="remote-edge")
    >>> result = algo.run(stream)
    >>> result.k
    4
    """

    def __init__(self, k: int, k_prime: int, objective: str | Objective,
                 metric: str | Metric = "euclidean",
                 batch_size: int | None = None):
        self.k = check_positive_int(k, "k")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        self.objective = get_objective(objective)
        self.metric = get_metric(metric)
        self.batch_size = (None if batch_size is None
                           else check_positive_int(batch_size, "batch_size"))

    def make_sketch(self) -> SMM:
        """The sketch matching the objective (SMM or SMM-EXT)."""
        if self.objective.requires_injective_proxy:
            return SMMExt(self.k, self.k_prime, self.metric)
        return SMM(self.k, self.k_prime, self.metric)

    def run(self, stream: Stream) -> StreamingResult:
        """Consume *stream* in one pass and return the solution."""
        sketch = self.make_sketch()
        kernel_seconds = measure_throughput(
            sketch, stream, batch_size=self.batch_size).kernel_seconds
        coreset = sketch.finalize()
        indices, value = solve_sequential(coreset, self.k, self.objective)
        return StreamingResult(
            solution=coreset.subset(indices),
            value=value,
            coreset_size=len(coreset),
            peak_memory_points=sketch.peak_memory_points,
            points_processed=sketch.points_seen,
            passes=1,
            kernel_seconds=kernel_seconds,
            extra={"phases": sketch.phases, "final_threshold": sketch.threshold,
                   "batch_size": self.batch_size},
        )


class TwoPassStreamingDiversityMaximizer:
    """Two-pass, low-memory streaming algorithm (Theorem 9).

    Only meaningful for the injective-proxy objectives; memory drops from
    ``Theta((1/eps)^D k^2)`` to ``Theta((1/eps)^D k)`` points.
    """

    def __init__(self, k: int, k_prime: int, objective: str | Objective,
                 metric: str | Metric = "euclidean",
                 batch_size: int | None = None):
        self.k = check_positive_int(k, "k")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        self.objective = get_objective(objective)
        if not self.objective.requires_injective_proxy:
            raise ValueError(
                f"{self.objective.name} does not need the two-pass algorithm; "
                "use StreamingDiversityMaximizer"
            )
        self.metric = get_metric(metric)
        self.batch_size = (None if batch_size is None
                           else check_positive_int(batch_size, "batch_size"))

    def _blocks(self, stream: Stream):
        """The pass-2 reading grain: batches if batching, else single rows."""
        if self.batch_size:
            yield from stream.batches(self.batch_size)
        else:
            for point in stream:
                yield np.atleast_2d(as_float_array(point))

    def run(self, stream: Stream) -> StreamingResult:
        """Two passes: SMM-GEN sketch, then delegate instantiation."""
        # Pass 1: generalized core-set of counts.
        sketch = SMMGen(self.k, self.k_prime, self.metric)
        kernel_seconds = measure_throughput(
            sketch, stream, batch_size=self.batch_size).kernel_seconds
        coreset = sketch.finalize_generalized()
        radius = sketch.radius_bound()
        subset = solve_generalized(coreset, self.k, self.objective)

        # Pass 2: materialize m_p distinct delegates within `radius` of
        # each chosen kernel point, streaming again.  Distances are computed
        # one block at a time, but delegates are served strictly in stream
        # order (the serve order determines which points materialize), so
        # the batched pass selects exactly the point-wise delegates.
        needs = subset.multiplicities.copy()
        kernel_points = subset.points
        delegates: list[np.ndarray] = []
        second_pass_points = 0
        exhausted = False
        start = time.perf_counter()
        for block in self._blocks(stream.replay()):
            block_dist: np.ndarray | None = None
            for offset in range(block.shape[0]):
                second_pass_points += 1
                if not needs.any():
                    exhausted = True
                    break
                if block_dist is None:
                    block_dist = self.metric.cross(block, kernel_points)
                dist = block_dist[offset]
                # Serve the nearest kernel point that still needs delegates.
                candidates = np.flatnonzero((needs > 0) & (dist <= radius))
                if candidates.size == 0:
                    continue
                chosen = int(candidates[int(dist[candidates].argmin())])
                needs[chosen] -= 1
                delegates.append(as_float_array(block[offset]))
            if exhausted:
                break
        kernel_seconds += time.perf_counter() - start

        # Radius shortfalls can only arise from the greedy serve order;
        # fall back to the kernel points themselves (distance zero).
        shortfall = int(needs.sum())
        if shortfall:
            for kernel_index in np.flatnonzero(needs > 0):
                for _ in range(int(needs[kernel_index])):
                    delegates.append(kernel_points[kernel_index])
        solution = PointSet(np.vstack(delegates), self.metric)
        value = self.objective.value(solution.pairwise())
        return StreamingResult(
            solution=solution,
            value=value,
            coreset_size=coreset.size,
            peak_memory_points=sketch.peak_memory_points,
            points_processed=sketch.points_seen + second_pass_points,
            passes=2,
            kernel_seconds=kernel_seconds,
            extra={
                "phases": sketch.phases,
                "instantiation_radius": radius,
                "instantiation_shortfall": shortfall,
                "batch_size": self.batch_size,
            },
        )
