"""Streaming computation model: sources, memory audit, end-to-end algorithms.

The streaming substrate enforces the model's constraint honestly: the
diversity maximizers consume points strictly one at a time and the memory
auditor verifies that the number of points ever held matches the
``Theta((1/eps)^D k)`` / ``Theta((1/eps)^D k^2)`` bounds of Theorem 3.
"""

from repro.streaming.stream import ArrayStream, IteratorStream, Stream, ShuffledStream
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
    StreamingResult,
    stream_coreset,
)
from repro.streaming.memory import theoretical_memory_points, audit_memory
from repro.streaming.throughput import measure_throughput, ThroughputReport

__all__ = [
    "Stream",
    "ArrayStream",
    "IteratorStream",
    "ShuffledStream",
    "StreamingDiversityMaximizer",
    "TwoPassStreamingDiversityMaximizer",
    "StreamingResult",
    "stream_coreset",
    "theoretical_memory_points",
    "audit_memory",
    "measure_throughput",
    "ThroughputReport",
]
