"""Memory accounting for the streaming model (Table 3 verification).

The sketches track their own peak held-point counts;
:func:`theoretical_memory_points` gives the model bound to compare against
and :func:`audit_memory` performs the comparison, raising
:class:`~repro.exceptions.MemoryBudgetExceededError` on violation so tests
and benchmarks can assert the space guarantees of Theorems 1-3 and 9.
"""

from __future__ import annotations

from repro.coresets.smm import SMM
from repro.diversity.objectives import Objective, get_objective
from repro.exceptions import MemoryBudgetExceededError


def theoretical_memory_points(objective: str | Objective, k: int, k_prime: int,
                              generalized: bool = False) -> int:
    """Worst-case points held by the matching sketch, in points.

    * SMM (remote-edge/cycle) holds at most ``k' + 1`` centers plus the
      merge leftovers (at most ``k' + 1`` more): ``2 (k' + 1)``.
    * SMM-EXT additionally holds up to ``k - 1`` delegates per center.
    * SMM-GEN (``generalized=True``) stores counts, not points, so its
      footprint matches plain SMM.
    """
    objective = get_objective(objective)
    base = 2 * (k_prime + 1)
    if objective.requires_injective_proxy and not generalized:
        return base + (k_prime + 1) * (k - 1)
    return base


def audit_memory(sketch: SMM, objective: str | Objective, k: int, k_prime: int,
                 generalized: bool = False) -> int:
    """Check the sketch's observed peak against the theoretical bound.

    Returns the observed peak (in points) on success.
    """
    bound = theoretical_memory_points(objective, k, k_prime, generalized)
    observed = sketch.peak_memory_points
    if observed > bound:
        raise MemoryBudgetExceededError(observed, bound,
                                        context=f"{type(sketch).__name__} sketch")
    return observed
