"""Stream sources.

A :class:`Stream` yields points (1-d numpy rows) one at a time, or in
``(<= batch_size, dim)`` blocks through :meth:`Stream.batches` for
consumers with a vectorized ingestion path.  Multi-pass algorithms call
:meth:`Stream.replay` to start a second pass; sources that cannot be
replayed (true one-shot iterators) raise
:class:`~repro.exceptions.StreamExhaustedError`, which keeps the pass
discipline of the model explicit in the type system rather than implicit in
the caller's behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import StreamExhaustedError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import (as_float_array, check_points_array,
                                    check_positive_int)


class Stream(ABC):
    """Abstract source of points for one or more sequential passes."""

    @abstractmethod
    def __iter__(self) -> Iterator[np.ndarray]:
        """Yield points for the current pass."""

    @abstractmethod
    def replay(self) -> "Stream":
        """Return a stream for one more pass over the same data."""

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Yield consecutive ``(<= batch_size, dim)`` blocks of this pass.

        Consuming :meth:`batches` consumes the same pass as ``__iter__``
        and preserves point order, so batched and point-wise readers see
        identical streams.  This default buffers the point iterator;
        array-backed sources override it with zero-copy slicing.
        """
        batch_size = check_positive_int(batch_size, "batch_size")
        block: list[np.ndarray] = []
        for point in self:
            block.append(point)
            if len(block) == batch_size:
                yield np.vstack(block)
                block = []
        if block:
            yield np.vstack(block)

    def __len__(self) -> int:
        """Number of points per pass, if known (else raises TypeError)."""
        raise TypeError(f"{type(self).__name__} has no known length")


class ArrayStream(Stream):
    """Replayable stream over an in-memory array.

    Algorithms are *not* allowed to index the array; the model is enforced
    by convention (they only see the iterator) and audited by the memory
    accounting of the sketches.
    """

    def __init__(self, points: np.ndarray):
        self._points = check_points_array(points)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._points)

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Zero-copy slices of the backing array, in stream order."""
        batch_size = check_positive_int(batch_size, "batch_size")
        for start in range(0, self._points.shape[0], batch_size):
            yield self._points[start:start + batch_size]

    def replay(self) -> "ArrayStream":
        return self

    def __len__(self) -> int:
        return self._points.shape[0]


class ShuffledStream(ArrayStream):
    """An :class:`ArrayStream` presented in a seeded random order.

    Each :meth:`replay` re-yields the *same* shuffled order, so multi-pass
    algorithms observe a consistent stream.
    """

    def __init__(self, points: np.ndarray, seed: RngLike = None):
        super().__init__(points)
        order = ensure_rng(seed).permutation(self._points.shape[0])
        self._points = self._points[order]

    def replay(self) -> "ShuffledStream":
        return self


class IteratorStream(Stream):
    """A genuine one-shot stream wrapping an arbitrary iterable.

    :meth:`replay` raises: algorithms requiring multiple passes must be fed
    a replayable source.  :meth:`Stream.batches` works (it buffers the
    iterator) but likewise consumes the single pass.
    """

    def __init__(self, iterable: Iterable[np.ndarray]):
        self._iterator = iter(iterable)
        self._consumed = False

    def __iter__(self) -> Iterator[np.ndarray]:
        if self._consumed:
            raise StreamExhaustedError("this one-shot stream was already consumed")
        self._consumed = True
        for item in self._iterator:
            yield as_float_array(item).reshape(-1)

    def replay(self) -> "Stream":
        raise StreamExhaustedError(
            "IteratorStream cannot be replayed; use ArrayStream for multi-pass algorithms"
        )
