"""Stream sources.

A :class:`Stream` yields points (1-d numpy rows) one at a time.  Multi-pass
algorithms call :meth:`Stream.replay` to start a second pass; sources that
cannot be replayed (true one-shot iterators) raise
:class:`~repro.exceptions.StreamExhaustedError`, which keeps the pass
discipline of the model explicit in the type system rather than implicit in
the caller's behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import StreamExhaustedError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_points_array


class Stream(ABC):
    """Abstract source of points for one or more sequential passes."""

    @abstractmethod
    def __iter__(self) -> Iterator[np.ndarray]:
        """Yield points for the current pass."""

    @abstractmethod
    def replay(self) -> "Stream":
        """Return a stream for one more pass over the same data."""

    def __len__(self) -> int:
        """Number of points per pass, if known (else raises TypeError)."""
        raise TypeError(f"{type(self).__name__} has no known length")


class ArrayStream(Stream):
    """Replayable stream over an in-memory array.

    Algorithms are *not* allowed to index the array; the model is enforced
    by convention (they only see the iterator) and audited by the memory
    accounting of the sketches.
    """

    def __init__(self, points: np.ndarray):
        self._points = check_points_array(points)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._points)

    def replay(self) -> "ArrayStream":
        return self

    def __len__(self) -> int:
        return self._points.shape[0]


class ShuffledStream(Stream):
    """An :class:`ArrayStream` presented in a seeded random order.

    Each :meth:`replay` re-yields the *same* shuffled order, so multi-pass
    algorithms observe a consistent stream.
    """

    def __init__(self, points: np.ndarray, seed: RngLike = None):
        points = check_points_array(points)
        order = ensure_rng(seed).permutation(points.shape[0])
        self._points = points[order]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._points)

    def replay(self) -> "ShuffledStream":
        return self

    def __len__(self) -> int:
        return self._points.shape[0]


class IteratorStream(Stream):
    """A genuine one-shot stream wrapping an arbitrary iterable.

    :meth:`replay` raises: algorithms requiring multiple passes must be fed
    a replayable source.
    """

    def __init__(self, iterable: Iterable[np.ndarray]):
        self._iterator = iter(iterable)
        self._consumed = False

    def __iter__(self) -> Iterator[np.ndarray]:
        if self._consumed:
            raise StreamExhaustedError("this one-shot stream was already consumed")
        self._consumed = True
        for item in self._iterator:
            yield np.asarray(item, dtype=np.float64).reshape(-1)

    def replay(self) -> "Stream":
        raise StreamExhaustedError(
            "IteratorStream cannot be replayed; use ArrayStream for multi-pass algorithms"
        )
