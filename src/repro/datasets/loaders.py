"""Save/load helpers for point sets.

Experiments cache generated datasets and reference solutions on disk so
repeated benchmark runs are cheap and deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.metricspace.points import PointSet


def save_points(points: PointSet, path: str | Path) -> None:
    """Persist a :class:`PointSet` as ``<path>.npy`` + ``<path>.json``.

    The sidecar JSON records the metric name so :func:`load_points` can
    reconstruct the set faithfully.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path.with_suffix(".npy"), points.points)
    metadata = {"metric": points.metric.name, "n": len(points), "dim": points.dim}
    path.with_suffix(".json").write_text(json.dumps(metadata))


def load_points(path: str | Path) -> PointSet:
    """Load a :class:`PointSet` saved by :func:`save_points`."""
    path = Path(path)
    data = np.load(path.with_suffix(".npy"))
    metadata = json.loads(path.with_suffix(".json").read_text())
    return PointSet(data, metric=metadata["metric"])
