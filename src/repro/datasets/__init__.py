"""Dataset generators and loaders used by the experiments.

:mod:`repro.datasets.synthetic` reproduces the paper's adversarial
sphere-shell generator (Section 7) plus standard uniform/clustered
distributions; :mod:`repro.datasets.text` synthesizes musiXmatch-like
bag-of-words vectors for the cosine-distance experiments (see DESIGN.md for
the substitution rationale).
"""

from repro.datasets.synthetic import (
    sphere_shell,
    uniform_cube,
    gaussian_clusters,
    unit_sphere_surface,
)
from repro.datasets.text import zipf_bag_of_words
from repro.datasets.loaders import save_points, load_points

__all__ = [
    "sphere_shell",
    "uniform_cube",
    "gaussian_clusters",
    "unit_sphere_surface",
    "zipf_bag_of_words",
    "save_points",
    "load_points",
]
