"""Synthetic Euclidean datasets, including the paper's sphere-shell generator.

Section 7 of the paper generates its synthetic workloads as follows: for a
given ``k``, ``k`` points are placed uniformly at random on the surface of
the unit sphere (guaranteeing a set of far-away points), and the remaining
points are drawn uniformly from the concentric ball of radius 0.8.  The
authors report this as the most challenging distribution they tried —
random subsets almost surely miss all the diverse points.
"""

from __future__ import annotations

import numpy as np

from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def unit_sphere_surface(n: int, dim: int = 3, seed: RngLike = None) -> np.ndarray:
    """``n`` points uniform on the surface of the unit sphere in ``R^dim``."""
    check_positive_int(n, "n")
    check_positive_int(dim, "dim")
    rng = ensure_rng(seed)
    raw = rng.normal(size=(n, dim))
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    # Degenerate all-zero draws are essentially impossible, but stay safe.
    norms[norms == 0.0] = 1.0
    return raw / norms


def _uniform_ball(n: int, dim: int, radius: float,
                  rng: np.random.Generator) -> np.ndarray:
    """``n`` points uniform in the ``radius``-ball (polar rejection-free)."""
    directions = unit_sphere_surface(n, dim, seed=rng)
    radii = radius * rng.random(n) ** (1.0 / dim)
    return directions * radii[:, None]


def sphere_shell(n: int, k: int, dim: int = 3, inner_radius: float = 0.8,
                 seed: RngLike = None, shuffle: bool = True) -> PointSet:
    """The paper's adversarial generator: ``k`` far points + a dense core.

    Parameters
    ----------
    n:
        Total number of points.
    k:
        Number of points planted on the unit-sphere surface (the diverse
        set the algorithms should recover).
    dim:
        Ambient dimension (the paper uses 3, and 2 for Table 4).
    inner_radius:
        Radius of the ball holding the remaining ``n - k`` points.
    shuffle:
        Randomly permute the points so the planted ones are not adjacent in
        stream/partition order (on by default; disable for debugging).
    """
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    if k > n:
        raise ValueError(f"k={k} cannot exceed n={n}")
    rng = ensure_rng(seed)
    surface = unit_sphere_surface(k, dim, seed=rng)
    bulk = _uniform_ball(n - k, dim, inner_radius, rng) if n > k else \
        np.empty((0, dim))
    data = np.vstack([surface, bulk])
    if shuffle:
        data = data[rng.permutation(n)]
    return PointSet(data, metric="euclidean")


def uniform_cube(n: int, dim: int = 3, side: float = 1.0,
                 seed: RngLike = None) -> PointSet:
    """``n`` points uniform in the axis-aligned cube ``[0, side]^dim``."""
    check_positive_int(n, "n")
    rng = ensure_rng(seed)
    return PointSet(side * rng.random((n, dim)), metric="euclidean")


def gaussian_clusters(n: int, centers: int = 8, dim: int = 3,
                      spread: float = 0.05, box: float = 1.0,
                      seed: RngLike = None) -> PointSet:
    """``n`` points from ``centers`` spherical Gaussians in a box.

    A lower-doubling-dimension-like workload: mass concentrates around a
    few locations, which is where core-sets shine.
    """
    check_positive_int(n, "n")
    check_positive_int(centers, "centers")
    rng = ensure_rng(seed)
    locations = box * rng.random((centers, dim))
    assignment = rng.integers(0, centers, size=n)
    data = locations[assignment] + spread * rng.normal(size=(n, dim))
    return PointSet(data, metric="euclidean")
