"""Synthetic musiXmatch-like bag-of-words vectors.

The paper's real-world workload is the musiXmatch lyrics dataset: 237k
songs as word-count vectors over the 5,000 most frequent words, filtered to
songs with at least 10 distinct frequent words, compared under the cosine
(angular) distance.  The dataset itself is not redistributable here, so we
synthesize vectors with the same structural properties (the substitution is
documented in DESIGN.md):

* a Zipf-distributed vocabulary (heavy head, long tail);
* per-document topic bias so documents cluster by word support — diverse
  solutions must pick documents with nearly disjoint supports;
* the same ``>= min_distinct_words`` filtering rule.
"""

from __future__ import annotations

import numpy as np

from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def zipf_bag_of_words(
    num_docs: int,
    vocab_size: int = 1000,
    topics: int = 25,
    words_per_doc: tuple[int, int] = (15, 120),
    zipf_exponent: float = 1.1,
    min_distinct_words: int = 10,
    seed: RngLike = None,
) -> PointSet:
    """Generate ``num_docs`` word-count vectors under the cosine distance.

    Parameters
    ----------
    num_docs:
        Number of documents after filtering.
    vocab_size:
        Vocabulary dimensionality (the paper's is 5,000; we default smaller
        so dense vectors stay laptop-friendly — the geometry is unchanged).
    topics:
        Number of latent topics; each document draws most of its words from
        one topic's preferred vocabulary slice, giving the disjoint-support
        structure that makes diversity non-trivial.
    words_per_doc:
        Inclusive (min, max) of the document length distribution.
    zipf_exponent:
        Exponent of the word-frequency power law.
    min_distinct_words:
        The paper's filtering rule: drop docs with fewer distinct words.
    """
    check_positive_int(num_docs, "num_docs")
    check_positive_int(vocab_size, "vocab_size")
    check_positive_int(topics, "topics")
    low, high = words_per_doc
    if not 1 <= low <= high:
        raise ValueError(f"invalid words_per_doc range {words_per_doc}")
    if min_distinct_words > vocab_size:
        raise ValueError("min_distinct_words cannot exceed vocab_size")
    rng = ensure_rng(seed)

    # Zipf base frequencies over the vocabulary.
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    base = ranks ** (-zipf_exponent)
    base /= base.sum()

    # Each topic boosts a contiguous slice of the (shuffled) vocabulary.
    vocab_order = rng.permutation(vocab_size)
    slice_size = max(vocab_size // topics, min_distinct_words)
    topic_boost = np.ones((topics, vocab_size))
    for topic in range(topics):
        start = (topic * slice_size) % vocab_size
        chosen = vocab_order[start:start + slice_size]
        topic_boost[topic, chosen] = 50.0

    docs = np.zeros((num_docs, vocab_size), dtype=np.float64)
    produced = 0
    while produced < num_docs:
        topic = int(rng.integers(0, topics))
        weights = base * topic_boost[topic]
        weights /= weights.sum()
        length = int(rng.integers(low, high + 1))
        counts = rng.multinomial(length, weights)
        if np.count_nonzero(counts) < min_distinct_words:
            continue
        docs[produced] = counts
        produced += 1
    return PointSet(docs, metric="cosine")
