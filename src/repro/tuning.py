"""Data-driven parameter tuning: choose ``k'`` and kernel tiles.

The theory prescribes ``k' = (c/eps')^D k``, which is pessimistic and needs
the (usually unknown) doubling dimension ``D``.  Section 7 of the paper
shows small multiples of ``k`` suffice in practice.  This module bridges
the two: it estimates ``D`` from a sample, evaluates the theoretical
sizing, and clamps it to a practical band and an optional memory budget,
giving users a one-call starting point instead of a guess.

:func:`recommend_tile_rows` plays the same role for the blocked
distance-kernel layer: given a metric and a cross-product shape it derives
the row-tile size from a memory budget, and the benchmark harness records
the chosen tiling in the ``BENCH_*.json`` trajectory so kernel-layer
regressions are visible per PR.  Derived tilings additionally persist to
a per-machine profile (``.repro_profile.json``, ``REPRO_PROFILE_PATH`` to
relocate) that later runs reuse, and :func:`recommend_batch_size` feeds
the recorded ``BENCH_fig3_*.json`` trajectory back into the SMM family's
ingestion batch size (the CLI's ``--batch-size`` default).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.coresets.composable import coreset_size_for
from repro.diversity.objectives import Objective, get_objective
from repro.metricspace.blocked import get_default_memory_budget, tile_rows_for
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.doubling import estimate_doubling_dimension
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class TuningAdvice:
    """Recommended parameters for a core-set pipeline.

    Attributes
    ----------
    k_prime:
        Recommended core-set parameter.
    estimated_dimension:
        Doubling-dimension estimate from the sample.
    theoretical_k_prime:
        The untruncated Theorem 1-5 sizing (often astronomically large —
        reported for transparency).
    memory_points:
        Predicted sketch memory (in points) at the recommendation.
    """

    k_prime: int
    estimated_dimension: float
    theoretical_k_prime: int
    memory_points: int


def recommend_k_prime(
    points: PointSet,
    k: int,
    objective: str | Objective = "remote-edge",
    epsilon: float = 0.5,
    model: str = "streaming",
    sample_size: int = 2048,
    memory_budget_points: int | None = None,
    seed: RngLike = None,
) -> TuningAdvice:
    """Recommend ``k'`` for a dataset, objective and accuracy target.

    The recommendation is ``min(theoretical, practical band, memory cap)``
    where the practical band is ``[2k, 16k]`` scaled by the estimated
    dimension (higher-dimensional data benefits from more kernel points —
    the empirical lesson of Figures 1-2).

    Parameters
    ----------
    points:
        The dataset (or any representative sample of it).
    k:
        Target solution size.
    objective, epsilon, model:
        Passed to :func:`repro.coresets.composable.coreset_size_for`.
    sample_size:
        Points sampled for the doubling-dimension estimate.
    memory_budget_points:
        Optional hard cap on sketch memory in points; the recommendation
        respects it (EXT sketches cost ``~k`` points per kernel point).

    Example
    -------
    >>> import numpy as np
    >>> ps = PointSet(np.random.default_rng(0).random((500, 2)))
    >>> advice = recommend_k_prime(ps, k=4, seed=0)
    >>> advice.k_prime >= 8
    True
    """
    objective = get_objective(objective)
    check_positive_int(k, "k")
    check_in_range(epsilon, "epsilon", 0.0, 1.0)
    rng = ensure_rng(seed)
    n = len(points)
    if n > sample_size:
        sample = points.subset(rng.choice(n, size=sample_size, replace=False))
    else:
        sample = points
    dimension = estimate_doubling_dimension(sample, num_balls=24,
                                            quantile=0.9, seed=rng)

    theoretical = coreset_size_for(k, epsilon, dimension, objective,
                                   model=model)
    # Practical band: 2k at dimension ~1, widening toward 16k by dim ~6.
    band_multiplier = int(np.clip(2 + 2 * dimension, 2, 16))
    practical = band_multiplier * k
    recommendation = min(theoretical, practical)
    recommendation = max(recommendation, k)

    from repro.streaming.memory import theoretical_memory_points

    if memory_budget_points is not None:
        check_positive_int(memory_budget_points, "memory_budget_points")
        # Shrink k' until the sketch bound fits the budget (or k is hit).
        while (recommendation > k and
               theoretical_memory_points(objective, k, recommendation)
               > memory_budget_points):
            recommendation -= 1
    return TuningAdvice(
        k_prime=int(recommendation),
        estimated_dimension=float(dimension),
        theoretical_k_prime=int(min(theoretical, np.iinfo(np.int64).max)),
        memory_points=theoretical_memory_points(objective, k, recommendation),
    )


def recommend_matrix_budget_mb(rung_point_counts: list[int],
                               resident_rungs: int = 2,
                               dtype: str | np.dtype = "float64") -> int:
    """Matrix-cache budget (MiB) keeping the largest rungs resident.

    The service's rung distance matrices cost ``itemsize * n^2`` bytes
    for a rung of ``n`` core-set points stored in *dtype* (8 bytes for
    float64, 4 for the float32 fast path — a float32 index needs half
    the budget); this sizes ``REPRO_MATRIX_BUDGET_MB``
    (or ``DiversityService(matrix_budget_mb=...)``) so the
    *resident_rungs* largest matrices fit simultaneously while smaller
    rungs cycle through the remaining headroom.  ``repro index`` prints
    this next to the rung table so operators can start from a measured
    number instead of a guess.

    Parameters
    ----------
    rung_point_counts:
        Core-set sizes of the index's rungs (``len(rung.coreset)``).
    resident_rungs:
        How many of the largest matrices the budget must hold at once.
    dtype:
        Matrix element dtype (the index's storage dtype).

    Returns
    -------
    int
        A MiB budget, always at least 1.

    Raises
    ------
    ValidationError
        If *rung_point_counts* is empty or *resident_rungs* is not a
        positive int.
    """
    from repro.exceptions import ValidationError

    if not rung_point_counts:
        raise ValidationError("rung_point_counts must be non-empty")
    check_positive_int(resident_rungs, "resident_rungs")
    itemsize = np.dtype(dtype).itemsize
    sizes = sorted((check_positive_int(n, "rung_point_count")
                    for n in rung_point_counts), reverse=True)
    needed = sum(itemsize * n * n for n in sizes[:resident_rungs])
    return max(1, -(-needed // 2**20))


def recommend_registry_budget_mb(
        tenant_rung_point_counts: list[list[int]],
        hot_tenants: int = 2, resident_rungs: int = 2,
        dtype: str | np.dtype = "float64") -> int:
    """Global matrix budget (MiB) for a multi-tenant registry.

    In registry mode every tenant's rung matrices compete under ONE
    ``REPRO_MATRIX_BUDGET_MB``; the operational sweet spot sizes that
    budget for the expected *hot set*, not the whole fleet — cold
    tenants' matrices are evicted and recomputed on demand.  This sums
    :func:`recommend_matrix_budget_mb` over the *hot_tenants* most
    expensive tenants, so a skewed workload keeps its heavy hitters'
    matrices resident while the long tail cycles through the headroom
    (the shape ``benchmarks/bench_registry.py`` gates: 8 tenants served
    correctly under a budget sized for ~2).

    Parameters
    ----------
    tenant_rung_point_counts:
        One list of rung core-set sizes per tenant
        (``[len(rung.coreset) for rung in index.all_rungs()]``).
    hot_tenants:
        How many tenants the budget should hold fully resident at once.
    resident_rungs:
        Per-tenant resident-rung count (see
        :func:`recommend_matrix_budget_mb`).
    dtype:
        Matrix element dtype (the tenants' storage dtype).

    Returns
    -------
    int
        A MiB budget, always at least 1.

    Raises
    ------
    ValidationError
        If *tenant_rung_point_counts* is empty, any tenant's list is
        empty, or the counts are not positive ints.
    """
    from repro.exceptions import ValidationError

    if not tenant_rung_point_counts:
        raise ValidationError("tenant_rung_point_counts must be non-empty")
    check_positive_int(hot_tenants, "hot_tenants")
    per_tenant = sorted(
        (recommend_matrix_budget_mb(counts, resident_rungs, dtype)
         for counts in tenant_rung_point_counts), reverse=True)
    return max(1, sum(per_tenant[:hot_tenants]))


def recommend_tenant_weights(per_tenant_hits: dict[str, int],
                             max_weight: int = 4) -> dict[str, int]:
    """Seed manifest-v2 QoS weights from observed per-tenant traffic.

    Maps each tenant's lifetime hit count (the ``per_tenant`` ``hits``
    counters of :meth:`IndexRegistry.stats
    <repro.service.registry.IndexRegistry.stats>`) onto a small integer
    weight in ``[1, max_weight]``, proportional to its share of the
    busiest tenant's traffic.  The point is a *starting* manifest for
    ``repro serve --qos`` that keeps measured heavy hitters from
    queueing behind the long tail, while the clamp to ``max_weight``
    stops a zipf-hot tenant from monopolizing dispatch — isolation
    (per-tenant ``max_queue`` / ``rate_limit_qps``) is the operator's
    lever for misbehaving tenants, not an unbounded weight.

    Parameters
    ----------
    per_tenant_hits:
        Lifetime query hits keyed by ``dataset_id``.  Negative counts
        are invalid; an all-zero map yields weight 1 everywhere.
    max_weight:
        Largest weight assigned (to the busiest tenant).

    Returns
    -------
    dict[str, int]
        A weight per tenant, each in ``[1, max_weight]``.

    Raises
    ------
    ValidationError
        If *per_tenant_hits* is empty, any count is negative, or
        *max_weight* is not a positive int.
    """
    from repro.exceptions import ValidationError

    if not per_tenant_hits:
        raise ValidationError("per_tenant_hits must be non-empty")
    check_positive_int(max_weight, "max_weight")
    if any(hits < 0 for hits in per_tenant_hits.values()):
        raise ValidationError("hit counts must be non-negative")
    busiest = max(per_tenant_hits.values())
    if busiest == 0:
        return {tenant: 1 for tenant in per_tenant_hits}
    return {tenant: max(1, round(max_weight * hits / busiest))
            for tenant, hits in per_tenant_hits.items()}


@dataclass(frozen=True)
class KernelTuning:
    """Chosen tiling for one blocked-kernel workload.

    Attributes
    ----------
    metric:
        Registry name of the metric.
    tile_rows:
        Left-operand rows per tile.
    tiles:
        Number of tiles the ``(n_rows, n_cols)`` cross product splits into.
    memory_budget_bytes:
        The budget the tile size was derived from.
    accumulating:
        Whether the metric uses the per-dimension accumulation kernel
        (coordinate-wise metrics) or tiled calls to the naive kernel.
    dtype:
        Element dtype the tiling was sized for; float32 intermediates
        cost half the bytes per row, so the same budget yields 2x-wider
        tiles than float64.
    """

    metric: str
    tile_rows: int
    tiles: int
    memory_budget_bytes: int
    accumulating: bool
    dtype: str = "float64"

    def as_dict(self) -> dict:
        """JSON-ready form, recorded into ``BENCH_*.json`` trajectories."""
        return asdict(self)


# -- per-machine tile profile --------------------------------------------------
#
# The ``kernel_tuning`` blocks benchmarks record into ``BENCH_*.json`` are a
# per-PR trajectory; the *profile* is the per-machine distillation: every
# tiling :func:`recommend_tile_rows` derives is keyed by
# ``metric:shape:budget`` and persisted to ``.repro_profile.json`` (path
# overridable via ``REPRO_PROFILE_PATH``), so later runs on the same machine
# reuse the recorded tiling instead of re-deriving it.

PROFILE_ENV_VAR = "REPRO_PROFILE_PATH"
DEFAULT_PROFILE_FILENAME = ".repro_profile.json"
# Version 2: entries gained a ``dtype`` field and keys a ``:dtype=``
# component — float64-derived tilings must not be replayed for float32
# workloads (they would leave half the budgeted tile width unused).
# Version 3: the profile gained a top-level ``planner_calibration`` block
# (the query planner's fitted CostModel).  The ``kernel_tuning`` layout is
# unchanged, so v2 files still load — they simply carry no calibration and
# the planner falls back to its defaults.
_PROFILE_FORMAT_VERSION = 3
_COMPATIBLE_PROFILE_VERSIONS = (2, 3)

#: Top-level profile key holding the query planner's calibration payload.
CALIBRATION_KEY = "planner_calibration"


def tile_profile_path() -> Path:
    """Resolved profile location (env override, else CWD dotfile)."""
    return Path(os.environ.get(PROFILE_ENV_VAR) or DEFAULT_PROFILE_FILENAME)


def _profile_key(metric_name: str, n_rows: int, n_cols: int, dim: int,
                 budget_bytes: int, dtype: str = "float64") -> str:
    return (f"{metric_name}:{n_rows}x{n_cols}x{dim}"
            f":budget={budget_bytes}:dtype={dtype}")


def _read_profile_payload(path: Path) -> dict:
    """The raw profile payload, or ``{}`` for any unusable file.

    Reads are best-effort by design: a missing, truncated or foreign file
    must never break a caller, so malformed profiles degrade to "no
    profile" rather than raising.  Files of an incompatible format
    version (pre-dtype v1, or anything newer than this build writes) are
    treated as absent — old entries must not pin outdated derivations.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    if payload.get("format_version") not in _COMPATIBLE_PROFILE_VERSIONS:
        return {}
    return payload


def load_tile_profile(path: str | Path | None = None) -> dict[str, dict]:
    """The profile's ``kernel_tuning`` entries (empty on any read problem)."""
    path = tile_profile_path() if path is None else Path(path)
    entries = _read_profile_payload(path).get("kernel_tuning")
    return entries if isinstance(entries, dict) else {}


def load_calibration(path: str | Path | None = None) -> dict:
    """The profile's query-planner calibration block (empty when absent).

    Format v1/v2 profiles carry no block, so they load "with defaults":
    :meth:`repro.service.planner.CostModel.from_payload` of ``{}`` is the
    built-in model.
    """
    path = tile_profile_path() if path is None else Path(path)
    block = _read_profile_payload(path).get(CALIBRATION_KEY)
    return block if isinstance(block, dict) else {}


def save_tile_profile(entries: dict[str, dict],
                      path: str | Path | None = None) -> Path:
    """Write the profile atomically (temp file + ``os.replace``).

    Concurrent writers (a benchmark run and a CLI run sharing the default
    profile) may interleave, but a reader can never observe a torn file —
    the failure mode that would silently reset the accumulated profile.
    Other top-level blocks of a compatible file (the planner calibration)
    are preserved; the write upgrades the file to the current format.
    """
    path = tile_profile_path() if path is None else Path(path)
    payload = _read_profile_payload(path)
    payload.update({"format_version": _PROFILE_FORMAT_VERSION,
                    "kernel_tuning": entries})
    return _write_profile_payload(payload, path)


def save_calibration(calibration: dict,
                     path: str | Path | None = None) -> Path:
    """Persist the planner calibration block (``repro calibrate``).

    Read-modify-write: ``kernel_tuning`` entries already in a compatible
    profile survive, and the file is (re)written as format v3
    atomically.
    """
    path = tile_profile_path() if path is None else Path(path)
    payload = _read_profile_payload(path)
    payload.setdefault("kernel_tuning", {})
    payload.update({"format_version": _PROFILE_FORMAT_VERSION,
                    CALIBRATION_KEY: dict(calibration)})
    return _write_profile_payload(payload, path)


def _write_profile_payload(payload: dict, path: Path) -> Path:
    tmp = path.parent / f"{path.name}.tmp{os.getpid()}"
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def record_kernel_tuning(tuning: KernelTuning, n_rows: int, n_cols: int,
                         dim: int, path: str | Path | None = None) -> None:
    """Merge one derived tiling into the per-machine profile (best effort).

    IO failures (read-only checkout, sandboxed CI) are swallowed: the
    profile is an accelerator, never a requirement.
    """
    key = _profile_key(tuning.metric, n_rows, n_cols, dim,
                       tuning.memory_budget_bytes, tuning.dtype)
    try:
        entries = load_tile_profile(path)
        entries[key] = tuning.as_dict()
        save_tile_profile(entries, path)
    except OSError:
        pass


def recommend_tile_rows(metric: str | Metric, n_rows: int, n_cols: int,
                        dim: int,
                        memory_budget_bytes: int | None = None,
                        use_profile: bool = True,
                        dtype: str | np.dtype = "float64") -> KernelTuning:
    """Tile sizing for a blocked ``cross``/``pairwise`` of the given shape.

    Thin, recordable wrapper over
    :func:`repro.metricspace.blocked.tile_rows_for`: benchmarks call this
    once per workload and embed the result in their ``BENCH_*.json``
    payloads so the tuning trajectory is versioned alongside wall times.

    With *use_profile* (the default) the per-machine profile is consulted
    first — an exact ``metric:shape:budget`` match short-circuits the
    derivation — and the derived tiling is recorded back on a miss, so
    repeated runs on one machine converge on a stable, shared tiling.
    """
    metric = get_metric(metric)
    check_positive_int(n_rows, "n_rows")
    check_positive_int(n_cols, "n_cols")
    check_positive_int(dim, "dim")
    dtype = np.dtype(dtype)
    budget = (get_default_memory_budget() if memory_budget_bytes is None
              else check_positive_int(memory_budget_bytes, "memory_budget_bytes"))
    if use_profile:
        entry = load_tile_profile().get(
            _profile_key(metric.name, n_rows, n_cols, dim, budget, str(dtype)))
        if entry is not None:
            try:
                tuning = KernelTuning(**entry)
                if (tuning.tile_rows >= 1 and tuning.metric == metric.name
                        and tuning.dtype == str(dtype)):
                    return tuning
            except TypeError:
                pass  # stale profile written by an older layout
    tile = tile_rows_for(metric, n_rows, n_cols, dim, budget,
                         itemsize=dtype.itemsize)
    tuning = KernelTuning(
        metric=metric.name,
        tile_rows=tile,
        tiles=int(np.ceil(n_rows / tile)),
        memory_budget_bytes=budget,
        accumulating=metric.accumulates_per_dimension,
        dtype=str(dtype),
    )
    if use_profile:
        record_kernel_tuning(tuning, n_rows, n_cols, dim)
    return tuning


# -- batch-size auto-tuning from the recorded benchmark trajectory -------------

BATCH_RESULTS_ENV_VAR = "REPRO_BENCH_RESULTS_DIR"
DEFAULT_BATCH_SIZE = 1024


def _batch_observations(directory: Path) -> list[tuple[int, float]]:
    """``(batch_size, speedup)`` pairs recorded in ``BENCH_fig3_*.json``."""
    observations: list[tuple[int, float]] = []
    for path in sorted(directory.glob("BENCH_fig3_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        if isinstance(payload.get("sweep"), list):
            # The speedup probe's batch-size sweep: the richest signal.
            for entry in payload["sweep"]:
                if (isinstance(entry, dict)
                        and isinstance(entry.get("batch_size"), int)
                        and entry["batch_size"] >= 1
                        and isinstance(entry.get("speedup"), (int, float))):
                    observations.append((entry["batch_size"],
                                         float(entry["speedup"])))
            continue
        batch_size = payload.get("batch_size")
        if not isinstance(batch_size, int) or batch_size < 1:
            continue
        if isinstance(payload.get("speedup"), (int, float)):
            # Single-point speedup record (pre-sweep layout).
            observations.append((batch_size, float(payload["speedup"])))
        elif isinstance(payload.get("cells"), list):
            # The throughput sweep: average the per-cell ratios.
            ratios = [cell["batched_pps"] / cell["per_point_pps"]
                      for cell in payload["cells"]
                      if isinstance(cell, dict)
                      and isinstance(cell.get("per_point_pps"), (int, float))
                      and cell["per_point_pps"] > 0
                      and isinstance(cell.get("batched_pps"), (int, float))]
            if ratios:
                observations.append((batch_size, float(np.mean(ratios))))
    return observations


def recommend_batch_size(results_dir: str | Path | None = None,
                         default: int | None = DEFAULT_BATCH_SIZE) -> int | None:
    """SMM-family ingestion batch size, tuned from the benchmark trajectory.

    Scans ``BENCH_fig3_*.json`` (the throughput sweep and the batched-
    speedup gate CI records every PR) for measured ``(batch_size, speedup)``
    observations and returns the batch size with the best speedup — or
    ``1`` (per-point ingestion) should the trajectory ever show batching
    losing.  With no trajectory available, returns *default* (pass
    ``default=None`` to distinguish "no measurement" from a genuine
    recommendation, as the CLI does).  An explicit
    *results_dir* (or ``$REPRO_BENCH_RESULTS_DIR``) is authoritative;
    otherwise ``benchmarks/results`` is probed under the CWD, then under
    the repo root.  The CLI uses this as the ``--batch-size`` default, so
    a machine that has run the benchmarks streams at its own measured
    sweet spot.
    """
    env = os.environ.get(BATCH_RESULTS_ENV_VAR)
    if results_dir is not None:
        candidates = [Path(results_dir)]
    elif env:
        candidates = [Path(env)]
    else:
        candidates = [Path("benchmarks") / "results",
                      Path(__file__).resolve().parents[2]
                      / "benchmarks" / "results"]
    for directory in candidates:
        if not directory.is_dir():
            continue
        observations = _batch_observations(directory)
        if observations:
            batch_size, speedup = max(observations, key=lambda pair: pair[1])
            return int(batch_size) if speedup >= 1.0 else 1
    return None if default is None else check_positive_int(default, "default")
