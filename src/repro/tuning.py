"""Data-driven parameter tuning: choose ``k'`` and kernel tiles.

The theory prescribes ``k' = (c/eps')^D k``, which is pessimistic and needs
the (usually unknown) doubling dimension ``D``.  Section 7 of the paper
shows small multiples of ``k`` suffice in practice.  This module bridges
the two: it estimates ``D`` from a sample, evaluates the theoretical
sizing, and clamps it to a practical band and an optional memory budget,
giving users a one-call starting point instead of a guess.

:func:`recommend_tile_rows` plays the same role for the blocked
distance-kernel layer: given a metric and a cross-product shape it derives
the row-tile size from a memory budget, and the benchmark harness records
the chosen tiling in the ``BENCH_*.json`` trajectory so kernel-layer
regressions are visible per PR.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.coresets.composable import coreset_size_for
from repro.diversity.objectives import Objective, get_objective
from repro.metricspace.blocked import get_default_memory_budget, tile_rows_for
from repro.metricspace.distance import Metric, get_metric
from repro.metricspace.doubling import estimate_doubling_dimension
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class TuningAdvice:
    """Recommended parameters for a core-set pipeline.

    Attributes
    ----------
    k_prime:
        Recommended core-set parameter.
    estimated_dimension:
        Doubling-dimension estimate from the sample.
    theoretical_k_prime:
        The untruncated Theorem 1-5 sizing (often astronomically large —
        reported for transparency).
    memory_points:
        Predicted sketch memory (in points) at the recommendation.
    """

    k_prime: int
    estimated_dimension: float
    theoretical_k_prime: int
    memory_points: int


def recommend_k_prime(
    points: PointSet,
    k: int,
    objective: str | Objective = "remote-edge",
    epsilon: float = 0.5,
    model: str = "streaming",
    sample_size: int = 2048,
    memory_budget_points: int | None = None,
    seed: RngLike = None,
) -> TuningAdvice:
    """Recommend ``k'`` for a dataset, objective and accuracy target.

    The recommendation is ``min(theoretical, practical band, memory cap)``
    where the practical band is ``[2k, 16k]`` scaled by the estimated
    dimension (higher-dimensional data benefits from more kernel points —
    the empirical lesson of Figures 1-2).

    Parameters
    ----------
    points:
        The dataset (or any representative sample of it).
    k:
        Target solution size.
    objective, epsilon, model:
        Passed to :func:`repro.coresets.composable.coreset_size_for`.
    sample_size:
        Points sampled for the doubling-dimension estimate.
    memory_budget_points:
        Optional hard cap on sketch memory in points; the recommendation
        respects it (EXT sketches cost ``~k`` points per kernel point).

    Example
    -------
    >>> import numpy as np
    >>> ps = PointSet(np.random.default_rng(0).random((500, 2)))
    >>> advice = recommend_k_prime(ps, k=4, seed=0)
    >>> advice.k_prime >= 8
    True
    """
    objective = get_objective(objective)
    check_positive_int(k, "k")
    check_in_range(epsilon, "epsilon", 0.0, 1.0)
    rng = ensure_rng(seed)
    n = len(points)
    if n > sample_size:
        sample = points.subset(rng.choice(n, size=sample_size, replace=False))
    else:
        sample = points
    dimension = estimate_doubling_dimension(sample, num_balls=24,
                                            quantile=0.9, seed=rng)

    theoretical = coreset_size_for(k, epsilon, dimension, objective,
                                   model=model)
    # Practical band: 2k at dimension ~1, widening toward 16k by dim ~6.
    band_multiplier = int(np.clip(2 + 2 * dimension, 2, 16))
    practical = band_multiplier * k
    recommendation = min(theoretical, practical)
    recommendation = max(recommendation, k)

    from repro.streaming.memory import theoretical_memory_points

    if memory_budget_points is not None:
        check_positive_int(memory_budget_points, "memory_budget_points")
        # Shrink k' until the sketch bound fits the budget (or k is hit).
        while (recommendation > k and
               theoretical_memory_points(objective, k, recommendation)
               > memory_budget_points):
            recommendation -= 1
    return TuningAdvice(
        k_prime=int(recommendation),
        estimated_dimension=float(dimension),
        theoretical_k_prime=int(min(theoretical, np.iinfo(np.int64).max)),
        memory_points=theoretical_memory_points(objective, k, recommendation),
    )


@dataclass(frozen=True)
class KernelTuning:
    """Chosen tiling for one blocked-kernel workload.

    Attributes
    ----------
    metric:
        Registry name of the metric.
    tile_rows:
        Left-operand rows per tile.
    tiles:
        Number of tiles the ``(n_rows, n_cols)`` cross product splits into.
    memory_budget_bytes:
        The budget the tile size was derived from.
    accumulating:
        Whether the metric uses the per-dimension accumulation kernel
        (coordinate-wise metrics) or tiled calls to the naive kernel.
    """

    metric: str
    tile_rows: int
    tiles: int
    memory_budget_bytes: int
    accumulating: bool

    def as_dict(self) -> dict:
        """JSON-ready form, recorded into ``BENCH_*.json`` trajectories."""
        return asdict(self)


def recommend_tile_rows(metric: str | Metric, n_rows: int, n_cols: int,
                        dim: int,
                        memory_budget_bytes: int | None = None) -> KernelTuning:
    """Tile sizing for a blocked ``cross``/``pairwise`` of the given shape.

    Thin, recordable wrapper over
    :func:`repro.metricspace.blocked.tile_rows_for`: benchmarks call this
    once per workload and embed the result in their ``BENCH_*.json``
    payloads so the tuning trajectory is versioned alongside wall times.
    """
    metric = get_metric(metric)
    check_positive_int(n_rows, "n_rows")
    check_positive_int(n_cols, "n_cols")
    check_positive_int(dim, "dim")
    budget = (get_default_memory_budget() if memory_budget_bytes is None
              else check_positive_int(memory_budget_bytes, "memory_budget_bytes"))
    tile = tile_rows_for(metric, n_rows, n_cols, dim, budget)
    return KernelTuning(
        metric=metric.name,
        tile_rows=tile,
        tiles=int(np.ceil(n_rows / tile)),
        memory_budget_bytes=budget,
        accumulating=metric.accumulates_per_dimension,
    )
