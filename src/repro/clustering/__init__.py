"""k-center clustering — the primitive beneath every core-set in the paper.

GMM is a 2-approximation for k-center (Gonzalez), SMM is the streaming
8-approximation doubling algorithm (Charikar et al.); both are implemented
in :mod:`repro.coresets` for core-set building.  This package exposes them
as standalone clustering APIs for downstream users who want the k-center
solutions themselves (centers, assignment, radius) rather than diversity
solutions.
"""

from repro.clustering.kcenter import (
    KCenterResult,
    kcenter_greedy,
    kcenter_streaming,
    clustering_radius,
)

__all__ = [
    "KCenterResult",
    "kcenter_greedy",
    "kcenter_streaming",
    "clustering_radius",
]
