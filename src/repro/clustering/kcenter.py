"""Standalone k-center solvers built on the library's core-set machinery.

The k-center problem: pick ``k`` centers minimizing the maximum distance
of any point to its nearest center (the *radius*).  NP-hard; 2 is the best
possible approximation factor (unless P = NP), achieved by the Gonzalez
greedy; the Charikar et al. doubling algorithm achieves 8 in one streaming
pass with ``O(k)`` memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coresets.gmm import gmm
from repro.coresets.smm import SMM
from repro.metricspace.distance import Metric
from repro.metricspace.points import PointSet
from repro.streaming.stream import Stream
from repro.utils.validation import check_k_le_n


@dataclass(frozen=True)
class KCenterResult:
    """A k-center clustering.

    Attributes
    ----------
    centers:
        The chosen centers as a :class:`PointSet`.
    assignment:
        For offline solves, the index (into ``centers``) of each input
        point's nearest center; ``None`` for streaming solves (the points
        are gone).
    radius:
        ``max_p d(p, centers)`` over the input (offline) or the
        algorithm's radius upper bound (streaming).
    """

    centers: PointSet
    assignment: np.ndarray | None
    radius: float

    @property
    def k(self) -> int:
        return len(self.centers)


def kcenter_greedy(points: PointSet, k: int,
                   first_index: int = 0) -> KCenterResult:
    """Gonzalez's farthest-point greedy: a 2-approximation for k-center.

    Example
    -------
    >>> result = kcenter_greedy(PointSet([[0.0], [1.0], [10.0]]), 2)
    >>> result.radius
    1.0
    """
    k = check_k_le_n(k, len(points), what="centers")
    result = gmm(points, k, first_index=first_index)
    return KCenterResult(
        centers=points.subset(result.indices),
        assignment=result.assignment,
        radius=result.range,
    )


def kcenter_streaming(stream: Stream, k: int,
                      metric: str | Metric = "euclidean",
                      batch_size: int | None = 1024) -> KCenterResult:
    """One-pass streaming k-center (doubling algorithm, 8-approximation).

    Runs SMM with ``k' = k``: the kept centers cover the stream within
    ``4 d_ell``, which is at most ``8 r*_k`` [13].

    *batch_size* (default 1024) feeds the stream through the sketch's
    vectorized ``process_batch`` kernel in ``(<= batch_size, dim)`` blocks;
    the resulting centers, threshold and radius bound are identical to
    point-wise ingestion (the covered-filter invariant of the SMM batch
    path).  Pass ``None`` to ingest point-by-point.
    """
    sketch = SMM(k=k, k_prime=k, metric=metric)
    if batch_size is None:
        for point in stream:
            sketch.process(point)
    else:
        for block in stream.batches(batch_size):
            sketch.process_batch(block)
    centers = sketch.finalize()
    # Every stream point is within 4 d_ell of some SMM center.
    radius_bound = 4.0 * sketch.threshold
    if len(centers) > k:
        # SMM holds up to k' + 1 = k + 1 centers; trim greedily to k.  A
        # dropped center is within the trim's own range of a survivor, so
        # the coverage bound grows additively by that range.
        keep = gmm(centers, k)
        radius_bound += keep.range
        centers = centers.subset(keep.indices)
    return KCenterResult(centers=centers, assignment=None, radius=radius_bound)


def clustering_radius(points: PointSet, centers: PointSet) -> float:
    """Exact radius of a given center set over *points*."""
    cross = points.metric.cross(points.points, centers.points)
    return float(cross.min(axis=1).max())
