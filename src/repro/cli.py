"""Command-line interface: ``python -m repro ...``.

Three subcommands cover the common workflows without writing any code:

* ``generate`` — synthesize a dataset (sphere-shell, cube, clusters,
  bag-of-words) and save it via :mod:`repro.datasets.loaders`;
* ``run`` — run one algorithm (streaming / streaming-2pass / mapreduce /
  mapreduce-3round / afz / immm) on a saved or freshly generated dataset
  and print value, ratio and resource usage;
* ``estimate`` — estimate the doubling dimension of a dataset and the
  theoretical ``k'`` for given ``(k, eps)``.

Examples
--------
::

    python -m repro generate sphere-shell --n 100000 --k 16 --out /tmp/data
    python -m repro run mapreduce --data /tmp/data --k 16 --k-prime 64 \
        --objective remote-edge --parallelism 8
    python -m repro estimate --data /tmp/data --k 16 --epsilon 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines.afz import AFZDiversityMaximizer
from repro.baselines.immm import IMMMStreamingMaximizer
from repro.coresets.composable import coreset_size_for
from repro.datasets.loaders import load_points, save_points
from repro.datasets.synthetic import gaussian_clusters, sphere_shell, uniform_cube
from repro.datasets.text import zipf_bag_of_words
from repro.diversity.objectives import list_objectives
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.blocked import set_default_memory_budget
from repro.metricspace.doubling import estimate_doubling_dimension
from repro.metricspace.points import PointSet
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.streaming.stream import ArrayStream

GENERATORS = ("sphere-shell", "cube", "clusters", "bag-of-words")
ALGORITHMS = ("streaming", "streaming-2pass", "mapreduce", "mapreduce-3round",
              "afz", "immm")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diversity maximization with core-sets "
                    "(Ceccarello et al., VLDB 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize and save a dataset")
    gen.add_argument("generator", choices=GENERATORS)
    gen.add_argument("--n", type=int, default=10_000)
    gen.add_argument("--k", type=int, default=8,
                     help="planted far points (sphere-shell only)")
    gen.add_argument("--dim", type=int, default=3)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output path (no extension)")

    run = sub.add_parser("run", help="run one algorithm on a dataset")
    run.add_argument("algorithm", choices=ALGORITHMS)
    run.add_argument("--data", required=True,
                     help="dataset path saved by 'generate'")
    run.add_argument("--k", type=int, required=True)
    run.add_argument("--k-prime", type=int, default=None,
                     help="core-set parameter (default 4k)")
    run.add_argument("--objective", choices=list_objectives(),
                     default="remote-edge")
    run.add_argument("--parallelism", type=int, default=4)
    run.add_argument("--executor", choices=("serial", "process"),
                     default="serial",
                     help="reducer executor for the MapReduce algorithms: "
                          "'process' uses the persistent worker pool with "
                          "zero-copy shared-memory partitions (identical "
                          "results, real parallelism)")
    run.add_argument("--batch-size", type=int, default=None,
                     help="ingest the stream in blocks of this many points "
                          "through the vectorized sketch kernel "
                          "(streaming algorithms only; same results, "
                          "higher throughput)")
    run.add_argument("--kernel-budget-mb", type=int, default=None,
                     help="memory budget (MiB) for blocked distance-kernel "
                          "intermediates; default 64")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--with-ratio", action="store_true",
                     help="also compute the reference value and ratio")

    est = sub.add_parser("estimate",
                         help="estimate doubling dimension and k' sizing")
    est.add_argument("--data", required=True)
    est.add_argument("--k", type=int, default=8)
    est.add_argument("--epsilon", type=float, default=1.0)
    est.add_argument("--objective", choices=list_objectives(),
                     default="remote-edge")
    est.add_argument("--seed", type=int, default=0)
    return parser


def _generate(args: argparse.Namespace) -> int:
    if args.generator == "sphere-shell":
        points = sphere_shell(args.n, args.k, dim=args.dim, seed=args.seed)
    elif args.generator == "cube":
        points = uniform_cube(args.n, dim=args.dim, seed=args.seed)
    elif args.generator == "clusters":
        points = gaussian_clusters(args.n, dim=args.dim, seed=args.seed)
    else:
        points = zipf_bag_of_words(args.n, seed=args.seed)
    save_points(points, args.out)
    print(f"wrote {len(points)} points (dim {points.dim}, "
          f"metric {points.metric.name}) to {args.out}.npy")
    return 0


def _run(args: argparse.Namespace) -> int:
    points = load_points(args.data)
    k_prime = args.k_prime if args.k_prime is not None else 4 * args.k
    metric = points.metric
    if args.kernel_budget_mb is not None:
        set_default_memory_budget(args.kernel_budget_mb * 2**20)

    if args.algorithm == "streaming":
        algo = StreamingDiversityMaximizer(k=args.k, k_prime=k_prime,
                                           objective=args.objective,
                                           metric=metric,
                                           batch_size=args.batch_size)
        result = algo.run(ArrayStream(points.points))
        resources = (f"memory {result.peak_memory_points} pts, "
                     f"{result.kernel_throughput:,.0f} pts/s")
    elif args.algorithm == "streaming-2pass":
        algo = TwoPassStreamingDiversityMaximizer(k=args.k, k_prime=k_prime,
                                                  objective=args.objective,
                                                  metric=metric,
                                                  batch_size=args.batch_size)
        result = algo.run(ArrayStream(points.points))
        resources = f"memory {result.peak_memory_points} pts, 2 passes"
    elif args.algorithm == "mapreduce":
        with MRDiversityMaximizer(k=args.k, k_prime=k_prime,
                                  objective=args.objective,
                                  parallelism=args.parallelism,
                                  metric=metric, seed=args.seed,
                                  executor=args.executor) as algo:
            result = algo.run(points)
        resources = (f"M_L {result.stats.max_local_memory_points} pts, "
                     f"{result.rounds} rounds, {args.executor}")
    elif args.algorithm == "mapreduce-3round":
        with MRDiversityMaximizer(k=args.k, k_prime=k_prime,
                                  objective=args.objective,
                                  parallelism=args.parallelism,
                                  metric=metric, seed=args.seed,
                                  executor=args.executor) as algo:
            result = algo.run_three_round(points)
        resources = (f"M_L {result.stats.max_local_memory_points} pts, "
                     f"{result.rounds} rounds, {args.executor}")
    elif args.algorithm == "afz":
        with AFZDiversityMaximizer(k=args.k, objective=args.objective,
                                   parallelism=args.parallelism,
                                   metric=metric, seed=args.seed,
                                   executor=args.executor) as algo:
            result = algo.run(points)
        resources = f"core-set {result.coreset_size} pts, {args.executor}"
    else:  # immm
        algo = IMMMStreamingMaximizer(k=args.k, expected_n=len(points),
                                      objective=args.objective, metric=metric)
        result = algo.run(ArrayStream(points.points))
        resources = (f"memory {result.peak_memory_points} pts, "
                     f"{result.blocks} blocks")

    print(f"{args.algorithm}  {args.objective}  k={args.k} k'={k_prime}")
    print(f"  value = {result.value:.6f}   [{resources}]")
    if args.with_ratio:
        reference = reference_value(points, args.k, args.objective)
        print(f"  ratio vs best-found reference = "
              f"{approximation_ratio(reference, result.value):.4f}")
    return 0


def _estimate(args: argparse.Namespace) -> int:
    points = load_points(args.data)
    dimension = estimate_doubling_dimension(points, seed=args.seed,
                                            quantile=0.9)
    print(f"estimated doubling dimension: {dimension:.2f}")
    for model in ("mapreduce", "streaming"):
        size = coreset_size_for(args.k, args.epsilon, dimension,
                                args.objective, model=model)
        print(f"theoretical k' ({model:9s}, eps={args.epsilon}): {size}")
    print(f"practical suggestion: k' in [{2 * args.k}, {8 * args.k}] "
          "(Section 7 of the paper)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _generate(args)
    if args.command == "run":
        return _run(args)
    return _estimate(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
