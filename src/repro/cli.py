"""Command-line interface: ``python -m repro ...``.

Eleven subcommands cover the common workflows without writing any code:

* ``generate`` — synthesize a dataset (sphere-shell, cube, clusters,
  bag-of-words) and save it via :mod:`repro.datasets.loaders`;
* ``run`` — run one algorithm (streaming / streaming-2pass / mapreduce /
  mapreduce-3round / afz / immm) on a saved or freshly generated dataset
  and print value, ratio and resource usage;
* ``estimate`` — estimate the doubling dimension of a dataset and the
  theoretical ``k'`` for given ``(k, eps)``;
* ``index`` — ingest a dataset once into a build-once/serve-many core-set
  index (a ladder of resolutions per objective family) and persist it;
* ``query`` — answer ``(objective, k, eps)`` requests from a saved index,
  never touching the original dataset (``--plan auto`` lets the
  cost-model planner pick the executor per batch, answers unchanged);
* ``calibrate`` — measure this machine's kernel/solve/dispatch costs
  once into the profile (``.repro_profile.json`` format v3) so the
  query planner predicts with fitted numbers instead of defaults;
* ``plan`` — explain the plan a query would run under ``--plan auto``:
  chosen rung, matrix strategy, and every executor's predicted cost;
* ``refresh`` — absorb new data into a saved index incrementally (batched
  SMM per rung + composable re-merge), no MapReduce rebuild;
* ``registry`` — manage a multi-tenant registry directory
  (``add`` / ``remove`` / ``list`` / ``tune``): a ``registry.json``
  manifest naming the persisted indexes that ``serve --registry`` loads
  as tenants; ``tune`` rewrites the manifest QoS weights from a live
  daemon's observed per-tenant traffic;
* ``serve`` — run the long-lived serving daemon over a saved index
  (``--index``) or a whole registry of them (``--registry``, with
  ``--max-resident`` hot/cold tiering): newline-delimited JSON over TCP
  plus an HTTP/1.1 adapter on one port, with micro-batching, bounded
  admission queues and graceful SIGTERM drain (see ``docs/serving.md``);
* ``serve-bench`` — measure queries/sec and per-query latency
  percentiles: rebuild-per-query vs the warm service path vs the
  LRU-cached path, optionally with a concurrent worker sweep
  (``--threads``, and ``--executor {serial,thread,process}`` to pick the
  query-execution backend — process workers solve over a shared-memory
  data plane with answers bit-identical to serial) and an open-loop
  daemon load test (``--serve-qps``).

The generated reference in ``docs/cli.md`` (see ``docs/generate_cli.py``)
is kept in sync with these parsers by ``tests/test_docs.py`` and the CI
docs job.

Examples
--------
::

    python -m repro generate sphere-shell --n 100000 --k 16 --out /tmp/data
    python -m repro run mapreduce --data /tmp/data --k 16 --k-prime 64 \
        --objective remote-edge --parallelism 8
    python -m repro estimate --data /tmp/data --k 16 --epsilon 0.5
    python -m repro index --data /tmp/data --k-max 32 --out /tmp/idx
    python -m repro query --index /tmp/idx --objective remote-clique --k 8
    python -m repro calibrate --executors serial,thread
    python -m repro plan --index /tmp/idx --objective remote-clique --k 8
    python -m repro query --index /tmp/idx --objective remote-clique --k 8 \
        --plan auto
    python -m repro refresh --index /tmp/idx --data /tmp/more_data
    python -m repro registry add --dir /tmp/fleet --id eu --index /tmp/idx
    python -m repro serve --index /tmp/idx --port 7077
    python -m repro serve --registry /tmp/fleet --max-resident 2
    python -m repro serve-bench --data /tmp/data --k-max 16 --queries 24 \
        --threads 4 --serve-qps 100
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines.afz import AFZDiversityMaximizer
from repro.baselines.immm import IMMMStreamingMaximizer
from repro.coresets.composable import coreset_size_for
from repro.datasets.loaders import load_points, save_points
from repro.datasets.synthetic import gaussian_clusters, sphere_shell, uniform_cube
from repro.datasets.text import zipf_bag_of_words
from repro.diversity.objectives import list_objectives
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.blocked import set_default_memory_budget
from repro.metricspace.doubling import estimate_doubling_dimension
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.service import (
    DiversityService,
    build_coreset_index,
    load_index,
    measure_concurrent_throughput,
    measure_service_throughput,
    save_index,
)
from repro.service.index import FAMILIES
from repro.streaming.stream import ArrayStream
from repro.tuning import (
    DEFAULT_BATCH_SIZE,
    recommend_batch_size,
    recommend_matrix_budget_mb,
)

GENERATORS = ("sphere-shell", "cube", "clusters", "bag-of-words")
ALGORITHMS = ("streaming", "streaming-2pass", "mapreduce", "mapreduce-3round",
              "afz", "immm")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diversity maximization with core-sets "
                    "(Ceccarello et al., VLDB 2017 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize and save a dataset")
    gen.add_argument("generator", choices=GENERATORS)
    gen.add_argument("--n", type=int, default=10_000)
    gen.add_argument("--k", type=int, default=8,
                     help="planted far points (sphere-shell only)")
    gen.add_argument("--dim", type=int, default=3)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output path (no extension)")

    run = sub.add_parser("run", help="run one algorithm on a dataset")
    run.add_argument("algorithm", choices=ALGORITHMS)
    run.add_argument("--data", required=True,
                     help="dataset path saved by 'generate'")
    run.add_argument("--k", type=int, required=True)
    run.add_argument("--k-prime", type=int, default=None,
                     help="core-set parameter (default 4k)")
    run.add_argument("--objective", choices=list_objectives(),
                     default="remote-edge")
    run.add_argument("--parallelism", type=int, default=4)
    run.add_argument("--executor", choices=("serial", "process"),
                     default="serial",
                     help="reducer executor for the MapReduce algorithms: "
                          "'process' uses the persistent worker pool with "
                          "zero-copy shared-memory partitions (identical "
                          "results, real parallelism)")
    run.add_argument("--batch-size", type=int, default=None,
                     help="ingest the stream in blocks of this many points "
                          "through the vectorized sketch kernel "
                          "(streaming algorithms only; same results, "
                          "higher throughput); when omitted, auto-tuned "
                          "from the recorded BENCH_fig3_*.json trajectory")
    run.add_argument("--kernel-budget-mb", type=int, default=None,
                     help="memory budget (MiB) for blocked distance-kernel "
                          "intermediates; default 64")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--with-ratio", action="store_true",
                     help="also compute the reference value and ratio")

    est = sub.add_parser("estimate",
                         help="estimate doubling dimension and k' sizing")
    est.add_argument("--data", required=True)
    est.add_argument("--k", type=int, default=8)
    est.add_argument("--epsilon", type=float, default=1.0)
    est.add_argument("--objective", choices=list_objectives(),
                     default="remote-edge")
    est.add_argument("--seed", type=int, default=0)

    idx = sub.add_parser(
        "index", help="ingest a dataset once into a persisted core-set index")
    idx.add_argument("--data", required=True,
                     help="dataset path saved by 'generate'")
    idx.add_argument("--k-max", type=int, required=True,
                     help="largest query k the index must serve")
    idx.add_argument("--out", required=True,
                     help="index output path (writes <out>.npz + <out>.json)")
    idx.add_argument("--families", default=",".join(FAMILIES),
                     help="comma-separated construction families to build "
                          f"(default: {','.join(FAMILIES)})")
    idx.add_argument("--multiplier", type=int, default=4,
                     help="kernel size per rung is multiplier * k_cap")
    idx.add_argument("--growth", type=int, default=2,
                     help="geometric growth of rung capacities")
    idx.add_argument("--k-min", type=int, default=4,
                     help="smallest rung capacity")
    idx.add_argument("--parallelism", type=int, default=4)
    idx.add_argument("--executor", choices=("serial", "process"),
                     default="serial")
    idx.add_argument("--dtype", choices=("float64", "float32"),
                     default="float64",
                     help="storage dtype for the built index; float32 "
                          "halves matrix memory and speeds bandwidth-bound "
                          "queries (see docs/performance.md)")
    idx.add_argument("--seed", type=int, default=0)

    qry = sub.add_parser(
        "query", help="answer a diversity query from a saved index")
    qry.add_argument("--index", required=True,
                     help="index path written by 'index'")
    qry.add_argument("--objective", choices=list_objectives(),
                     default="remote-edge")
    qry.add_argument("--k", type=int, required=True)
    qry.add_argument("--epsilon", type=float, default=1.0,
                     help="approximation slack; smaller routes to a larger "
                          "ladder rung")
    qry.add_argument("--repeat", type=int, default=1,
                     help="repeat the query to exercise the result cache")
    qry.add_argument("--matrix-budget-mb", type=int, default=None,
                     help="memory budget (MiB) for cached rung distance "
                          "matrices, with LRU eviction and on-demand "
                          "recompute; default: $REPRO_MATRIX_BUDGET_MB, "
                          "else unbudgeted")
    qry.add_argument("--dtype", choices=("float64", "float32"), default=None,
                     help="cast the loaded index to this dtype before "
                          "serving (default: keep its stored dtype)")
    qry.add_argument("--plan", choices=("static", "auto"), default="static",
                     help="query planning: 'static' is today's fixed "
                          "routing/executor policy; 'auto' picks the "
                          "cheapest executor and matrix strategy per "
                          "batch from the calibrated cost model (run "
                          "'repro calibrate' first; answers identical)")

    cal = sub.add_parser(
        "calibrate",
        help="measure kernel/solve/dispatch costs into the planner profile")
    cal.add_argument("--sizes", default="96,256",
                     help="comma-separated synthetic core-set sizes the "
                          "matrix/solve measurements run on")
    cal.add_argument("--executors", default="serial,thread,process",
                     help="comma-separated executors to fit dispatch "
                          "overhead and parallel solve scale for")
    cal.add_argument("--repeats", type=int, default=2,
                     help="timing repeats per measurement (best-of)")
    cal.add_argument("--seed", type=int, default=0)
    cal.add_argument("--profile", default=None,
                     help="profile path to write (default: "
                          "$REPRO_PROFILE_PATH, else ./.repro_profile.json;"
                          " kernel-tuning entries already there survive)")

    pln = sub.add_parser(
        "plan",
        help="explain the plan a query would run under --plan auto")
    pln.add_argument("--index", required=True,
                     help="index path written by 'index'")
    pln.add_argument("--objective", choices=list_objectives(),
                     default="remote-edge")
    pln.add_argument("--k", type=int, required=True)
    pln.add_argument("--epsilon", type=float, default=1.0)
    pln.add_argument("--batch", type=int, default=1,
                     help="plan a batch of this many queries, k stepping "
                          "down from --k (executor choice shifts as "
                          "solve work grows)")
    pln.add_argument("--dtype", choices=("float64", "float32"), default=None,
                     help="cast the loaded index to this dtype first")

    rfr = sub.add_parser(
        "refresh",
        help="absorb new data into a saved index without a rebuild")
    rfr.add_argument("--index", required=True,
                     help="index path written by 'index' (or a prior "
                          "'refresh')")
    rfr.add_argument("--data", required=True,
                     help="new points to ingest (path saved by 'generate')")
    rfr.add_argument("--out", default=None,
                     help="output index path (default: update --index "
                          "in place)")
    rfr.add_argument("--batch-size", type=int, default=None,
                     help="SMM ingestion block size for the per-rung "
                          "sketches; when omitted, auto-tuned from the "
                          "recorded benchmark trajectory")

    reg = sub.add_parser(
        "registry",
        help="manage a multi-tenant registry directory for 'serve'")
    regsub = reg.add_subparsers(dest="registry_command", required=True)
    radd = regsub.add_parser(
        "add", help="register one dataset (tenant) into a registry")
    radd.add_argument("--dir", required=True,
                      help="registry directory (created with its "
                           "registry.json manifest if missing)")
    radd.add_argument("--id", required=True, dest="dataset_id",
                      help="dataset_id clients route queries with")
    radd.add_argument("--index", default=None,
                      help="existing index path written by 'index' "
                           "(copied into the registry directory)")
    radd.add_argument("--data", default=None,
                      help="dataset path saved by 'generate' — builds "
                           "the tenant's index now (needs --k-max)")
    radd.add_argument("--k-max", type=int, default=None,
                      help="largest query k (required with --data)")
    radd.add_argument("--dtype", choices=("float64", "float32"),
                      default=None,
                      help="serving dtype for this tenant (default: "
                           "the index's stored dtype)")
    radd.add_argument("--weight", type=float, default=None,
                      help="relative dispatch share under 'serve --qos' "
                           "weighted fair queueing (default 1.0; a "
                           "weight-2 tenant drains twice as fast as a "
                           "weight-1 tenant when both are backlogged)")
    radd.add_argument("--max-queue", type=int, default=None,
                      help="per-tenant admission bound under 'serve "
                           "--qos' (default: the daemon's global "
                           "--max-queue)")
    radd.add_argument("--rate-limit", type=float, default=None,
                      help="token-bucket admission rate limit in "
                           "requests/second under 'serve --qos' "
                           "(0 rejects everything — a kill switch; "
                           "default: unlimited)")
    radd.add_argument("--parallelism", type=int, default=4)
    radd.add_argument("--seed", type=int, default=0)
    rrm = regsub.add_parser(
        "remove", help="deregister a tenant (index files are kept)")
    rrm.add_argument("--dir", required=True, help="registry directory")
    rrm.add_argument("--id", required=True, dest="dataset_id")
    rls = regsub.add_parser(
        "list", help="list the tenants a registry directory serves")
    rls.add_argument("--dir", required=True, help="registry directory")
    rtn = regsub.add_parser(
        "tune",
        help="rewrite manifest QoS weights from a daemon's observed "
             "per-tenant traffic")
    rtn.add_argument("--dir", required=True, help="registry directory")
    rtn.add_argument("--host", default="127.0.0.1",
                     help="daemon host to fetch GET /stats from")
    rtn.add_argument("--port", type=int, default=None,
                     help="daemon port to fetch GET /stats from (the "
                          "daemon must serve --registry --qos)")
    rtn.add_argument("--stats-json", default=None,
                     help="tune from a saved stats payload instead of a "
                          "live daemon (a GET /stats response body)")
    rtn.add_argument("--max-weight", type=int, default=4,
                     help="weight granted to the busiest tenant; others "
                          "scale down proportionally (min 1)")

    dmn = sub.add_parser(
        "serve",
        help="serve diversity queries from a saved index over TCP/HTTP")
    dmn_source = dmn.add_mutually_exclusive_group(required=True)
    dmn_source.add_argument("--index",
                            help="index path written by 'index'")
    dmn_source.add_argument("--registry", metavar="DIR",
                            help="serve every tenant of a registry "
                                 "directory (see 'repro registry'); "
                                 "queries route by their 'dataset' field")
    dmn.add_argument("--max-resident", type=int, default=None,
                     help="registry mode: how many tenants may stay hot "
                          "at once; the LRU rest are evicted to disk "
                          "and faulted back on demand (default: "
                          "$REPRO_MAX_RESIDENT, else unlimited)")
    dmn.add_argument("--host", default="127.0.0.1")
    dmn.add_argument("--port", type=int, default=0,
                     help="TCP port (0: pick an ephemeral port and "
                          "print it)")
    dmn.add_argument("--batch-window-ms", type=float, default=20.0,
                     help="micro-batching window: after the first queued "
                          "request, wait up to this long to coalesce more "
                          "into one query_batch call (0 disables)")
    dmn.add_argument("--max-queue", type=int, default=64,
                     help="bounded admission queue; beyond it requests "
                          "are rejected with 'overloaded' + retry-after "
                          "(with --qos: the default per-tenant bound)")
    dmn.add_argument("--qos", action="store_true",
                     help="registry mode: tenant-aware admission "
                          "control — per-tenant queues drained in "
                          "weighted deficit-round-robin order under "
                          "each tenant's manifest quota (weight, "
                          "max_queue, rate limit; see 'registry add')")
    dmn.add_argument("--max-batch", type=int, default=16,
                     help="most requests one dispatch may coalesce")
    dmn.add_argument("--drain-timeout-s", type=float, default=30.0,
                     help="longest a SIGTERM drain waits for in-flight "
                          "work before giving up on dead peers")
    dmn.add_argument("--executor", choices=("serial", "thread", "process"),
                     default="serial",
                     help="service execution backend for dispatched "
                          "batches (answers are bit-identical across "
                          "backends)")
    dmn.add_argument("--matrix-budget-mb", type=int, default=None,
                     help="matrix-cache budget (MiB) for the served "
                          "index; default: $REPRO_MATRIX_BUDGET_MB, "
                          "else unbudgeted")
    dmn.add_argument("--dtype", choices=("float64", "float32"), default=None,
                     help="cast the loaded index to this dtype before "
                          "serving (default: keep its stored dtype)")
    dmn.add_argument("--plan", choices=("static", "auto"), default="static",
                     help="query planning for dispatched batches: 'auto' "
                          "groups micro-batches by their predicted-"
                          "cheapest plan and executes accordingly "
                          "(answers identical; run 'repro calibrate' "
                          "first)")

    srv = sub.add_parser(
        "serve-bench",
        help="queries/sec: rebuild-per-query vs warm service vs LRU cache")
    srv.add_argument("--data", required=True)
    srv.add_argument("--k-max", type=int, default=16)
    srv.add_argument("--queries", type=int, default=24)
    srv.add_argument("--rebuild-queries", type=int, default=3,
                     help="workload prefix measured under the "
                          "rebuild-per-query baseline")
    srv.add_argument("--parallelism", type=int, default=4)
    srv.add_argument("--executor", choices=("serial", "thread", "process"),
                     default="serial",
                     help="query-execution backend for the concurrency "
                          "sweep ('process' also builds the index through "
                          "the MapReduce process executor); all backends "
                          "return answers bit-identical to serial "
                          "query_batch")
    srv.add_argument("--threads", type=int, default=0,
                     help="also measure query_concurrent with this many "
                          "workers against serial query_batch (0: skip "
                          "the sweep unless --executor is thread/process, "
                          "which defaults it to 4)")
    srv.add_argument("--matrix-budget-mb", type=int, default=None,
                     help="matrix-cache budget (MiB) for the measured "
                          "services; default: $REPRO_MATRIX_BUDGET_MB, "
                          "else unbudgeted")
    srv.add_argument("--serve-qps", type=float, default=0.0,
                     help="also load-test the serving daemon end to end: "
                          "open-loop NDJSON requests at this rate against "
                          "an in-process repro-serve instance (0: skip)")
    srv.add_argument("--serve-requests", type=int, default=64,
                     help="requests sent by the --serve-qps load test")
    srv.add_argument("--seed", type=int, default=0)
    return parser


def _generate(args: argparse.Namespace) -> int:
    if args.generator == "sphere-shell":
        points = sphere_shell(args.n, args.k, dim=args.dim, seed=args.seed)
    elif args.generator == "cube":
        points = uniform_cube(args.n, dim=args.dim, seed=args.seed)
    elif args.generator == "clusters":
        points = gaussian_clusters(args.n, dim=args.dim, seed=args.seed)
    else:
        points = zipf_bag_of_words(args.n, seed=args.seed)
    save_points(points, args.out)
    print(f"wrote {len(points)} points (dim {points.dim}, "
          f"metric {points.metric.name}) to {args.out}.npy")
    return 0


def _run(args: argparse.Namespace) -> int:
    points = load_points(args.data)
    k_prime = args.k_prime if args.k_prime is not None else 4 * args.k
    metric = points.metric
    if args.kernel_budget_mb is not None:
        set_default_memory_budget(args.kernel_budget_mb * 2**20)
    if (args.batch_size is None
            and args.algorithm in ("streaming", "streaming-2pass")):
        recommended = recommend_batch_size(default=None)
        if recommended is not None:
            args.batch_size = recommended
            print(f"batch size {recommended} (auto-tuned from the benchmark "
                  "trajectory; override with --batch-size)")
        else:
            args.batch_size = DEFAULT_BATCH_SIZE
            print(f"batch size {DEFAULT_BATCH_SIZE} (default — no recorded "
                  "trajectory; run the fig3 benchmark to auto-tune, or set "
                  "--batch-size)")

    if args.algorithm == "streaming":
        algo = StreamingDiversityMaximizer(k=args.k, k_prime=k_prime,
                                           objective=args.objective,
                                           metric=metric,
                                           batch_size=args.batch_size)
        result = algo.run(ArrayStream(points.points))
        resources = (f"memory {result.peak_memory_points} pts, "
                     f"{result.kernel_throughput:,.0f} pts/s")
    elif args.algorithm == "streaming-2pass":
        algo = TwoPassStreamingDiversityMaximizer(k=args.k, k_prime=k_prime,
                                                  objective=args.objective,
                                                  metric=metric,
                                                  batch_size=args.batch_size)
        result = algo.run(ArrayStream(points.points))
        resources = f"memory {result.peak_memory_points} pts, 2 passes"
    elif args.algorithm == "mapreduce":
        with MRDiversityMaximizer(k=args.k, k_prime=k_prime,
                                  objective=args.objective,
                                  parallelism=args.parallelism,
                                  metric=metric, seed=args.seed,
                                  executor=args.executor) as algo:
            result = algo.run(points)
        resources = (f"M_L {result.stats.max_local_memory_points} pts, "
                     f"{result.rounds} rounds, {args.executor}")
    elif args.algorithm == "mapreduce-3round":
        with MRDiversityMaximizer(k=args.k, k_prime=k_prime,
                                  objective=args.objective,
                                  parallelism=args.parallelism,
                                  metric=metric, seed=args.seed,
                                  executor=args.executor) as algo:
            result = algo.run_three_round(points)
        resources = (f"M_L {result.stats.max_local_memory_points} pts, "
                     f"{result.rounds} rounds, {args.executor}")
    elif args.algorithm == "afz":
        with AFZDiversityMaximizer(k=args.k, objective=args.objective,
                                   parallelism=args.parallelism,
                                   metric=metric, seed=args.seed,
                                   executor=args.executor) as algo:
            result = algo.run(points)
        resources = f"core-set {result.coreset_size} pts, {args.executor}"
    else:  # immm
        algo = IMMMStreamingMaximizer(k=args.k, expected_n=len(points),
                                      objective=args.objective, metric=metric)
        result = algo.run(ArrayStream(points.points))
        resources = (f"memory {result.peak_memory_points} pts, "
                     f"{result.blocks} blocks")

    print(f"{args.algorithm}  {args.objective}  k={args.k} k'={k_prime}")
    print(f"  value = {result.value:.6f}   [{resources}]")
    if args.with_ratio:
        reference = reference_value(points, args.k, args.objective)
        print(f"  ratio vs best-found reference = "
              f"{approximation_ratio(reference, result.value):.4f}")
    return 0


def _estimate(args: argparse.Namespace) -> int:
    points = load_points(args.data)
    dimension = estimate_doubling_dimension(points, seed=args.seed,
                                            quantile=0.9)
    print(f"estimated doubling dimension: {dimension:.2f}")
    for model in ("mapreduce", "streaming"):
        size = coreset_size_for(args.k, args.epsilon, dimension,
                                args.objective, model=model)
        print(f"theoretical k' ({model:9s}, eps={args.epsilon}): {size}")
    print(f"practical suggestion: k' in [{2 * args.k}, {8 * args.k}] "
          "(Section 7 of the paper)")
    return 0


def _index(args: argparse.Namespace) -> int:
    points = load_points(args.data)
    families = tuple(name.strip() for name in args.families.split(",")
                     if name.strip())
    index = build_coreset_index(
        points, args.k_max, families=families, multiplier=args.multiplier,
        growth=args.growth, k_min=args.k_min, parallelism=args.parallelism,
        executor=args.executor, seed=args.seed, dtype=args.dtype,
    )
    save_index(index, args.out)
    print(f"indexed {len(points)} points (metric {index.metric_name}, "
          f"dtype {index.dtype}, "
          f"estimated dimension {index.dimension_estimate:.2f}) "
          f"in {index.build_seconds:.2f}s [{args.executor}]")
    for rung in index.all_rungs():
        print(f"  rung {rung.family:8s} k<={rung.k_cap:<4d} k'={rung.k_prime:<5d} "
              f"{len(rung.coreset):6d} pts  ({rung.build_seconds:.3f}s)")
    print(f"wrote {args.out}.npz + {args.out}.json "
          f"({index.build_calls} core-set builds, amortized over all queries)")
    budget = recommend_matrix_budget_mb(
        [len(rung.coreset) for rung in index.all_rungs()],
        dtype=index.dtype)
    print(f"suggested REPRO_MATRIX_BUDGET_MB={budget} "
          "(keeps the two largest rung matrices resident)")
    return 0


def _query(args: argparse.Namespace) -> int:
    service = DiversityService.from_file(
        args.index, matrix_budget_mb=args.matrix_budget_mb,
        dtype=args.dtype, plan=args.plan)
    for _ in range(max(args.repeat, 1)):
        result = service.query(args.objective, args.k, epsilon=args.epsilon)
        family, k_cap, k_prime = result.rung
        source = ("cache hit" if result.cached
                  else f"solved in {result.solve_seconds * 1e3:.2f} ms")
        print(f"{result.objective}  k={result.k} eps={result.epsilon}  "
              f"value = {result.value:.6f}   "
              f"[rung {family} k'={k_prime} (k<={k_cap}), {source}]")
    stats = service.stats()
    results_cache = stats["caches"]["results"]
    print(f"  cache: {results_cache['hits']} hits / "
          f"{results_cache['misses']} misses, "
          f"builds during queries: {stats['counters']['build_calls']}")
    matrices = stats["matrices"]["local"]
    if matrices["budget_bytes"] is not None:
        print(f"  matrices: {matrices['cached']} resident "
              f"({matrices['resident_bytes'] / 2**20:.1f} MiB of "
              f"{matrices['budget_bytes'] / 2**20:.0f} MiB budget), "
              f"{matrices['evictions']} evictions, "
              f"{matrices['recomputes']} recomputes")
    if args.plan == "auto":
        planner = stats["planner"]
        plans = ", ".join(f"{name} x{count}"
                          for name, count in planner["plans"].items()
                          if count)
        error = planner["mean_rel_error"]
        print(f"  planner: {planner['planned']} planned batches "
              f"[{plans or 'none'}], model "
              f"{'calibrated' if planner['calibrated'] else 'defaults'}, "
              f"mean rel error "
              f"{'n/a' if error is None else f'{error:.2f}'}")
    return 0


def _calibrate(args: argparse.Namespace) -> int:
    from repro.service import EXECUTOR_NAMES, run_calibration
    from repro.tuning import save_calibration

    executors = tuple(name.strip() for name in args.executors.split(",")
                      if name.strip())
    for name in executors:
        if name not in EXECUTOR_NAMES:
            print(f"unknown executor {name!r}; "
                  f"known: {', '.join(EXECUTOR_NAMES)}", file=sys.stderr)
            return 2
    sizes = tuple(int(size) for size in args.sizes.split(",") if size.strip())
    payload = run_calibration(sizes=sizes, executors=executors,
                              repeats=args.repeats, seed=args.seed)
    path = save_calibration(payload, args.profile)
    print(f"calibrated on core-set sizes {list(sizes)} "
          f"(best of {args.repeats}):")
    for dtype, rate in sorted(payload["matrix_seconds_per_cell"].items()):
        print(f"  matrix  {dtype:8s} {rate * 1e9:8.3f} ns/cell")
    for objective, rate in sorted(payload["solve_seconds_per_cell"].items()):
        print(f"  solve   {objective:18s} {rate * 1e9:8.1f} ns/(k*n) cell")
    for name in executors:
        dispatch = payload["dispatch_seconds"].get(name, 0.0)
        scale = payload["solve_scale"].get(name, 1.0)
        print(f"  executor {name:8s} dispatch {dispatch * 1e3:7.3f} ms, "
              f"solve scale {scale:.2f}")
    print(f"wrote planner calibration into {path} (profile format v3)")
    return 0


def _plan(args: argparse.Namespace) -> int:
    from repro.service import Query, explain_plan

    service = DiversityService.from_file(args.index, dtype=args.dtype,
                                         plan="auto")
    # Distinct k per batch slot: identical repeats would be solved (and
    # priced) once, which hides how the plan shifts with solve work.
    queries = [Query(args.objective, max(args.k - i, 2), args.epsilon)
               for i in range(max(args.batch, 1))]
    rung = service.index.route(args.objective, args.k, args.epsilon)
    print(f"query: {args.objective} k={args.k} eps={args.epsilon} "
          f"(batch {len(queries)}; index dtype {service.index.dtype})")
    print(f"routed rung: {rung.family} k<={rung.k_cap} k'={rung.k_prime} "
          f"({len(rung.coreset)} core-set points; static routing — the "
          "planner never changes the rung)")
    plan = service.preview_plan(queries)
    print(explain_plan(plan, service._planner.model))
    return 0


def _refresh(args: argparse.Namespace) -> int:
    points = load_points(args.data)
    index = load_index(args.index)
    n_before = index.source.get("n", "?")
    extended = index.extend(points, batch_size=args.batch_size)
    out = args.out if args.out is not None else args.index
    save_index(extended, out)
    refresh = extended.extra["refreshes"][-1]
    print(f"refreshed index: {n_before} -> {extended.source.get('n')} points "
          f"({refresh['sketch_builds']} streaming sketch builds, "
          f"{refresh['seconds']:.2f}s, no MapReduce rebuild)")
    reestimates = extended.extra.get("dimension_reestimates", [])
    if reestimates and reestimates[-1]["n"] == extended.source.get("n"):
        latest = reestimates[-1]
        print(f"  routing dimension re-estimated: "
              f"{latest['previous']:.2f} -> {latest['estimate']:.2f} "
              f"(data grew >=2x since the last estimate)")
    for rung in extended.all_rungs():
        print(f"  rung {rung.family:8s} k<={rung.k_cap:<4d} "
              f"k'={rung.k_prime:<5d} {len(rung.coreset):6d} pts")
    print(f"wrote {out}.npz + {out}.json "
          f"(refresh #{len(extended.extra['refreshes'])})")
    return 0


def _registry(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.qos import TenantQuota
    from repro.service.registry import MANIFEST_NAME, IndexRegistry

    directory = Path(args.dir)
    has_manifest = (directory / MANIFEST_NAME).exists()
    if args.registry_command == "add":
        if (args.index is None) == (args.data is None):
            print("registry add needs exactly one of --index or --data",
                  file=sys.stderr)
            return 2
        quota = None
        if (args.weight is not None or args.max_queue is not None
                or args.rate_limit is not None):
            quota = TenantQuota(
                weight=args.weight if args.weight is not None else 1.0,
                max_queue=args.max_queue,
                rate_limit_qps=args.rate_limit)
        registry = (IndexRegistry.from_directory(directory) if has_manifest
                    else IndexRegistry(spill_dir=directory))
        with registry:
            if args.index is not None:
                registry.register(args.dataset_id, path=args.index,
                                  dtype=args.dtype, quota=quota)
            else:
                if args.k_max is None:
                    print("registry add --data needs --k-max",
                          file=sys.stderr)
                    return 2
                index = build_coreset_index(
                    load_points(args.data), args.k_max,
                    parallelism=args.parallelism, seed=args.seed,
                    dtype=args.dtype or "float64")
                registry.register(args.dataset_id, index, quota=quota)
            manifest = registry.save_manifest(directory)
            count = len(registry.list())
        print(f"registered {args.dataset_id!r}; {manifest} now lists "
              f"{count} tenant{'s' if count != 1 else ''}")
        return 0
    if args.registry_command == "tune":
        return _registry_tune(args, directory)
    registry = IndexRegistry.from_directory(directory)
    with registry:
        if args.registry_command == "remove":
            registry.detach(args.dataset_id)
            registry.save_manifest(directory)
            count = len(registry.list())
            print(f"removed {args.dataset_id!r} (index files kept); "
                  f"{count} tenant{'s remain' if count != 1 else ' remains'}")
            return 0
        per_tenant = registry.stats()["tenants"]["per_tenant"]
    for dataset_id, block in per_tenant.items():
        dtype = block["dtype"] or "stored"
        quota = block["quota"]
        knobs = f"weight {quota['weight']:g}"
        if quota["max_queue"] is not None:
            knobs += f"  queue {quota['max_queue']}"
        if quota["rate_limit_qps"] is not None:
            knobs += f"  rate {quota['rate_limit_qps']:g}/s"
        print(f"{dataset_id:24s} epoch {block['epoch']}  dtype {dtype}  "
              f"{knobs}")
    print(f"{len(per_tenant)} tenant{'s' if len(per_tenant) != 1 else ''} "
          f"in {directory}")
    return 0


def _registry_tune(args: argparse.Namespace, directory) -> int:
    """``repro registry tune``: close the adaptive-QoS loop offline.

    Reads a daemon stats snapshot (live ``GET /stats`` or a saved
    payload), derives weights from the observed per-tenant dispatch
    counts via :func:`repro.tuning.recommend_tenant_weights`, and
    rewrites the manifest's ``qos`` blocks — per-tenant ``max_queue``
    and ``rate_limit_qps`` are preserved, only weights move.
    """
    import json

    from repro.service.qos import TenantQuota
    from repro.service.registry import IndexRegistry
    from repro.tuning import recommend_tenant_weights

    if (args.stats_json is None) == (args.port is None):
        print("registry tune needs exactly one of --port (live daemon) "
              "or --stats-json (saved snapshot)", file=sys.stderr)
        return 2
    if args.stats_json is not None:
        from pathlib import Path

        payload = json.loads(Path(args.stats_json).read_text())
    else:
        from urllib.request import urlopen

        url = f"http://{args.host}:{args.port}/stats"
        with urlopen(url, timeout=10) as response:  # noqa: S310
            payload = json.loads(response.read().decode())
    per_tenant = (payload.get("server", {}).get("qos") or {}) \
        .get("per_tenant") or {}
    counts = {dataset_id: int(block.get("dispatched", 0))
              for dataset_id, block in per_tenant.items()}
    if not counts:
        print("snapshot has no per-tenant QoS stats — the daemon must "
              "run with --registry --qos", file=sys.stderr)
        return 2
    weights = recommend_tenant_weights(counts, max_weight=args.max_weight)
    changed = 0
    with IndexRegistry.from_directory(directory) as registry:
        quotas = {dataset_id: block["quota"] for dataset_id, block
                  in registry.stats()["tenants"]["per_tenant"].items()}
        for dataset_id in sorted(registry.list()):
            if dataset_id not in weights:
                print(f"{dataset_id:24s} weight "
                      f"{quotas[dataset_id]['weight']:g} (no traffic "
                      "observed; unchanged)")
                continue
            quota = quotas[dataset_id]
            new_weight = float(weights[dataset_id])
            registry.set_quota(dataset_id, TenantQuota(
                weight=new_weight, max_queue=quota["max_queue"],
                rate_limit_qps=quota["rate_limit_qps"]))
            marker = "->" if new_weight != quota["weight"] else "=="
            changed += new_weight != quota["weight"]
            print(f"{dataset_id:24s} weight {quota['weight']:g} {marker} "
                  f"{new_weight:g}  (dispatched {counts[dataset_id]})")
        manifest = registry.save_manifest(directory)
    print(f"rewrote {manifest}: {changed} weight(s) changed "
          "(restart the daemon to apply)")
    return 0


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.registry import IndexRegistry
    from repro.service.server import DiversityServer, ServerConfig

    if args.qos and args.registry is None:
        print("serve --qos is per-tenant scheduling; it needs --registry",
              file=sys.stderr)
        return 2
    if args.registry is not None:
        service: "DiversityService | IndexRegistry" = \
            IndexRegistry.from_directory(
                args.registry, max_resident=args.max_resident,
                matrix_budget_mb=args.matrix_budget_mb,
                executor=args.executor, plan=args.plan)
        source = f"{args.registry} ({len(service.list())} tenants"
        source += ", qos)" if args.qos else ")"
    else:
        service = DiversityService(
            load_index(args.index, dtype=args.dtype),
            matrix_budget_mb=args.matrix_budget_mb,
            executor=args.executor, plan=args.plan)
        source = args.index
    server = DiversityServer(service, ServerConfig(
        host=args.host, port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_queue=args.max_queue, max_batch=args.max_batch,
        drain_timeout_s=args.drain_timeout_s, qos=args.qos))

    async def main() -> None:
        ready = asyncio.Event()
        daemon = asyncio.ensure_future(server.run_until_shutdown(ready=ready))
        await ready.wait()
        host, port = server.address
        print(f"serving {source} on {host}:{port} "
              f"(NDJSON + HTTP; batch window {args.batch_window_ms}ms, "
              f"queue {args.max_queue}; SIGTERM drains)", flush=True)
        await daemon
        stats = server.stats()["server"]
        print(f"drained: {stats['accepted']} accepted, "
              f"{stats['queries_served']} queries served, "
              f"{stats['rejected_overload']} rejected overloaded, "
              f"{stats['batches_dispatched']} batches "
              f"({stats['batched_requests']} requests coalesced)")

    asyncio.run(main())
    return 0


def _print_latency(label: str, block: dict) -> None:
    """One aligned percentile line of a latency_summary block."""
    if not block or not block.get("count"):
        return
    print(f"  {label:18s}: p50 {block['p50_ms']:8.2f} ms   "
          f"p99 {block['p99_ms']:8.2f} ms   "
          f"(mean {block['mean_ms']:.2f} ms, n={block['count']})")


def _serve_bench(args: argparse.Namespace) -> int:
    import time

    points = load_points(args.data)
    # The index build goes through the MapReduce process executor only
    # when the query backend is 'process' too; 'thread' concerns query
    # execution alone.
    build_executor = "process" if args.executor == "process" else "serial"
    # One ladder build, shared by the throughput and concurrency
    # harnesses — the build is the dominant cost of this command.
    started = time.perf_counter()
    index = build_coreset_index(points, args.k_max,
                                parallelism=args.parallelism,
                                executor=build_executor, seed=args.seed)
    index_build_seconds = time.perf_counter() - started
    report = measure_service_throughput(
        points, args.k_max, num_queries=args.queries,
        rebuild_queries=args.rebuild_queries, parallelism=args.parallelism,
        executor=build_executor, seed=args.seed, index=index,
        matrix_budget_mb=args.matrix_budget_mb,
    )
    print(f"serve-bench: {report.num_queries} queries, k_max={args.k_max}, "
          f"index build {index_build_seconds:.2f}s [{build_executor}]")
    print(f"  rebuild-per-query : {report.rebuild_qps:10.1f} queries/s "
          f"(measured over {report.rebuild_queries} queries)")
    print(f"  warm service      : {report.warm_qps:10.1f} queries/s "
          f"({report.warm_speedup:.1f}x)")
    print(f"  LRU-cached replay : {report.cached_qps:10.1f} queries/s "
          f"({report.cached_speedup:.1f}x)")
    _print_latency("warm latency", report.warm_latency)
    _print_latency("cached latency", report.cached_latency)
    print(f"  core-set builds during queries: "
          f"{report.build_calls_during_queries}")
    if args.threads > 0 or args.executor != "serial":
        query_executor = ("thread" if args.executor == "serial"
                          else args.executor)
        workers = args.threads if args.threads > 0 else 4
        worker_counts = tuple(sorted({1, workers}))
        concurrency = measure_concurrent_throughput(
            points, args.k_max, num_queries=args.queries,
            worker_counts=worker_counts, seed=args.seed,
            matrix_budget_mb=args.matrix_budget_mb, index=index,
            executor=query_executor,
        )
        print(f"  serial query_batch: {concurrency.serial_qps:10.1f} queries/s")
        _print_latency("serial latency", concurrency.serial_latency)
        for workers, qps in sorted(concurrency.qps_by_workers.items()):
            label = f"{workers} {query_executor} worker"
            label += "s" if workers > 1 else ""
            print(f"  {label:18s}: {qps:10.1f} queries/s "
                  f"({concurrency.speedup(workers):.2f}x vs serial)")
            _print_latency(
                "  solve time",
                concurrency.solve_latency_by_workers.get(workers, {}))
        print(f"  rung matrices computed: {concurrency.matrix_computes} "
              f"(distinct rungs touched: {concurrency.distinct_rungs}, "
              f"executor: {query_executor})")
    if args.serve_qps > 0:
        from repro.service.workload import measure_serve_latency

        serve = measure_serve_latency(
            index, num_requests=args.serve_requests,
            rate_qps=args.serve_qps, seed=args.seed)
        print(f"  daemon open loop  : {serve.requests} requests at "
              f"{serve.rate_qps:.0f} req/s -> {serve.answered} answered, "
              f"{serve.rejected} rejected, {serve.errors} errors, "
              f"{serve.mismatches} mismatches")
        _print_latency("daemon latency", serve.latency)
        print(f"  daemon batching   : "
              f"{serve.server['batches_dispatched']} dispatches, "
              f"{serve.server['batched_requests']} requests coalesced")
    return 0


_COMMANDS = {
    "generate": _generate,
    "run": _run,
    "estimate": _estimate,
    "index": _index,
    "query": _query,
    "calibrate": _calibrate,
    "plan": _plan,
    "refresh": _refresh,
    "registry": _registry,
    "serve": _serve,
    "serve-bench": _serve_bench,
}


def render_cli_reference() -> str:
    """Render the Markdown CLI reference generated from the live parsers.

    ``docs/generate_cli.py`` writes this into ``docs/cli.md``;
    ``tests/test_docs.py`` and the CI docs job fail when the committed
    file drifts from the ``argparse`` definitions, so the documented
    ``--help`` text can never go stale.  Output width is pinned so the
    rendering does not depend on the invoking terminal.
    """
    import os

    columns_before = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "79"
    try:
        parser = build_parser()
        sections = [
            "# CLI reference",
            "",
            "<!-- Generated from the argparse definitions by "
            "docs/generate_cli.py; do not edit by hand. "
            "tests/test_docs.py and the CI docs job fail on drift. -->",
            "",
            "Every workflow is reachable as `python -m repro <command>` "
            "(or the installed `repro` entry point). See "
            "[the service guide](service.md) for how the commands fit "
            "together.",
            "",
            "## repro",
            "",
            "```text",
            parser.format_help().rstrip(),
            "```",
        ]
        subparsers = parser._subparsers._group_actions[0].choices  # noqa: SLF001
        for name, subparser in subparsers.items():
            sections += [
                "",
                f"## repro {name}",
                "",
                "```text",
                subparser.format_help().rstrip(),
                "```",
            ]
            if subparser._subparsers is None:  # noqa: SLF001
                continue
            nested = subparser._subparsers._group_actions[0].choices  # noqa: SLF001
            for verb, nested_parser in nested.items():
                sections += [
                    "",
                    f"## repro {name} {verb}",
                    "",
                    "```text",
                    nested_parser.format_help().rstrip(),
                    "```",
                ]
        return "\n".join(sections) + "\n"
    finally:
        if columns_before is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = columns_before


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
