"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or type)."""


class InsufficientPointsError(ValidationError):
    """An algorithm was asked for more points than the input contains."""

    def __init__(self, requested: int, available: int, what: str = "points"):
        self.requested = requested
        self.available = available
        super().__init__(
            f"requested {requested} {what} but only {available} are available"
        )


class MemoryBudgetExceededError(ReproError):
    """A model-enforced memory budget (streaming or MapReduce) was exceeded."""

    def __init__(self, used: int, budget: int, context: str = ""):
        self.used = used
        self.budget = budget
        suffix = f" ({context})" if context else ""
        super().__init__(f"memory budget exceeded: used {used} > budget {budget}{suffix}")


class NotFittedError(ReproError):
    """A result was requested from an algorithm that has not been run yet."""


class StreamExhaustedError(ReproError):
    """A streaming pass was requested on a stream that cannot be replayed."""
