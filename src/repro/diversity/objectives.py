"""The objective registry: one :class:`Objective` per problem of Table 1.

An :class:`Objective` bundles everything the rest of the stack needs to
treat the six problems uniformly:

* the ``div`` evaluator for a subset distance matrix;
* whether the core-set proxy function must be *injective* (Lemma 2) —
  which decides between GMM/SMM and their -EXT/-GEN extensions;
* the core-set radius constants of Lemmas 3-6 (``8/16`` for MapReduce,
  ``32/64`` for streaming);
* the sequential approximation factor ``alpha`` from Table 1;
* ``f(k)``, the number of distance terms in ``div`` (Lemma 7), used by the
  generalized-core-set error bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.diversity import measures
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Objective:
    """Static description of one diversity maximization problem."""

    #: canonical registry name, e.g. ``"remote-clique"``
    name: str
    #: evaluator over the subset's dense distance matrix
    evaluate: Callable[[np.ndarray], float]
    #: True for the four problems of Lemma 2 (clique/star/bipartition/tree)
    requires_injective_proxy: bool
    #: approximation factor of the best known sequential algorithm (Table 1)
    sequential_alpha: float
    #: ``k' = (mr_constant / eps')^D * k`` for the MapReduce core-set
    mr_constant: int
    #: ``k' = (streaming_constant / eps')^D * k`` for the streaming core-set
    streaming_constant: int
    #: number of distance terms in div over k points (Lemma 7's ``f(k)``)
    f_k: Callable[[int], int]

    def value(self, dist: np.ndarray) -> float:
        """Evaluate ``div`` on the subset distance matrix *dist*."""
        return self.evaluate(dist)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Objective({self.name!r}, alpha={self.sequential_alpha})"


def _pairs(k: int) -> int:
    return k * (k - 1) // 2


def _star_terms(k: int) -> int:
    return max(k - 1, 0)


def _bipartition_terms(k: int) -> int:
    return (k // 2) * ((k + 1) // 2)


OBJECTIVES: dict[str, Objective] = {
    "remote-edge": Objective(
        name="remote-edge",
        evaluate=measures.remote_edge_value,
        requires_injective_proxy=False,
        sequential_alpha=2.0,
        mr_constant=8,
        streaming_constant=32,
        f_k=lambda k: 1,
    ),
    "remote-clique": Objective(
        name="remote-clique",
        evaluate=measures.remote_clique_value,
        requires_injective_proxy=True,
        sequential_alpha=2.0,
        mr_constant=16,
        streaming_constant=64,
        f_k=_pairs,
    ),
    "remote-star": Objective(
        name="remote-star",
        evaluate=measures.remote_star_value,
        requires_injective_proxy=True,
        sequential_alpha=2.0,
        mr_constant=16,
        streaming_constant=64,
        f_k=_star_terms,
    ),
    "remote-bipartition": Objective(
        name="remote-bipartition",
        evaluate=measures.remote_bipartition_value,
        requires_injective_proxy=True,
        sequential_alpha=3.0,
        mr_constant=16,
        streaming_constant=64,
        f_k=_bipartition_terms,
    ),
    "remote-tree": Objective(
        name="remote-tree",
        evaluate=measures.remote_tree_value,
        requires_injective_proxy=True,
        sequential_alpha=4.0,
        mr_constant=16,
        streaming_constant=64,
        f_k=_star_terms,
    ),
    "remote-cycle": Objective(
        name="remote-cycle",
        evaluate=measures.remote_cycle_value,
        requires_injective_proxy=False,
        sequential_alpha=3.0,
        mr_constant=8,
        streaming_constant=32,
        f_k=lambda k: k,
    ),
}


def get_objective(name: str | Objective) -> Objective:
    """Resolve an objective by name (instances pass through).

    >>> get_objective("remote-edge").requires_injective_proxy
    False
    """
    if isinstance(name, Objective):
        return name
    try:
        return OBJECTIVES[name]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVES))
        raise ValidationError(f"unknown objective {name!r}; known: {known}") from None


def list_objectives() -> list[str]:
    """Names of all supported diversity objectives."""
    return sorted(OBJECTIVES)
