"""Sequential 4-approximation for remote-tree.

Halldorsson-Iwano-Katoh-Tokuyama [21] show the farthest-point greedy (GMM)
4-approximates the maximum-MST-weight subset: the greedy's anticover radii
lower-bound the MST weight of any k-subset within constant factors.
"""

from __future__ import annotations

import numpy as np

from repro.coresets.gmm import gmm_on_matrix
from repro.utils.validation import as_float_array


def solve_remote_tree(dist: np.ndarray, k: int) -> np.ndarray:
    """Select ``k`` indices 4-approximating the maximum MST weight."""
    dist = as_float_array(dist)
    first = int(dist.sum(axis=1).argmax())
    return gmm_on_matrix(dist, k, first_index=first)
