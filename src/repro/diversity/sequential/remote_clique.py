"""Sequential 2-approximation for remote-clique (max-sum dispersion).

The Hassin-Rubinstein-Tamir algorithm [22]: greedily match the two farthest
unmatched points, ``floor(k/2)`` times, and output the matched points.  For
odd ``k`` one extra point is added — we pick the point maximizing its
distance sum to the selection, which can only help the objective.
"""

from __future__ import annotations

import numpy as np

from repro.graph.matching import greedy_max_matching
from repro.utils.validation import as_float_array


def solve_remote_clique(dist: np.ndarray, k: int) -> np.ndarray:
    """Select ``k`` indices 2-approximating the maximum pairwise-distance sum."""
    dist = as_float_array(dist)
    n = dist.shape[0]
    if k >= n:
        return np.arange(n, dtype=np.intp)
    pairs = greedy_max_matching(dist, k // 2)
    selected = [index for pair in pairs for index in pair]
    if len(selected) < k:
        remaining = np.setdiff1d(np.arange(n), np.asarray(selected, dtype=np.intp))
        if selected:
            gains = dist[np.ix_(remaining, selected)].sum(axis=1)
        else:
            gains = dist[remaining].sum(axis=1)
        selected.append(int(remaining[int(gains.argmax())]))
    return np.asarray(selected[:k], dtype=np.intp)
