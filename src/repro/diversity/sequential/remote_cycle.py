"""Sequential 3-approximation for remote-cycle.

Halldorsson-Iwano-Katoh-Tokuyama [21] show the farthest-point greedy (GMM)
selection 3-approximates the maximum-TSP-weight subset.
"""

from __future__ import annotations

import numpy as np

from repro.coresets.gmm import gmm_on_matrix
from repro.utils.validation import as_float_array


def solve_remote_cycle(dist: np.ndarray, k: int) -> np.ndarray:
    """Select ``k`` indices 3-approximating the maximum tour weight."""
    dist = as_float_array(dist)
    first = int(dist.sum(axis=1).argmax())
    return gmm_on_matrix(dist, k, first_index=first)
