"""Sequential 2-approximation for remote-edge: the GMM greedy.

The farthest-point greedy's anticover property gives
``div(T) = rho_T >= r_T >= r*_k >= rho*_k / 2``, i.e. a 2-approximation
for remote-edge [32, 18], matching the lower bound under P != NP.
"""

from __future__ import annotations

import numpy as np

from repro.coresets.gmm import gmm_on_matrix
from repro.utils.validation import as_float_array


def solve_remote_edge(dist: np.ndarray, k: int) -> np.ndarray:
    """Select ``k`` indices 2-approximating the maximum min-pairwise-distance.

    The initial center is the point with the largest distance sum, a
    deterministic choice that in practice starts the greedy at an extreme
    point.
    """
    dist = as_float_array(dist)
    first = int(dist.sum(axis=1).argmax())
    return gmm_on_matrix(dist, k, first_index=first)
