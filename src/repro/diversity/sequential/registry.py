"""Dispatch table mapping each objective to its sequential solver."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.remote_bipartition import solve_remote_bipartition
from repro.diversity.sequential.remote_clique import solve_remote_clique
from repro.diversity.sequential.remote_cycle import solve_remote_cycle
from repro.diversity.sequential.remote_edge import solve_remote_edge
from repro.diversity.sequential.remote_star import solve_remote_star
from repro.diversity.sequential.remote_tree import solve_remote_tree
from repro.metricspace.points import PointSet
from repro.utils.validation import as_float_array, check_k_le_n

Solver = Callable[[np.ndarray, int], np.ndarray]

_SOLVERS: dict[str, Solver] = {
    "remote-edge": solve_remote_edge,
    "remote-clique": solve_remote_clique,
    "remote-star": solve_remote_star,
    "remote-bipartition": solve_remote_bipartition,
    "remote-tree": solve_remote_tree,
    "remote-cycle": solve_remote_cycle,
}


def sequential_solver(objective: str | Objective) -> Solver:
    """The matrix-level sequential solver for *objective*."""
    return _SOLVERS[get_objective(objective).name]


def solve_on_matrix(dist: np.ndarray, k: int,
                    objective: str | Objective) -> np.ndarray:
    """Run the sequential approximation for *objective* on a distance matrix."""
    dist = as_float_array(dist)
    k = check_k_le_n(k, dist.shape[0])
    return sequential_solver(objective)(dist, k)


def solve_sequential(points: PointSet, k: int,
                     objective: str | Objective) -> tuple[np.ndarray, float]:
    """Run the sequential approximation on a :class:`PointSet`.

    Returns ``(selected indices, achieved diversity value)``.  Computes the
    full pairwise matrix, so intended for core-sets and moderate inputs.
    """
    objective = get_objective(objective)
    dist = points.pairwise()
    indices = solve_on_matrix(dist, k, objective)
    value = objective.value(dist[np.ix_(indices, indices)])
    return indices, value
