"""Sequential 2-approximation for remote-star.

Chandra-Halldorsson [12] show the farthest-pair greedy matching also
2-approximates remote-star: the matched set's cheapest star is within a
factor two of optimal because every star contains at least ``floor(k/2)``
matching edges' worth of weight.  We reuse the matching selection and, as a
cheap deterministic polish, try swapping in the best non-selected point for
the current star center when it improves the objective.
"""

from __future__ import annotations

import numpy as np

from repro.diversity.measures import remote_star_value
from repro.diversity.sequential.remote_clique import solve_remote_clique
from repro.utils.validation import as_float_array


def solve_remote_star(dist: np.ndarray, k: int) -> np.ndarray:
    """Select ``k`` indices 2-approximating the maximum min-star weight."""
    dist = as_float_array(dist)
    n = dist.shape[0]
    selected = solve_remote_clique(dist, k)
    if k >= n:
        return selected
    # One greedy improvement round: replacing the current star center (the
    # argmin row) with an outside point keeps the matching bound and often
    # raises the realized value.
    value = remote_star_value(dist[np.ix_(selected, selected)])
    sub = dist[np.ix_(selected, selected)]
    center_pos = int(sub.sum(axis=1).argmin())
    outside = np.setdiff1d(np.arange(n), selected)
    best = (value, selected)
    for candidate in outside:
        trial = selected.copy()
        trial[center_pos] = candidate
        trial_value = remote_star_value(dist[np.ix_(trial, trial)])
        if trial_value > best[0]:
            best = (trial_value, trial.copy())
    return best[1]
