"""Sequential 3-approximation for remote-bipartition.

Chandra-Halldorsson [12] prove the farthest-pair greedy matching yields a
3-approximation for the balanced-bipartition dispersion objective: the
selection maximizing matched-edge weight cannot have a balanced cut more
than three times cheaper than the optimum's.  The selection is therefore
shared with remote-clique.
"""

from __future__ import annotations

import numpy as np

from repro.diversity.sequential.remote_clique import solve_remote_clique


def solve_remote_bipartition(dist: np.ndarray, k: int) -> np.ndarray:
    """Select ``k`` indices 3-approximating the maximum balanced min-cut."""
    return solve_remote_clique(dist, k)
