"""Sequential α-approximation algorithms, one per objective (Table 1).

Every solver has the matrix-level signature
``solve(dist: np.ndarray, k: int) -> np.ndarray`` (selected indices); the
point-level convenience wrapper :func:`solve_sequential` computes the
pairwise matrix first.  Core-sets are small, so matrix-level solving is the
natural final stage of both the streaming and MapReduce pipelines.
"""

from repro.diversity.sequential.registry import (
    sequential_solver,
    solve_on_matrix,
    solve_sequential,
)
from repro.diversity.sequential.remote_edge import solve_remote_edge
from repro.diversity.sequential.remote_clique import solve_remote_clique
from repro.diversity.sequential.remote_star import solve_remote_star
from repro.diversity.sequential.remote_bipartition import solve_remote_bipartition
from repro.diversity.sequential.remote_tree import solve_remote_tree
from repro.diversity.sequential.remote_cycle import solve_remote_cycle

__all__ = [
    "sequential_solver",
    "solve_on_matrix",
    "solve_sequential",
    "solve_remote_edge",
    "solve_remote_clique",
    "solve_remote_star",
    "solve_remote_bipartition",
    "solve_remote_tree",
    "solve_remote_cycle",
]
