"""Swap-based local search for remote-clique (max-sum dispersion).

This is both (a) the quality refiner used when computing reference
solutions for approximation ratios (Section 7's "best solution found") and
(b) the core-set construction of the AFZ baseline [4], whose per-partition
cost the paper's Table 4 shows to be orders of magnitude higher than GMM's.

The classical 1-swap local search: starting from an initial solution, while
some (inside, outside) swap increases the total pairwise distance, apply
the best such swap.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_k_le_n


def local_search_remote_clique(
    dist: np.ndarray,
    k: int,
    initial: np.ndarray | None = None,
    max_iterations: int = 1000,
    tolerance: float = 1e-12,
) -> tuple[np.ndarray, int]:
    """Locally optimize the sum-of-distances objective by 1-swaps.

    Parameters
    ----------
    dist:
        Dense distance matrix of the ground set.
    k:
        Solution size.
    initial:
        Starting indices; defaults to the first ``k`` points, matching the
        arbitrary initialization of the AFZ construction.
    max_iterations:
        Safety cap on the number of applied swaps.
    tolerance:
        Minimum improvement for a swap to be applied.

    Returns
    -------
    (indices, iterations):
        The locally-optimal selection and the number of swaps applied.
    """
    dist = np.asarray(dist, dtype=np.float64)
    n = dist.shape[0]
    k = check_k_le_n(k, n)
    if initial is None:
        selected = np.arange(k, dtype=np.intp)
    else:
        selected = np.asarray(initial, dtype=np.intp).copy()
        if selected.shape != (k,):
            raise ValueError(f"initial selection must have exactly k={k} indices")
    if k == n:
        return selected, 0
    in_set = np.zeros(n, dtype=bool)
    in_set[selected] = True
    # contribution[i] = sum of distances from point i to the selection.
    contribution = dist[:, selected].sum(axis=1)
    iterations = 0
    for iterations in range(max_iterations):
        outside = np.flatnonzero(~in_set)
        # Swapping s (inside) for o (outside) changes the objective by
        # contribution[o] - contribution[s] - dist[o, s]; the last term
        # removes o's distance to the departing s.
        gain = (
            contribution[outside][:, None]
            - contribution[selected][None, :]
            - dist[np.ix_(outside, selected)]
        )
        o_pos, s_pos = np.unravel_index(int(np.argmax(gain)), gain.shape)
        best_gain = float(gain[o_pos, s_pos])
        if best_gain <= tolerance:
            return selected, iterations
        incoming = int(outside[o_pos])
        outgoing = int(selected[s_pos])
        selected[s_pos] = incoming
        in_set[outgoing] = False
        in_set[incoming] = True
        contribution += dist[:, incoming] - dist[:, outgoing]
    return selected, iterations + 1
