"""Evaluation of the six diversity measures on a chosen subset.

Each ``*_value`` function takes the dense distance matrix of the *selected*
points (``k x k``) and returns ``div`` of that set per Table 1 of the paper.
Sets with fewer than two points have zero diversity under every measure.

Note that remote-bipartition and remote-cycle are NP-hard to evaluate
exactly; their evaluators dispatch to exact algorithms for small ``k`` and
documented high-quality heuristics beyond (see :mod:`repro.graph`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.bipartition import min_balanced_bipartition
from repro.graph.mst import mst_weight
from repro.graph.tsp import tsp_weight


def _check_subset_matrix(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    return dist


def remote_edge_value(dist: np.ndarray) -> float:
    """``min_{p != q in S} d(p, q)`` — the minimum pairwise distance."""
    dist = _check_subset_matrix(dist)
    n = dist.shape[0]
    if n < 2:
        return 0.0
    iu, ju = np.triu_indices(n, k=1)
    return float(dist[iu, ju].min())


def remote_clique_value(dist: np.ndarray) -> float:
    """``sum_{p < q in S} d(p, q)`` — total pairwise distance."""
    dist = _check_subset_matrix(dist)
    n = dist.shape[0]
    if n < 2:
        return 0.0
    iu, ju = np.triu_indices(n, k=1)
    return float(dist[iu, ju].sum())


def remote_star_value(dist: np.ndarray) -> float:
    """``min_{c in S} sum_{q != c} d(c, q)`` — cheapest star weight."""
    dist = _check_subset_matrix(dist)
    if dist.shape[0] < 2:
        return 0.0
    return float(dist.sum(axis=1).min())


def remote_bipartition_value(dist: np.ndarray) -> float:
    """Minimum balanced-bipartition cut weight (exact for small sets)."""
    dist = _check_subset_matrix(dist)
    if dist.shape[0] < 2:
        return 0.0
    weight, _ = min_balanced_bipartition(dist)
    return weight


def remote_tree_value(dist: np.ndarray) -> float:
    """``w(MST(S))`` — weight of the minimum spanning tree."""
    dist = _check_subset_matrix(dist)
    if dist.shape[0] < 2:
        return 0.0
    return mst_weight(dist)


def remote_cycle_value(dist: np.ndarray) -> float:
    """``w(TSP(S))`` — weight of the optimal tour (exact for small sets)."""
    dist = _check_subset_matrix(dist)
    if dist.shape[0] < 2:
        return 0.0
    return tsp_weight(dist)


_EVALUATORS = {
    "remote-edge": remote_edge_value,
    "remote-clique": remote_clique_value,
    "remote-star": remote_star_value,
    "remote-bipartition": remote_bipartition_value,
    "remote-tree": remote_tree_value,
    "remote-cycle": remote_cycle_value,
}


def evaluate_diversity(name: str, dist: np.ndarray) -> float:
    """Evaluate the measure called *name* on a subset distance matrix."""
    try:
        evaluator = _EVALUATORS[name]
    except KeyError:
        known = ", ".join(sorted(_EVALUATORS))
        raise ValidationError(f"unknown diversity measure {name!r}; known: {known}") from None
    return evaluator(dist)
