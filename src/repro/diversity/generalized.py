"""Diversity over generalized core-sets (Section 6).

Three pieces:

* :func:`generalized_diversity` / :func:`gen_divk_exact` — evaluate
  ``gen-div`` on the expansion of a generalized core-set (replicas of a
  kernel point are distinct points at distance zero);
* :func:`solve_generalized` — Fact 2: the sequential approximation
  algorithms adapted to multisets, returning a *coherent subset* with
  expanded size exactly ``k``;
* :func:`instantiate_offline` — Lemma 7's ``delta``-instantiation: replace
  replicas with distinct true input points within ``delta`` of their kernel
  point.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.coresets.generalized import GeneralizedCoreset
from repro.diversity.objectives import Objective, get_objective
from repro.diversity.sequential.registry import solve_on_matrix
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.utils.validation import check_positive_int


def generalized_diversity(coreset: GeneralizedCoreset,
                          objective: str | Objective) -> float:
    """``gen-div(T)``: the diversity of the expansion of *coreset*."""
    objective = get_objective(objective)
    return objective.value(coreset.expanded_distance_matrix())


def gen_divk_exact(coreset: GeneralizedCoreset, k: int,
                   objective: str | Objective,
                   max_subsets: int = 500_000) -> float:
    """Exact ``gen-div_k(T)`` by enumerating expansion subsets (test oracle).

    Replicas are interchangeable, so enumerating index subsets of the
    expansion visits every coherent subset (with duplicates); acceptable
    for the tiny instances tests use.
    """
    objective = get_objective(objective)
    k = check_positive_int(k, "k")
    m = coreset.expanded_size
    if k > m:
        raise ValidationError(f"k={k} exceeds expanded size m(T)={m}")
    if comb(m, k) > max_subsets:
        raise ValidationError(
            f"exact gen-div_k over C({m}, {k}) subsets exceeds the limit"
        )
    dist = coreset.expanded_distance_matrix()
    best = -np.inf
    for subset in combinations(range(m), k):
        idx = np.asarray(subset, dtype=np.intp)
        best = max(best, objective.value(dist[np.ix_(idx, idx)]))
    return float(best)


def solve_generalized(coreset: GeneralizedCoreset, k: int,
                      objective: str | Objective) -> GeneralizedCoreset:
    """Fact 2: run the adapted sequential algorithm on a generalized core-set.

    The expansion (replicas at distance zero) is materialized as a distance
    matrix of size ``m(T) <= k * s(T)`` and fed to the standard sequential
    solver; the selected replicas are then compressed back into a coherent
    subset with expanded size exactly ``k``.
    """
    objective = get_objective(objective)
    k = check_positive_int(k, "k")
    if k > coreset.expanded_size:
        raise ValidationError(
            f"k={k} exceeds the expanded size m(T)={coreset.expanded_size}"
        )
    owners = coreset.expansion_owners()
    dist = coreset.expanded_distance_matrix()
    selected = solve_on_matrix(dist, k, objective)
    counts = np.bincount(owners[selected], minlength=coreset.size)
    return coreset.coherent_subset(np.arange(coreset.size), counts)


def instantiate_offline(
    subset: GeneralizedCoreset,
    pool: PointSet,
    delta: float,
) -> tuple[np.ndarray, bool]:
    """Materialize a ``delta``-instantiation of *subset* from *pool* points.

    Assigns each pool point to its nearest kernel point; each kernel pair
    ``(p, m_p)`` takes up to ``m_p`` distinct assigned points within
    *delta* (the kernel point itself, being in the pool at distance zero,
    is always taken first).

    Returns
    -------
    (indices, within_delta):
        Pool indices of the chosen delegates and a flag indicating whether
        every delegate respected the *delta* bound.  When a cluster runs
        short (possible only if *delta* under-estimates the construction's
        radius), the shortfall is filled with the nearest unused pool
        points and the flag is ``False``.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    cross = pool.metric.cross(pool.points, subset.points)
    nearest_kernel = cross.argmin(axis=1)
    chosen: list[int] = []
    used = np.zeros(len(pool), dtype=bool)
    within_delta = True
    for kernel_index in range(subset.size):
        need = int(subset.multiplicities[kernel_index])
        members = np.flatnonzero(nearest_kernel == kernel_index)
        dist_to_kernel = cross[members, kernel_index]
        order = members[np.argsort(dist_to_kernel)]
        taken = 0
        for pool_index in order:
            if taken == need:
                break
            if used[pool_index]:
                continue
            if cross[pool_index, kernel_index] > delta:
                break
            used[pool_index] = True
            chosen.append(int(pool_index))
            taken += 1
        if taken < need:
            # Shortfall: fill with the globally nearest unused points.
            within_delta = False
            backup = np.argsort(cross[:, kernel_index])
            for pool_index in backup:
                if taken == need:
                    break
                if not used[pool_index]:
                    used[pool_index] = True
                    chosen.append(int(pool_index))
                    taken += 1
    return np.asarray(chosen, dtype=np.intp), within_delta
