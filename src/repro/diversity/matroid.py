"""Diversity maximization under matroid constraints (extension).

The paper's related-work section points to the generalization of
remote-clique from cardinality constraints to *matroid* constraints
(Abbassi, Mirrokni, Thakur KDD'13 [1]; Cevallos, Eisenbrand, Zenklusen
SoCG'16 [11]).  This module implements that extension on top of the
library's core-set machinery:

* :class:`UniformMatroid` recovers the plain size-``k`` problem;
* :class:`PartitionMatroid` models per-category caps ("at most c_i results
  per site/brand/topic" — the practically important case in web search and
  e-commerce diversification);
* :func:`local_search_matroid_clique` is the 1-exchange local search of
  [1], a (1/2 - eps)-approximation for sum-diversity under any matroid;
* :func:`solve_matroid_clique` runs it either directly or on a GMM-EXT
  core-set (with delegate budget ``rank``), making the matroid extension
  scale the same way the unconstrained problems do.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.coresets.gmm_ext import gmm_ext
from repro.diversity.measures import remote_clique_value
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet


class Matroid(ABC):
    """A matroid over ground-set indices ``0 .. n-1``."""

    @abstractmethod
    def is_independent(self, indices: Sequence[int]) -> bool:
        """Whether the index set is independent in the matroid."""

    @property
    @abstractmethod
    def rank(self) -> int:
        """Size of the maximum independent sets (the solution size)."""


class UniformMatroid(Matroid):
    """Independent sets are all sets of size at most ``k``."""

    def __init__(self, k: int):
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        self._k = k

    def is_independent(self, indices: Sequence[int]) -> bool:
        indices = list(indices)
        return len(set(indices)) == len(indices) and len(indices) <= self._k

    @property
    def rank(self) -> int:
        return self._k


class PartitionMatroid(Matroid):
    """At most ``capacities[c]`` elements from each category ``c``.

    Parameters
    ----------
    categories:
        ``categories[i]`` is the category label of ground-set element ``i``.
    capacities:
        Mapping from category label to its cap (missing labels get cap 0).
    """

    def __init__(self, categories: Sequence[int], capacities: dict[int, int]):
        self.categories = np.asarray(categories, dtype=np.int64)
        if self.categories.ndim != 1:
            raise ValidationError("categories must be a flat sequence")
        if any(cap < 0 for cap in capacities.values()):
            raise ValidationError("capacities must be non-negative")
        self.capacities = dict(capacities)
        present = set(np.unique(self.categories).tolist())
        self._rank = sum(
            min(cap, int((self.categories == label).sum()))
            for label, cap in self.capacities.items()
            if label in present
        )

    def is_independent(self, indices: Sequence[int]) -> bool:
        indices = list(indices)
        if len(set(indices)) != len(indices):
            return False
        counts: dict[int, int] = {}
        for index in indices:
            label = int(self.categories[index])
            counts[label] = counts.get(label, 0) + 1
            if counts[label] > self.capacities.get(label, 0):
                return False
        return True

    @property
    def rank(self) -> int:
        return self._rank

    def restrict(self, subset: Sequence[int]) -> "PartitionMatroid":
        """The matroid restricted to the ground subset *subset*.

        Used when solving on a core-set: element ``i`` of the restricted
        ground set is ``subset[i]`` of the original.
        """
        subset = np.asarray(subset, dtype=np.intp)
        return PartitionMatroid(self.categories[subset], self.capacities)


class TruncatedMatroid(Matroid):
    """The truncation of *inner* to rank ``k``.

    Independent sets are the inner matroid's independent sets of size at
    most ``k`` — e.g. "at most one result per site AND at most k results
    overall", the exact shape of a diversified result page.
    """

    def __init__(self, inner: Matroid, k: int):
        if k <= 0:
            raise ValidationError(f"truncation rank must be positive, got {k}")
        self.inner = inner
        self._k = min(k, inner.rank)

    def is_independent(self, indices: Sequence[int]) -> bool:
        indices = list(indices)
        return len(indices) <= self._k and self.inner.is_independent(indices)

    @property
    def rank(self) -> int:
        return self._k

    def restrict(self, subset: Sequence[int]) -> "TruncatedMatroid":
        """Restriction to a ground subset (delegates to the inner matroid)."""
        if not hasattr(self.inner, "restrict"):
            raise ValidationError(
                f"{type(self.inner).__name__} does not support restriction"
            )
        return TruncatedMatroid(self.inner.restrict(subset), self._k)


def greedy_matroid_basis(dist: np.ndarray, matroid: Matroid) -> list[int]:
    """Build an independent set of maximum size greedily by distance gain.

    Classic matroid greedy: scan candidates in decreasing marginal
    sum-of-distances order, keep those preserving independence.  Returns a
    basis (size = rank) whenever one exists among the candidates.
    """
    n = dist.shape[0]
    selected: list[int] = []
    gains = dist.sum(axis=1)
    for candidate in np.argsort(gains)[::-1]:
        trial = selected + [int(candidate)]
        if matroid.is_independent(trial):
            selected.append(int(candidate))
            if len(selected) == matroid.rank:
                break
    return selected


def local_search_matroid_clique(
    dist: np.ndarray,
    matroid: Matroid,
    initial: Sequence[int] | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-12,
) -> tuple[np.ndarray, int]:
    """1-exchange local search for sum-diversity under a matroid [1].

    Repeatedly applies the best swap ``selected - {s} + {o}`` that keeps
    the set independent and increases the pairwise-distance sum.  Abbassi
    et al. show local optima are within factor ~2 of the optimum.

    Returns ``(indices, swaps)``.
    """
    dist = np.asarray(dist, dtype=np.float64)
    n = dist.shape[0]
    if initial is None:
        selected = greedy_matroid_basis(dist, matroid)
    else:
        selected = [int(i) for i in initial]
        if not matroid.is_independent(selected):
            raise ValidationError("initial selection is not independent")
    selected_arr = np.asarray(selected, dtype=np.intp)
    in_set = np.zeros(n, dtype=bool)
    in_set[selected_arr] = True
    contribution = dist[:, selected_arr].sum(axis=1)
    swaps = 0
    for _ in range(max_iterations):
        outside = np.flatnonzero(~in_set)
        if outside.size == 0 or selected_arr.size == 0:
            break
        gain = (
            contribution[outside][:, None]
            - contribution[selected_arr][None, :]
            - dist[np.ix_(outside, selected_arr)]
        )
        # Visit candidate swaps in decreasing gain until one is independent.
        order = np.argsort(gain, axis=None)[::-1]
        applied = False
        for flat in order:
            o_pos, s_pos = np.unravel_index(int(flat), gain.shape)
            if gain[o_pos, s_pos] <= tolerance:
                break
            incoming = int(outside[o_pos])
            outgoing = int(selected_arr[s_pos])
            trial = [i for i in selected_arr if i != outgoing] + [incoming]
            if not matroid.is_independent(trial):
                continue
            selected_arr[s_pos] = incoming
            in_set[outgoing] = False
            in_set[incoming] = True
            contribution += dist[:, incoming] - dist[:, outgoing]
            swaps += 1
            applied = True
            break
        if not applied:
            break
    return selected_arr, swaps


def solve_matroid_clique(
    points: PointSet,
    matroid: Matroid,
    k_prime: int | None = None,
    use_coreset: bool | None = None,
) -> tuple[np.ndarray, float]:
    """Maximize sum-diversity subject to a partition matroid.

    For small inputs the local search runs directly on the full distance
    matrix.  For large inputs (or when *use_coreset* is set) a GMM-EXT
    core-set with delegate budget ``rank`` is built first — the same
    delegate argument as Lemma 2 guarantees every category keeps enough
    nearby representatives — and the local search runs on the core-set
    with the restricted matroid.

    Returns ``(selected indices into points, value)``.
    """
    rank = matroid.rank
    if rank == 0:
        raise ValidationError("matroid has rank 0; nothing to select")
    n = len(points)
    if use_coreset is None:
        use_coreset = n > 4096
    if k_prime is None:
        k_prime = 8 * rank
    if not use_coreset or n <= k_prime:
        dist = points.pairwise()
        indices, _ = local_search_matroid_clique(dist, matroid)
        value = remote_clique_value(dist[np.ix_(indices, indices)])
        return indices, value
    # Core-set path: per-category delegates come along because GMM-EXT
    # keeps `rank` delegates per kernel cluster, so any optimal solution's
    # points have distinct nearby proxies; categories are preserved by
    # restricting the matroid to the selected subset.
    ext = gmm_ext(points, k=rank, k_prime=min(k_prime, n))
    subset = np.asarray(ext.indices, dtype=np.intp)
    if not hasattr(matroid, "restrict"):
        raise ValidationError(
            f"{type(matroid).__name__} does not support restriction; "
            "pass use_coreset=False"
        )
    restricted = matroid.restrict(subset)
    sub_points = points.subset(subset)
    dist = sub_points.pairwise()
    local, _ = local_search_matroid_clique(dist, restricted)
    value = remote_clique_value(dist[np.ix_(local, local)])
    return subset[local], value
