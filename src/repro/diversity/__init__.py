"""Diversity objectives: evaluation, exact optima, sequential approximations.

The six diversity maximization problems of the paper's Table 1 are exposed
through a uniform :class:`~repro.diversity.objectives.Objective` registry.
Each objective knows how to *evaluate* ``div`` on a chosen subset, carries
the constants its core-set constructions need, and is paired with the best
known polynomial-time sequential approximation algorithm.
"""

from repro.diversity.measures import (
    remote_edge_value,
    remote_clique_value,
    remote_star_value,
    remote_bipartition_value,
    remote_tree_value,
    remote_cycle_value,
    evaluate_diversity,
)
from repro.diversity.objectives import (
    Objective,
    get_objective,
    list_objectives,
    OBJECTIVES,
)
from repro.diversity.exact import divk_exact, divk_exact_subset
from repro.diversity.local_search import local_search_remote_clique
from repro.diversity.sequential import sequential_solver, solve_sequential

__all__ = [
    "remote_edge_value",
    "remote_clique_value",
    "remote_star_value",
    "remote_bipartition_value",
    "remote_tree_value",
    "remote_cycle_value",
    "evaluate_diversity",
    "Objective",
    "get_objective",
    "list_objectives",
    "OBJECTIVES",
    "divk_exact",
    "divk_exact_subset",
    "local_search_remote_clique",
    "sequential_solver",
    "solve_sequential",
]
