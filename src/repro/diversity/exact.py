"""Exact ``div_k`` by exhaustive search — the test oracle.

All six diversity problems are NP-hard, so exact solutions are only
feasible on tiny instances; that is exactly what the test-suite and the
approximation-factor property checks need.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.diversity.objectives import Objective, get_objective
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.utils.validation import check_k_le_n

#: Refuse exhaustive search beyond this many candidate subsets.
MAX_SUBSETS = 2_000_000


def divk_exact_subset(points: PointSet, k: int,
                      objective: str | Objective) -> tuple[float, tuple[int, ...]]:
    """Exact optimal subset: ``(div_k(S), argmax indices)``.

    Enumerates all ``C(n, k)`` subsets; raises for instances whose subset
    count exceeds :data:`MAX_SUBSETS`.
    """
    objective = get_objective(objective)
    n = len(points)
    k = check_k_le_n(k, n)
    if comb(n, k) > MAX_SUBSETS:
        raise ValidationError(
            f"exact search over C({n}, {k}) = {comb(n, k)} subsets exceeds "
            f"the limit of {MAX_SUBSETS}; use a sequential approximation instead"
        )
    dist = points.pairwise()
    best_value = -np.inf
    best_subset: tuple[int, ...] = tuple(range(k))
    for subset in combinations(range(n), k):
        idx = np.asarray(subset, dtype=np.intp)
        value = objective.value(dist[np.ix_(idx, idx)])
        if value > best_value:
            best_value = value
            best_subset = subset
    return float(best_value), best_subset


def divk_exact(points: PointSet, k: int, objective: str | Objective) -> float:
    """Exact ``div_k(S)``: the value of the optimal size-*k* subset."""
    value, _ = divk_exact_subset(points, k, objective)
    return value
