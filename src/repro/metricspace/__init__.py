"""Metric-space substrate: distance functions, point containers, covers.

Everything upstream (core-sets, diversity objectives, streaming and
MapReduce algorithms) talks to points exclusively through the
:class:`~repro.metricspace.distance.Metric` interface, so any metric that
implements vectorized ``cross``/``pairwise`` kernels plugs into the whole
stack — including the cosine and Jaccard distances that the paper highlights
for web-search and database workloads.
"""

from repro.metricspace.blocked import (
    KernelWorkspace,
    blocked_cross,
    blocked_pairwise,
    get_default_memory_budget,
    set_default_memory_budget,
    shared_workspace,
    tile_rows_for,
)
from repro.metricspace.distance import (
    Metric,
    EuclideanMetric,
    ManhattanMetric,
    ChebyshevMetric,
    CosineDistance,
    JaccardDistance,
    HammingDistance,
    get_metric,
)
from repro.metricspace.points import PointSet
from repro.metricspace.balls import greedy_ball_cover, epsilon_net, covering_number
from repro.metricspace.doubling import estimate_doubling_dimension

__all__ = [
    "KernelWorkspace",
    "blocked_cross",
    "blocked_pairwise",
    "get_default_memory_budget",
    "set_default_memory_budget",
    "shared_workspace",
    "tile_rows_for",
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "CosineDistance",
    "JaccardDistance",
    "HammingDistance",
    "get_metric",
    "PointSet",
    "greedy_ball_cover",
    "epsilon_net",
    "covering_number",
    "estimate_doubling_dimension",
]
