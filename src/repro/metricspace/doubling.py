"""Empirical doubling-dimension estimation.

The theory parameterizes core-set sizes by the doubling dimension ``D`` of
the metric space.  ``D`` is rarely known for real data (the paper notes that
the musiXmatch space's doubling dimension is unknown), but a sample-based
estimate helps users choose ``k'`` and is used in examples and tests.

The estimator follows the definition directly: for sampled balls ``B(c, r)``
it computes a greedy ``r/2`` cover of the ball's members and reports
``log2`` of the worst (or a high-quantile) cover size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.metricspace.balls import greedy_ball_cover
from repro.metricspace.points import PointSet
from repro.utils.rng import RngLike, ensure_rng


def estimate_doubling_dimension(
    points: PointSet,
    num_balls: int = 32,
    radii_per_ball: int = 3,
    quantile: float = 1.0,
    seed: RngLike = None,
) -> float:
    """Estimate the doubling dimension of the space carrying *points*.

    Parameters
    ----------
    points:
        The sample of the space to probe.
    num_balls:
        Number of random ball centers to try.
    radii_per_ball:
        Number of geometrically-spaced radii probed per center.
    quantile:
        Which quantile of the per-ball ``log2(cover size)`` values to
        report; ``1.0`` (default) is the max, matching the worst-case
        definition, while e.g. ``0.9`` is more robust to outliers.
    seed:
        RNG seed for center/radius sampling.

    Returns
    -------
    float
        Estimated doubling dimension (``>= 0``). Returns ``0.0`` for
        single-point or zero-diameter inputs.
    """
    rng = ensure_rng(seed)
    n = len(points)
    if n < 2:
        return 0.0
    estimates: list[float] = []
    centers = rng.choice(n, size=min(num_balls, n), replace=False)
    for center in centers:
        dist = points.distances_to(points[center])
        max_dist = float(dist.max())
        if max_dist == 0.0:
            continue
        for level in range(1, radii_per_ball + 1):
            radius = max_dist / (2 ** (level - 1))
            members = np.flatnonzero(dist <= radius)
            if len(members) < 2:
                continue
            ball = points.subset(members)
            cover = greedy_ball_cover(ball, radius / 2.0)
            estimates.append(math.log2(max(len(cover), 1)))
    if not estimates:
        return 0.0
    return float(np.quantile(np.asarray(estimates), quantile))
