"""Ball covers and epsilon-nets.

These are the combinatorial objects behind the paper's doubling-dimension
arguments: a space has doubling dimension ``D`` when every radius-``r`` ball
is covered by at most ``2^D`` balls of radius ``r/2``.  The greedy cover
computed here witnesses (an upper bound on) covering numbers and is also a
convenient test oracle for the anticover property of GMM.
"""

from __future__ import annotations

import numpy as np

from repro.metricspace.points import PointSet
from repro.utils.validation import check_in_range


def greedy_ball_cover(points: PointSet, radius: float) -> list[int]:
    """Greedily pick center indices so every point is within *radius* of one.

    The classical farthest-point-style sweep: repeatedly take an uncovered
    point as a new center.  Returns the chosen center indices (a maximal
    *radius*-separated set, hence also a ``radius``-net).
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    n = len(points)
    covered = np.zeros(n, dtype=bool)
    centers: list[int] = []
    min_dist = np.full(n, np.inf)
    while not covered.all():
        # The first uncovered point becomes a center; using argmax of the
        # uncovered mask keeps the scan vectorized.
        center = int(np.argmax(~covered))
        centers.append(center)
        dist = points.distances_to(points[center])
        np.minimum(min_dist, dist, out=min_dist)
        covered = min_dist <= radius
    return centers


def epsilon_net(points: PointSet, radius: float) -> list[int]:
    """Alias for :func:`greedy_ball_cover`: the greedy cover is an ε-net.

    Its centers are pairwise more than *radius* apart and cover ``points``
    at radius *radius*.
    """
    return greedy_ball_cover(points, radius)


def covering_number(points: PointSet, radius: float) -> int:
    """Upper bound on the number of *radius*-balls needed to cover *points*.

    Uses the greedy cover, which is within the doubling constant of optimal.
    """
    return len(greedy_ball_cover(points, radius))


def ball_members(points: PointSet, center_index: int, radius: float) -> np.ndarray:
    """Indices of all points within *radius* of the point at *center_index*."""
    check_in_range(radius, "radius", 0.0, float("inf"), inclusive_low=True)
    dist = points.distances_to(points[center_index])
    return np.flatnonzero(dist <= radius)
