"""Distance functions with vectorized numpy kernels.

Each metric implements two primitives over 2-d arrays of row-vectors:

* :meth:`Metric.cross` — the ``(n, m)`` matrix of distances between two sets;
* :meth:`Metric.pairwise` — the ``(n, n)`` self-distance matrix.

Scalar :meth:`Metric.distance` and vector :meth:`Metric.point_to_set` are
derived from ``cross``.  All kernels are pure functions of their inputs and
never mutate the arrays they are given.

The library treats metrics as *bounded doubling dimension* spaces in the
sense of the paper: constant-dimension Euclidean (and L1/L∞) spaces have
constant doubling dimension, while :class:`CosineDistance` and
:class:`JaccardDistance` are the practically-important distances of Section 1
for which the algorithms still behave well empirically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_float_array

# Numerical guard: arccos needs its argument clipped to [-1, 1] because
# normalized dot products can drift a few ulps outside that range.
_COS_EPS = 1e-12


class Metric(ABC):
    """A distance function over row-vector point arrays.

    Subclasses must satisfy the metric axioms (identity, symmetry, triangle
    inequality); the test-suite property checks enforce this on random data.
    """

    #: short registry name, overridden by subclasses
    name: str = "abstract"

    #: True when :meth:`cross_into` accumulates per dimension into the
    #: output block instead of materializing an ``(n, m, d)`` broadcast.
    accumulates_per_dimension: bool = False

    #: Number of ``(tile, m)`` scratch buffers :meth:`cross_into` requests
    #: from its workspace (used by the blocked layer's tile sizing).
    scratch_arrays: int = 0

    #: True when :meth:`pairwise` symmetrizes its result (cosine); the
    #: blocked layer replays the same postprocessing.
    pairwise_symmetrize: bool = False

    @abstractmethod
    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Distance matrix of shape ``(len(left), len(right))``."""

    def cross_into(self, left: np.ndarray, right: np.ndarray,
                   out: np.ndarray, workspace) -> None:
        """Fill the preallocated ``(len(left), len(right))`` block *out*.

        The blocked layer (:mod:`repro.metricspace.blocked`) calls this one
        row tile at a time.  This default delegates to :meth:`cross`;
        coordinate-wise metrics override it with a per-dimension
        accumulation that never materializes an ``(n, m, d)`` temporary.
        """
        out[...] = self.cross(left, right)

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        """Self-distance matrix of shape ``(n, n)`` with an exact-zero diagonal."""
        matrix = self.cross(points, points)
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """Distance between two single points (1-d arrays)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        return float(self.cross(x, y)[0, 0])

    def point_to_set(self, point: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Vector of distances from a single *point* to each row of *points*."""
        point = np.atleast_2d(np.asarray(point, dtype=np.float64))
        return self.cross(point, points)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """Standard L2 distance, computed via the Gram-matrix expansion.

    ``d(x, y)^2 = |x|^2 + |y|^2 - 2 x.y`` — one BLAS call instead of an
    ``(n, m, d)`` broadcast, which is what makes billion-distance workloads
    feasible in pure numpy.
    """

    name = "euclidean"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = as_float_array(left)
        right = as_float_array(right)
        left_sq = np.einsum("ij,ij->i", left, left)
        right_sq = np.einsum("ij,ij->i", right, right)
        sq = left_sq[:, None] + right_sq[None, :] - 2.0 * (left @ right.T)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq, out=sq)


class ManhattanMetric(Metric):
    """L1 (rectilinear) distance, the metric of [16]'s rectilinear result."""

    name = "manhattan"
    accumulates_per_dimension = True
    scratch_arrays = 1

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = as_float_array(left)
        right = as_float_array(right)
        return np.abs(left[:, None, :] - right[None, :, :]).sum(axis=2)

    def cross_into(self, left: np.ndarray, right: np.ndarray,
                   out: np.ndarray, workspace) -> None:
        scratch = workspace.scratch("l1.diff", out.shape, dtype=out.dtype)
        out.fill(0.0)
        for dim in range(left.shape[1]):
            np.subtract(left[:, dim, None], right[None, :, dim], out=scratch)
            np.abs(scratch, out=scratch)
            out += scratch


class ChebyshevMetric(Metric):
    """L∞ distance."""

    name = "chebyshev"
    accumulates_per_dimension = True
    scratch_arrays = 1

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = as_float_array(left)
        right = as_float_array(right)
        return np.abs(left[:, None, :] - right[None, :, :]).max(axis=2)

    def cross_into(self, left: np.ndarray, right: np.ndarray,
                   out: np.ndarray, workspace) -> None:
        scratch = workspace.scratch("linf.diff", out.shape, dtype=out.dtype)
        out.fill(0.0)
        for dim in range(left.shape[1]):
            np.subtract(left[:, dim, None], right[None, :, dim], out=scratch)
            np.abs(scratch, out=scratch)
            np.maximum(out, scratch, out=out)


class CosineDistance(Metric):
    """Angular distance ``arccos(x.y / (|x||y|))`` used in Section 7.

    This is the true angle between vectors (in radians), which — unlike the
    raw ``1 - cos`` dissimilarity — satisfies the triangle inequality.
    Zero vectors are rejected because the angle is undefined for them.
    """

    name = "cosine"
    pairwise_symmetrize = True

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left_unit = self._normalize(left)
        right_unit = self._normalize(right)
        cosines = left_unit @ right_unit.T
        np.clip(cosines, -1.0, 1.0, out=cosines)
        return np.arccos(cosines)

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        matrix = self.cross(points, points)
        np.fill_diagonal(matrix, 0.0)
        # Symmetrize to kill off-diagonal floating-point asymmetry.
        return 0.5 * (matrix + matrix.T)

    @staticmethod
    def _normalize(points: np.ndarray) -> np.ndarray:
        points = as_float_array(points)
        norms = np.linalg.norm(points, axis=1)
        if np.any(norms == 0.0):
            raise ValidationError("cosine distance is undefined for zero vectors")
        return points / norms[:, None]


class JaccardDistance(Metric):
    """Weighted Jaccard (Ruzicka) distance ``1 - sum(min)/sum(max)``.

    For binary vectors this reduces to the classical Jaccard set distance
    that the paper cites for database queries [26].  It is a proper metric
    for non-negative vectors.
    """

    name = "jaccard"
    accumulates_per_dimension = True
    scratch_arrays = 2

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = as_float_array(left)
        right = as_float_array(right)
        if np.any(left < 0.0) or np.any(right < 0.0):
            raise ValidationError("Jaccard distance requires non-negative vectors")
        mins = np.minimum(left[:, None, :], right[None, :, :]).sum(axis=2)
        maxs = np.maximum(left[:, None, :], right[None, :, :]).sum(axis=2)
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = np.where(maxs > 0.0, mins / np.where(maxs > 0.0, maxs, 1.0), 1.0)
        return 1.0 - sim

    def cross_into(self, left: np.ndarray, right: np.ndarray,
                   out: np.ndarray, workspace) -> None:
        if np.any(left < 0.0) or np.any(right < 0.0):
            raise ValidationError("Jaccard distance requires non-negative vectors")
        mins = workspace.scratch("jaccard.mins", out.shape, dtype=out.dtype)
        scratch = workspace.scratch("jaccard.term", out.shape, dtype=out.dtype)
        mask = workspace.scratch("jaccard.mask", out.shape, dtype=bool)
        mins.fill(0.0)
        out.fill(0.0)  # accumulates sum-of-max
        for dim in range(left.shape[1]):
            l_col = left[:, dim, None]
            r_row = right[None, :, dim]
            np.minimum(l_col, r_row, out=scratch)
            mins += scratch
            np.maximum(l_col, r_row, out=scratch)
            out += scratch
        # out holds maxs; 0/0 (two all-zero vectors) takes the identity
        # convention sim = 1, matching the naive kernel.
        np.greater(out, 0.0, out=mask)
        np.divide(mins, out, out=mins, where=mask)
        np.logical_not(mask, out=mask)
        mins[mask] = 1.0
        np.subtract(1.0, mins, out=out)


class HammingDistance(Metric):
    """Number of coordinates on which two vectors differ."""

    name = "hamming"
    accumulates_per_dimension = True
    scratch_arrays = 1

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = as_float_array(left)
        right = as_float_array(right)
        return ((left[:, None, :] != right[None, :, :])
                .sum(axis=2).astype(np.result_type(left, right)))

    def cross_into(self, left: np.ndarray, right: np.ndarray,
                   out: np.ndarray, workspace) -> None:
        differs = workspace.scratch("hamming.ne", out.shape, dtype=bool)
        out.fill(0.0)
        for dim in range(left.shape[1]):
            np.not_equal(left[:, dim, None], right[None, :, dim], out=differs)
            out += differs


_REGISTRY: dict[str, type[Metric]] = {
    cls.name: cls
    for cls in (
        EuclideanMetric,
        ManhattanMetric,
        ChebyshevMetric,
        CosineDistance,
        JaccardDistance,
        HammingDistance,
    )
}


def get_metric(name: str | Metric) -> Metric:
    """Resolve a metric by registry name (or pass an instance through).

    >>> get_metric("euclidean").name
    'euclidean'
    """
    if isinstance(name, Metric):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(f"unknown metric {name!r}; known metrics: {known}") from None


# ``cross_chunked`` was retired in favor of the blocked kernel layer:
# :func:`repro.metricspace.blocked.blocked_cross` tiles the left operand the
# same way but dispatches to the metrics' accumulating ``cross_into``
# kernels, so the coordinate-wise metrics never materialize a
# ``(chunk, m, d)`` intermediate either.
