"""Distance functions with vectorized numpy kernels.

Each metric implements two primitives over 2-d arrays of row-vectors:

* :meth:`Metric.cross` — the ``(n, m)`` matrix of distances between two sets;
* :meth:`Metric.pairwise` — the ``(n, n)`` self-distance matrix.

Scalar :meth:`Metric.distance` and vector :meth:`Metric.point_to_set` are
derived from ``cross``.  All kernels are pure functions of their inputs and
never mutate the arrays they are given.

The library treats metrics as *bounded doubling dimension* spaces in the
sense of the paper: constant-dimension Euclidean (and L1/L∞) spaces have
constant doubling dimension, while :class:`CosineDistance` and
:class:`JaccardDistance` are the practically-important distances of Section 1
for which the algorithms still behave well empirically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_points_array

# Numerical guard: arccos needs its argument clipped to [-1, 1] because
# normalized dot products can drift a few ulps outside that range.
_COS_EPS = 1e-12


class Metric(ABC):
    """A distance function over row-vector point arrays.

    Subclasses must satisfy the metric axioms (identity, symmetry, triangle
    inequality); the test-suite property checks enforce this on random data.
    """

    #: short registry name, overridden by subclasses
    name: str = "abstract"

    @abstractmethod
    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Distance matrix of shape ``(len(left), len(right))``."""

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        """Self-distance matrix of shape ``(n, n)`` with an exact-zero diagonal."""
        matrix = self.cross(points, points)
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """Distance between two single points (1-d arrays)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        return float(self.cross(x, y)[0, 0])

    def point_to_set(self, point: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Vector of distances from a single *point* to each row of *points*."""
        point = np.atleast_2d(np.asarray(point, dtype=np.float64))
        return self.cross(point, points)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """Standard L2 distance, computed via the Gram-matrix expansion.

    ``d(x, y)^2 = |x|^2 + |y|^2 - 2 x.y`` — one BLAS call instead of an
    ``(n, m, d)`` broadcast, which is what makes billion-distance workloads
    feasible in pure numpy.
    """

    name = "euclidean"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        left_sq = np.einsum("ij,ij->i", left, left)
        right_sq = np.einsum("ij,ij->i", right, right)
        sq = left_sq[:, None] + right_sq[None, :] - 2.0 * (left @ right.T)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq, out=sq)


class ManhattanMetric(Metric):
    """L1 (rectilinear) distance, the metric of [16]'s rectilinear result."""

    name = "manhattan"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        return np.abs(left[:, None, :] - right[None, :, :]).sum(axis=2)


class ChebyshevMetric(Metric):
    """L∞ distance."""

    name = "chebyshev"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        return np.abs(left[:, None, :] - right[None, :, :]).max(axis=2)


class CosineDistance(Metric):
    """Angular distance ``arccos(x.y / (|x||y|))`` used in Section 7.

    This is the true angle between vectors (in radians), which — unlike the
    raw ``1 - cos`` dissimilarity — satisfies the triangle inequality.
    Zero vectors are rejected because the angle is undefined for them.
    """

    name = "cosine"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left_unit = self._normalize(left)
        right_unit = self._normalize(right)
        cosines = left_unit @ right_unit.T
        np.clip(cosines, -1.0, 1.0, out=cosines)
        return np.arccos(cosines)

    def pairwise(self, points: np.ndarray) -> np.ndarray:
        matrix = self.cross(points, points)
        np.fill_diagonal(matrix, 0.0)
        # Symmetrize to kill off-diagonal floating-point asymmetry.
        return 0.5 * (matrix + matrix.T)

    @staticmethod
    def _normalize(points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        norms = np.linalg.norm(points, axis=1)
        if np.any(norms == 0.0):
            raise ValidationError("cosine distance is undefined for zero vectors")
        return points / norms[:, None]


class JaccardDistance(Metric):
    """Weighted Jaccard (Ruzicka) distance ``1 - sum(min)/sum(max)``.

    For binary vectors this reduces to the classical Jaccard set distance
    that the paper cites for database queries [26].  It is a proper metric
    for non-negative vectors.
    """

    name = "jaccard"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        if np.any(left < 0.0) or np.any(right < 0.0):
            raise ValidationError("Jaccard distance requires non-negative vectors")
        mins = np.minimum(left[:, None, :], right[None, :, :]).sum(axis=2)
        maxs = np.maximum(left[:, None, :], right[None, :, :]).sum(axis=2)
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = np.where(maxs > 0.0, mins / np.where(maxs > 0.0, maxs, 1.0), 1.0)
        return 1.0 - sim


class HammingDistance(Metric):
    """Number of coordinates on which two vectors differ."""

    name = "hamming"

    def cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        return (left[:, None, :] != right[None, :, :]).sum(axis=2).astype(np.float64)


_REGISTRY: dict[str, type[Metric]] = {
    cls.name: cls
    for cls in (
        EuclideanMetric,
        ManhattanMetric,
        ChebyshevMetric,
        CosineDistance,
        JaccardDistance,
        HammingDistance,
    )
}


def get_metric(name: str | Metric) -> Metric:
    """Resolve a metric by registry name (or pass an instance through).

    >>> get_metric("euclidean").name
    'euclidean'
    """
    if isinstance(name, Metric):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(f"unknown metric {name!r}; known metrics: {known}") from None


def cross_chunked(metric: Metric, left: np.ndarray, right: np.ndarray,
                  chunk_rows: int = 2048) -> np.ndarray:
    """Compute ``metric.cross`` in row chunks to bound peak memory.

    The broadcast metrics (L1, L∞, Hamming, Jaccard) materialize an
    ``(n, m, d)`` intermediate; chunking the left operand keeps that at
    ``(chunk_rows, m, d)``.
    """
    left = check_points_array(left, "left")
    right = check_points_array(right, "right")
    out = np.empty((left.shape[0], right.shape[0]), dtype=np.float64)
    for start in range(0, left.shape[0], chunk_rows):
        stop = min(start + chunk_rows, left.shape[0])
        out[start:stop] = metric.cross(left[start:stop], right)
    return out
