"""Blocked (tiled) distance-kernel layer with preallocated scratch space.

The naive broadcast kernels of :mod:`repro.metricspace.distance` materialize
an ``(n, m, d)`` intermediate for the coordinate-wise metrics (L1, L∞,
Jaccard, Hamming) — a 24x blow-up over the ``(n, m)`` result for 3-d data
and the reason billion-distance workloads stall on allocator traffic rather
than arithmetic.  This module routes ``cross``/``pairwise`` computations
through row tiles:

* each metric exposes :meth:`~repro.metricspace.distance.Metric.cross_into`,
  an in-place kernel filling a preallocated ``(tile, m)`` output block; the
  coordinate-wise metrics accumulate per dimension so their peak
  intermediate is ``O(tile * m)`` instead of ``O(tile * m * d)``;
* scratch buffers come from a :class:`KernelWorkspace` that is reused
  across tiles *and* across calls, so steady-state kernel evaluation does
  no large allocations beyond the result matrix itself;
* the tile row count is derived from a memory budget by
  :func:`tile_rows_for` (see also :func:`repro.tuning.recommend_tile_rows`),
  overridable per call and process-wide via ``REPRO_KERNEL_BUDGET_MB``.

Equivalence contract (enforced by ``tests/test_blocked_kernels.py``): the
blocked kernels match the naive ones exactly for order-insensitive
reductions (Chebyshev max, Hamming count) and to within a few ulps for the
floating-point sums (the per-dimension accumulation order differs from
numpy's pairwise summation once ``d >= 8``; BLAS-backed metrics are
shape-dependent in the last ulp when tiled).  Single-tile calls on the
BLAS-backed metrics (Euclidean, cosine) are bit-identical to the naive
kernels by construction.

The workspace is per-process state and is not thread-safe; the MapReduce
engine's worker processes each get their own copy, which is the concurrency
model this library targets.
"""

from __future__ import annotations

import os

import numpy as np

from repro.metricspace.distance import Metric
from repro.utils.validation import check_points_array, check_positive_int

#: Default memory budget for per-call kernel intermediates (bytes).
_DEFAULT_BUDGET_BYTES = 64 * 2**20

#: Never tile thinner than this many rows: row-at-a-time evaluation would
#: trade the broadcast blow-up for per-call numpy overhead.
MIN_TILE_ROWS = 16

#: Estimated simultaneous (tile, m) float64 temporaries of a naive
#: ``Metric.cross`` fallback (Gram expansion: product + two squared-norm
#: broadcasts + result).
_FALLBACK_TEMPORARIES = 4


def _budget_from_env() -> int:
    raw = os.environ.get("REPRO_KERNEL_BUDGET_MB")
    if raw is None:
        return _DEFAULT_BUDGET_BYTES
    try:
        megabytes = int(raw)
    except ValueError:
        return _DEFAULT_BUDGET_BYTES
    return max(1, megabytes) * 2**20


_default_budget_bytes = _budget_from_env()


def get_default_memory_budget() -> int:
    """Process-wide kernel memory budget in bytes."""
    return _default_budget_bytes


def set_default_memory_budget(budget_bytes: int) -> None:
    """Override the process-wide kernel memory budget (bytes)."""
    global _default_budget_bytes
    _default_budget_bytes = check_positive_int(budget_bytes, "budget_bytes")


class KernelWorkspace:
    """Named, growable scratch buffers reused across kernel calls.

    ``scratch(key, shape)`` returns a view of a cached flat buffer,
    reallocating only when a larger request arrives — so a sweep over
    equally-sized tiles allocates exactly once per buffer.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}

    def scratch(self, key: str, shape: tuple[int, ...],
                dtype: np.dtype | type = np.float64) -> np.ndarray:
        """An uninitialized scratch array of *shape*, reused when possible."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buffer = self._buffers.get((key, dtype))
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[(key, dtype)] = buffer
        return buffer[:size].reshape(shape)

    def nbytes(self) -> int:
        """Total bytes currently held by the workspace."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def clear(self) -> None:
        """Drop all cached buffers."""
        self._buffers.clear()


#: Process-wide workspace shared by :class:`~repro.metricspace.points.PointSet`
#: and the solvers; one exists per worker process.
_SHARED_WORKSPACE = KernelWorkspace()


def shared_workspace() -> KernelWorkspace:
    """The process-wide default :class:`KernelWorkspace`."""
    return _SHARED_WORKSPACE


def tile_rows_for(metric: Metric, n_rows: int, n_cols: int, dim: int,
                  memory_budget_bytes: int | None = None,
                  itemsize: int = 8) -> int:
    """Largest left-operand tile whose intermediates fit the memory budget.

    For accumulating metrics the per-row cost is ``(1 + scratch_arrays)``
    rows of length *n_cols* at *itemsize* bytes per element (8 for float64,
    4 for float32 — so the float32 fast path gets 2x-wider tiles from the
    same budget); for naive fallbacks it is the estimated temporary count
    of ``Metric.cross``.  The result is clamped to
    ``[MIN_TILE_ROWS, n_rows]`` — the budget bounds *intermediate*
    memory, never the ``(n, m)`` result the caller asked for.
    """
    budget = (get_default_memory_budget() if memory_budget_bytes is None
              else check_positive_int(memory_budget_bytes, "memory_budget_bytes"))
    if metric.accumulates_per_dimension:
        temporaries = 1 + metric.scratch_arrays
    else:
        temporaries = _FALLBACK_TEMPORARIES
    itemsize = check_positive_int(itemsize, "itemsize")
    bytes_per_row = max(temporaries * n_cols * itemsize, 1)
    tile = budget // bytes_per_row
    return int(np.clip(tile, min(MIN_TILE_ROWS, n_rows), n_rows))


def blocked_cross(metric: Metric, left: np.ndarray, right: np.ndarray, *,
                  tile_rows: int | None = None,
                  memory_budget_bytes: int | None = None,
                  workspace: KernelWorkspace | None = None,
                  out: np.ndarray | None = None) -> np.ndarray:
    """``metric.cross(left, right)`` via bounded-memory row tiles.

    Equivalent to the naive kernel (see the module equivalence contract);
    peak intermediate memory is ``O(tile_rows * len(right))`` regardless of
    dimensionality for the accumulating metrics.
    """
    left = check_points_array(left, "left")
    right = check_points_array(right, "right")
    n, m = left.shape[0], right.shape[0]
    if out is None:
        out = np.empty((n, m), dtype=np.result_type(left, right))
    if tile_rows is None:
        tile_rows = tile_rows_for(metric, n, m, left.shape[1],
                                  memory_budget_bytes,
                                  itemsize=out.dtype.itemsize)
    else:
        tile_rows = check_positive_int(tile_rows, "tile_rows")
    if tile_rows >= n and not metric.accumulates_per_dimension:
        # One tile on a BLAS-backed metric: bit-identical to the naive path
        # (BLAS results are shape-dependent, so we avoid slicing here).
        out[...] = metric.cross(left, right)
        return out
    ws = workspace if workspace is not None else _SHARED_WORKSPACE
    for start in range(0, n, tile_rows):
        stop = min(start + tile_rows, n)
        metric.cross_into(left[start:stop], right, out[start:stop], ws)
    return out


def blocked_pairwise(metric: Metric, points: np.ndarray, *,
                     tile_rows: int | None = None,
                     memory_budget_bytes: int | None = None,
                     workspace: KernelWorkspace | None = None) -> np.ndarray:
    """``metric.pairwise(points)`` via the blocked layer.

    Preserves the pairwise postconditions of the naive path: exact-zero
    diagonal, and symmetrization for metrics that request it (cosine).
    """
    points = check_points_array(points, "points")
    n = points.shape[0]
    if tile_rows is None:
        tile_rows = tile_rows_for(metric, n, n, points.shape[1],
                                  memory_budget_bytes,
                                  itemsize=points.dtype.itemsize)
    if tile_rows >= n and not metric.accumulates_per_dimension:
        # Single tile, BLAS metric: the naive pairwise already applies the
        # metric's own postprocessing (e.g. cosine symmetrization).
        return metric.pairwise(points)
    matrix = blocked_cross(metric, points, points, tile_rows=tile_rows,
                           workspace=workspace)
    np.fill_diagonal(matrix, 0.0)
    if metric.pairwise_symmetrize:
        matrix = 0.5 * (matrix + matrix.T)
    return matrix
