"""The :class:`PointSet` container binding a point array to its metric.

A ``PointSet`` is the standard currency of the library: algorithms accept
one and return index-based or subset-based results against it.  It is a thin,
immutable view — subsetting shares the underlying array whenever numpy
fancy-indexing allows.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

from repro.metricspace.blocked import blocked_cross, blocked_pairwise
from repro.metricspace.distance import Metric, get_metric
from repro.utils.validation import check_points_array

MetricLike = Union[str, Metric]


class PointSet:
    """An ``(n, d)`` array of points together with a :class:`Metric`.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)`` (or ``(n,)``, treated as 1-d points).
    metric:
        A :class:`Metric` instance or registry name such as ``"euclidean"``.
    dtype:
        Optional storage dtype (``"float64"`` or ``"float32"``).  When
        omitted, float32 inputs are preserved and everything else is
        coerced to float64.

    Example
    -------
    >>> ps = PointSet([[0.0, 0.0], [3.0, 4.0]], metric="euclidean")
    >>> len(ps), ps.dim
    (2, 2)
    >>> float(ps.pairwise()[0, 1])
    5.0
    """

    __slots__ = ("points", "metric")

    def __init__(self, points: np.ndarray, metric: MetricLike = "euclidean",
                 dtype: "np.dtype | str | None" = None):
        self.points = check_points_array(points, dtype=dtype)
        self.metric = get_metric(metric)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the ambient vector representation."""
        return self.points.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the underlying point array."""
        return self.points.dtype

    def astype(self, dtype: "np.dtype | str") -> "PointSet":
        """A copy of this set stored in *dtype* (no-op when already there)."""
        if self.points.dtype == np.dtype(dtype):
            return self
        return PointSet(self.points.astype(dtype), self.metric)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.points)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.points[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointSet(n={len(self)}, dim={self.dim}, metric={self.metric.name!r})"

    # -- derived sets --------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "PointSet":
        """A new ``PointSet`` containing the rows selected by *indices*."""
        indices = np.asarray(indices, dtype=np.intp)
        return PointSet(self.points[indices], self.metric)

    def concat(self, other: "PointSet") -> "PointSet":
        """Concatenate with another ``PointSet`` over the same metric."""
        if type(other.metric) is not type(self.metric):
            raise ValueError(
                f"cannot concat point sets over different metrics "
                f"({self.metric.name} vs {other.metric.name})"
            )
        return PointSet(np.vstack([self.points, other.points]), self.metric)

    def split(self, parts: int) -> list["PointSet"]:
        """Split into *parts* nearly-equal contiguous chunks."""
        return [PointSet(chunk, self.metric)
                for chunk in np.array_split(self.points, parts)]

    # -- distances -----------------------------------------------------------
    def pairwise(self) -> np.ndarray:
        """Full ``(n, n)`` self-distance matrix.

        Routed through the blocked kernel layer: peak intermediate memory
        is bounded by the process-wide budget regardless of ``n`` and
        ``dim`` (see :mod:`repro.metricspace.blocked`).
        """
        return blocked_pairwise(self.metric, self.points)

    def cross(self, other: "PointSet") -> np.ndarray:
        """Distance matrix between this set and *other* (blocked kernels)."""
        return blocked_cross(self.metric, self.points, other.points)

    def distances_to(self, point: np.ndarray) -> np.ndarray:
        """Distances from each stored point to a single query *point*."""
        return self.metric.point_to_set(point, self.points)

    def distance_to_set(self, point: np.ndarray) -> float:
        """``d(point, S) = min_q d(point, q)`` over the stored points."""
        return float(self.distances_to(point).min())

    def diameter(self) -> float:
        """Maximum pairwise distance (exact, O(n^2))."""
        return float(self.pairwise().max())

    def nearest_index(self, point: np.ndarray) -> int:
        """Index of the stored point nearest to *point*."""
        return int(self.distances_to(point).argmin())
