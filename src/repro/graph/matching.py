"""Greedy farthest-pair matching.

The Hassin-Rubinstein-Tamir 2-approximation for remote-clique repeatedly
matches the two farthest unmatched points; the union of the first ``k/2``
matched pairs is the solution.  The same matching underlies the sequential
algorithms for remote-star and remote-bipartition [12].
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def greedy_max_matching(dist: np.ndarray, pairs: int) -> list[tuple[int, int]]:
    """Greedily pick *pairs* disjoint index pairs in decreasing distance order.

    Equivalent to repeatedly extracting the farthest pair among unmatched
    points, which is the textbook greedy maximal matching on the metric
    clique sorted by weight.

    Raises
    ------
    ValidationError
        If fewer than ``2 * pairs`` points are available.
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    n = dist.shape[0]
    if pairs < 0:
        raise ValidationError(f"pairs must be non-negative, got {pairs}")
    if 2 * pairs > n:
        raise ValidationError(f"cannot pick {pairs} disjoint pairs from {n} points")
    if pairs == 0:
        return []
    # Two equivalent strategies: repeatedly extracting the farthest
    # unmatched pair costs O(pairs * n^2); sorting all pairs costs
    # O(n^2 log n) but visits each edge once.  For the few-pairs/large-n
    # regime of core-set solving, iterated extraction is much faster and
    # avoids materializing the O(n^2) index arrays.
    if pairs <= 64:
        return _matching_by_extraction(dist, pairs)
    return _matching_by_sorting(dist, pairs)


def _matching_by_extraction(dist: np.ndarray, pairs: int) -> list[tuple[int, int]]:
    working = dist.astype(np.float64, copy=True)
    # Mask the diagonal and lower triangle so argmax always returns a
    # valid unordered pair (a < b), even when all remaining distances are 0.
    working[np.tril_indices(dist.shape[0], k=0)] = -np.inf
    matching: list[tuple[int, int]] = []
    for _ in range(pairs):
        a, b = np.unravel_index(int(np.argmax(working)), working.shape)
        matching.append((int(a), int(b)))
        working[[a, b], :] = -np.inf
        working[:, [a, b]] = -np.inf
    return matching


def _matching_by_sorting(dist: np.ndarray, pairs: int) -> list[tuple[int, int]]:
    n = dist.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    order = np.argsort(dist[iu, ju])[::-1]
    matched = np.zeros(n, dtype=bool)
    matching: list[tuple[int, int]] = []
    for edge in order:
        a, b = int(iu[edge]), int(ju[edge])
        if matched[a] or matched[b]:
            continue
        matching.append((a, b))
        matched[a] = matched[b] = True
        if len(matching) == pairs:
            break
    return matching
