"""Travelling-salesman tours over metric cliques.

``w(TSP(S))`` defines the remote-cycle diversity objective.  Evaluating it
exactly is itself NP-hard, so the library offers:

* :func:`held_karp_tsp` — exact O(2^n n^2) dynamic program, used for
  ``n <= HELD_KARP_LIMIT`` (tests and small-k experiments);
* :func:`mst_doubling_tour` — the classical metric 2-approximation
  (preorder walk of the MST), refined by :func:`two_opt_improve`;
* :func:`tsp_weight` — dispatches between the two and is the evaluator the
  diversity layer uses.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.mst import prim_mst

#: Largest instance routed to the exact Held-Karp solver by default.
HELD_KARP_LIMIT = 13


def _check_square(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    return dist


def tour_weight(dist: np.ndarray, tour: list[int]) -> float:
    """Weight of the closed tour visiting *tour* in order."""
    dist = _check_square(dist)
    if len(tour) <= 1:
        return 0.0
    total = 0.0
    for i, node in enumerate(tour):
        total += dist[node, tour[(i + 1) % len(tour)]]
    return float(total)


def held_karp_tsp(dist: np.ndarray) -> tuple[float, list[int]]:
    """Exact TSP via the Held-Karp dynamic program.

    Returns ``(weight, tour)``.  Exponential in ``n``; guarded by callers.
    """
    dist = _check_square(dist)
    n = dist.shape[0]
    if n <= 1:
        return 0.0, list(range(n))
    if n == 2:
        return float(2.0 * dist[0, 1]), [0, 1]
    # dp[mask][j] = best cost of a path starting at 0, visiting exactly the
    # vertices in mask (0 always in mask), ending at j.
    full = 1 << n
    dp = np.full((full, n), np.inf)
    parent = np.full((full, n), -1, dtype=np.int64)
    dp[1][0] = 0.0
    for mask in range(1, full):
        if not mask & 1:
            continue
        ends = np.flatnonzero(np.isfinite(dp[mask]))
        if len(ends) == 0:
            continue
        for j in range(n):
            bit = 1 << j
            if mask & bit:
                continue
            candidates = dp[mask][ends] + dist[ends, j]
            best = int(np.argmin(candidates))
            new_mask = mask | bit
            if candidates[best] < dp[new_mask][j]:
                dp[new_mask][j] = candidates[best]
                parent[new_mask][j] = ends[best]
    final_mask = full - 1
    closing = dp[final_mask] + dist[:, 0]
    closing[0] = np.inf
    last = int(np.argmin(closing))
    weight = float(closing[last])
    # Reconstruct the tour by walking the parent table backwards.
    tour = []
    mask, node = final_mask, last
    while node != -1:
        tour.append(node)
        prev = int(parent[mask][node])
        mask ^= 1 << node
        node = prev
    tour.reverse()
    return weight, tour


def mst_doubling_tour(dist: np.ndarray) -> list[int]:
    """Metric 2-approximate tour: preorder walk of the MST (shortcutting)."""
    dist = _check_square(dist)
    n = dist.shape[0]
    if n <= 2:
        return list(range(n))
    children: list[list[int]] = [[] for _ in range(n)]
    for parent_node, child in prim_mst(dist):
        children[parent_node].append(child)
    tour: list[int] = []
    stack = [0]
    while stack:
        node = stack.pop()
        tour.append(node)
        # Reversed push keeps the preorder left-to-right.
        stack.extend(reversed(children[node]))
    return tour


def two_opt_improve(dist: np.ndarray, tour: list[int],
                    max_rounds: int = 8) -> list[int]:
    """Improve *tour* with 2-opt edge exchanges until a local optimum.

    Each round scans all edge pairs once; stops early when no exchange
    improves the tour.  This is the standard polish that makes the
    MST-doubling tour near-optimal on doubling-dimension data.
    """
    dist = _check_square(dist)
    n = len(tour)
    if n < 4:
        return list(tour)
    tour = list(tour)
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            a, b = tour[i], tour[i + 1]
            for j in range(i + 2, n):
                c, d = tour[j], tour[(j + 1) % n]
                if d == a:
                    continue
                delta = (dist[a, c] + dist[b, d]) - (dist[a, b] + dist[c, d])
                if delta < -1e-12:
                    tour[i + 1:j + 1] = reversed(tour[i + 1:j + 1])
                    improved = True
                    a, b = tour[i], tour[i + 1]
        if not improved:
            break
    return tour


def tsp_weight(dist: np.ndarray, exact_limit: int = HELD_KARP_LIMIT) -> float:
    """Weight of a TSP tour on *dist*: exact for small n, 2-opt heuristic beyond.

    This is the remote-cycle diversity evaluator.  For ``n > exact_limit``
    the returned value is an upper bound on the optimum within a factor 2
    (usually much closer after 2-opt).
    """
    dist = _check_square(dist)
    n = dist.shape[0]
    if n <= 3:
        # Any permutation of <= 3 points gives the same closed tour.
        return tour_weight(dist, list(range(n)))
    if n <= exact_limit:
        weight, _ = held_karp_tsp(dist)
        return weight
    tour = two_opt_improve(dist, mst_doubling_tour(dist))
    return tour_weight(dist, tour)
