"""Minimum spanning tree of a metric clique (Prim's algorithm).

Operating on a dense distance matrix, Prim's algorithm with an array-based
frontier runs in O(n^2), which is optimal for complete graphs and fully
vectorizes in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _check_square(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    return dist


def prim_mst(dist: np.ndarray) -> list[tuple[int, int]]:
    """Edges ``(parent, child)`` of an MST of the complete graph on *dist*.

    Returns an empty list for a single vertex.
    """
    dist = _check_square(dist)
    n = dist.shape[0]
    if n <= 1:
        return []
    in_tree = np.zeros(n, dtype=bool)
    best_dist = dist[0].copy()
    best_parent = np.zeros(n, dtype=np.intp)
    in_tree[0] = True
    best_dist[0] = np.inf
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        nxt = int(np.argmin(best_dist))
        edges.append((int(best_parent[nxt]), nxt))
        in_tree[nxt] = True
        best_dist[nxt] = np.inf
        closer = dist[nxt] < best_dist
        closer &= ~in_tree
        best_parent[closer] = nxt
        best_dist[closer] = dist[nxt][closer]
    return edges


def mst_weight(dist: np.ndarray) -> float:
    """Total weight of the MST of the complete graph on *dist*.

    ``w(MST(S))`` is exactly the remote-tree diversity value of the point
    set behind the matrix.
    """
    dist = _check_square(dist)
    edges = prim_mst(dist)
    return float(sum(dist[a, b] for a, b in edges))
