"""Graph substrate over metric cliques: MST, TSP, matching, bipartition.

The remote-tree and remote-cycle diversity objectives are defined via the
minimum spanning tree and the optimal travelling-salesman tour of the metric
clique on the chosen points; remote-clique's sequential approximation uses
greedy farthest-pair matching, and remote-bipartition needs a balanced
min-cut.  All four are implemented here from scratch over distance matrices.
"""

from repro.graph.mst import mst_weight, prim_mst
from repro.graph.tsp import (
    tsp_weight,
    held_karp_tsp,
    mst_doubling_tour,
    two_opt_improve,
    tour_weight,
)
from repro.graph.matching import greedy_max_matching
from repro.graph.bipartition import (
    min_balanced_bipartition,
    exact_min_balanced_bipartition,
    local_search_balanced_bipartition,
    bipartition_cut_weight,
)

__all__ = [
    "mst_weight",
    "prim_mst",
    "tsp_weight",
    "held_karp_tsp",
    "mst_doubling_tour",
    "two_opt_improve",
    "tour_weight",
    "greedy_max_matching",
    "min_balanced_bipartition",
    "exact_min_balanced_bipartition",
    "local_search_balanced_bipartition",
    "bipartition_cut_weight",
]
