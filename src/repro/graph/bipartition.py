"""Balanced minimum bipartition of a metric clique.

The remote-bipartition diversity of a set ``S`` is the minimum, over
bipartitions ``(Q, S \\ Q)`` with ``|Q| = floor(|S|/2)``, of the total weight
of edges crossing the cut.  Evaluating it exactly needs enumeration of
``C(n, n/2)`` subsets, so the library provides an exact evaluator for small
``n`` and a swap-based local-search evaluator beyond that.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.exceptions import ValidationError

#: Largest set routed to exact enumeration by default (C(16, 8) = 12,870).
EXACT_LIMIT = 16


def _check_square(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {dist.shape}")
    return dist


def bipartition_cut_weight(dist: np.ndarray, side: np.ndarray) -> float:
    """Weight of edges crossing the cut defined by boolean mask *side*."""
    dist = _check_square(dist)
    side = np.asarray(side, dtype=bool)
    if side.shape != (dist.shape[0],):
        raise ValidationError("side mask must have one entry per point")
    return float(dist[np.ix_(side, ~side)].sum())


def exact_min_balanced_bipartition(dist: np.ndarray) -> tuple[float, np.ndarray]:
    """Exact minimum balanced cut by subset enumeration.

    Returns ``(weight, side_mask)``.  Cost grows as ``C(n, n/2)``; callers
    should respect :data:`EXACT_LIMIT`.
    """
    dist = _check_square(dist)
    n = dist.shape[0]
    if n < 2:
        return 0.0, np.zeros(n, dtype=bool)
    half = n // 2
    best_weight = np.inf
    best_side = np.zeros(n, dtype=bool)
    # Fixing point 0 on the "right" side halves the enumeration when the
    # sides have equal size (each cut counted once); harmless when odd.
    candidates = combinations(range(1, n), half)
    for subset in candidates:
        side = np.zeros(n, dtype=bool)
        side[list(subset)] = True
        weight = bipartition_cut_weight(dist, side)
        if weight < best_weight:
            best_weight = weight
            best_side = side
    return float(best_weight), best_side


def local_search_balanced_bipartition(
    dist: np.ndarray, max_rounds: int = 16, restarts: int = 3,
    seed: int | None = 0,
) -> tuple[float, np.ndarray]:
    """Swap-based local search for the minimum balanced cut.

    Starts from random balanced partitions and repeatedly performs the best
    improving swap of one point per side until a local optimum, keeping the
    best of *restarts* runs.  Deterministic for a fixed *seed*.
    """
    dist = _check_square(dist)
    n = dist.shape[0]
    if n < 2:
        return 0.0, np.zeros(n, dtype=bool)
    half = n // 2
    rng = np.random.default_rng(seed)
    best_weight = np.inf
    best_side = np.zeros(n, dtype=bool)
    for _ in range(max(restarts, 1)):
        perm = rng.permutation(n)
        side = np.zeros(n, dtype=bool)
        side[perm[:half]] = True
        weight = bipartition_cut_weight(dist, side)
        for _ in range(max_rounds):
            improved = False
            # contribution[i] = total distance from i to the opposite side.
            left = np.flatnonzero(side)
            right = np.flatnonzero(~side)
            cross = dist[np.ix_(left, right)]
            # Swapping left[i] and right[j] changes the cut by:
            # delta = (sum_right dist[l, .] - inner) terms; compute directly.
            left_to_right = cross.sum(axis=1)        # d(l, R)
            right_to_left = cross.sum(axis=0)        # d(r, L)
            left_to_left = dist[np.ix_(left, left)].sum(axis=1)
            right_to_right = dist[np.ix_(right, right)].sum(axis=1)
            # After swapping l and r: l joins R, r joins L.
            # new_cut = cut - d(l,R) - d(r,L) + d(l,L) + d(r,R) + 2 d(l,r)
            #   - 2*d(l,r) adjustments: d(l, r) was cross before and stays
            #     cross after (both switched sides), so subtract it twice
            #     from the removal and it remains; careful algebra below.
            delta = (
                left_to_left[:, None] + right_to_right[None, :]
                - left_to_right[:, None] - right_to_left[None, :]
                + 2.0 * cross
            )
            i, j = np.unravel_index(int(np.argmin(delta)), delta.shape)
            if delta[i, j] < -1e-12:
                l_idx, r_idx = left[i], right[j]
                side[l_idx] = False
                side[r_idx] = True
                weight += float(delta[i, j])
                improved = True
            if not improved:
                break
        weight = bipartition_cut_weight(dist, side)
        if weight < best_weight:
            best_weight = weight
            best_side = side.copy()
    return float(best_weight), best_side


def min_balanced_bipartition(
    dist: np.ndarray, exact_limit: int = EXACT_LIMIT,
) -> tuple[float, np.ndarray]:
    """Minimum balanced cut: exact for ``n <= exact_limit``, local search beyond.

    This is the remote-bipartition diversity evaluator.
    """
    dist = _check_square(dist)
    if dist.shape[0] <= exact_limit:
        return exact_min_balanced_bipartition(dist)
    return local_search_balanced_bipartition(dist)
