"""Seeded random-number-generator helpers.

Every stochastic component of the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalizes it through :func:`ensure_rng`.  Experiments use
:func:`spawn_rngs` to derive independent per-trial generators from a single
master seed so that trials are reproducible yet uncorrelated.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged, so components can share a
    generator and consume from a single stream of randomness.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive *count* independent generators from a master *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    children are statistically independent regardless of the master seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a sequence from the generator's own bit stream.
        sequence = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
