"""Argument-validation helpers shared across the library.

These raise :class:`repro.exceptions.ValidationError` (a ``ValueError``
subclass) with messages that name the offending parameter, so failures
surface at API boundaries instead of deep inside numpy kernels.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InsufficientPointsError, ValidationError


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive ``int`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_in_range(value: float, name: str, low: float, high: float,
                   inclusive_low: bool = False, inclusive_high: bool = True) -> float:
    """Validate that *value* lies in the interval defined by the bounds."""
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (ok_low and ok_high):
        lo_bracket = "[" if inclusive_low else "("
        hi_bracket = "]" if inclusive_high else ")"
        raise ValidationError(
            f"{name} must be in {lo_bracket}{low}, {high}{hi_bracket}, got {value}"
        )
    return float(value)


def as_float_array(values: np.ndarray, dtype: "np.dtype | str | None" = None) -> np.ndarray:
    """Coerce *values* to a floating array, preserving the float32 fast path.

    With ``dtype=None`` (the default), float32 inputs stay float32 and every
    other dtype is coerced to float64 — exactly the historical behaviour for
    non-float32 callers.  An explicit *dtype* forces that representation.
    """
    array = np.asarray(values)
    if dtype is not None:
        return np.asarray(array, dtype=np.dtype(dtype))
    if array.dtype == np.float32:
        return array
    return np.asarray(array, dtype=np.float64)


def check_points_array(points: np.ndarray, name: str = "points",
                       dtype: "np.dtype | str | None" = None) -> np.ndarray:
    """Validate a 2-d float point array of shape ``(n, d)`` and return it.

    One-dimensional inputs are reshaped to a single column so scalar metric
    spaces can be expressed as plain vectors.  ``float32`` inputs are kept in
    float32 (the fast-path dtype); everything else is coerced to float64
    unless an explicit *dtype* is requested.
    """
    array = as_float_array(points, dtype=dtype)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be a 2-d array, got ndim={array.ndim}")
    if array.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one point")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains non-finite values")
    return array


def check_k_le_n(k: int, n: int, what: str = "points") -> int:
    """Validate ``0 < k <= n`` and return ``k``."""
    k = check_positive_int(k, "k")
    if k > n:
        raise InsufficientPointsError(requested=k, available=n, what=what)
    return k
