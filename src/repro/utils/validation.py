"""Argument-validation helpers shared across the library.

These raise :class:`repro.exceptions.ValidationError` (a ``ValueError``
subclass) with messages that name the offending parameter, so failures
surface at API boundaries instead of deep inside numpy kernels.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InsufficientPointsError, ValidationError


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive ``int`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_in_range(value: float, name: str, low: float, high: float,
                   inclusive_low: bool = False, inclusive_high: bool = True) -> float:
    """Validate that *value* lies in the interval defined by the bounds."""
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (ok_low and ok_high):
        lo_bracket = "[" if inclusive_low else "("
        hi_bracket = "]" if inclusive_high else ")"
        raise ValidationError(
            f"{name} must be in {lo_bracket}{low}, {high}{hi_bracket}, got {value}"
        )
    return float(value)


def check_points_array(points: np.ndarray, name: str = "points") -> np.ndarray:
    """Validate a 2-d float point array of shape ``(n, d)`` and return it.

    One-dimensional inputs are reshaped to a single column so scalar metric
    spaces can be expressed as plain vectors.
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be a 2-d array, got ndim={array.ndim}")
    if array.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one point")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains non-finite values")
    return array


def check_k_le_n(k: int, n: int, what: str = "points") -> int:
    """Validate ``0 < k <= n`` and return ``k``."""
    k = check_positive_int(k, "k")
    if k > n:
        raise InsufficientPointsError(requested=k, available=n, what=what)
    return k
