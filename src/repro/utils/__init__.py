"""Small shared utilities: RNG handling, validation, and timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_positive_int,
    check_points_array,
    check_in_range,
    check_k_le_n,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "check_positive_int",
    "check_points_array",
    "check_in_range",
    "check_k_le_n",
]
