"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.lap("build"):
    ...     _ = sum(range(1000))
    >>> watch.total("build") >= 0.0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def lap(self, name: str) -> "_LapContext":
        """Return a context manager accumulating elapsed time under *name*."""
        return _LapContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Manually add *seconds* of elapsed time to lap *name*."""
        self.laps[name] = self.laps.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds recorded under *name* (0.0 if never recorded)."""
        return self.laps.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per recorded lap named *name*."""
        count = self.counts.get(name, 0)
        return self.laps.get(name, 0.0) / count if count else 0.0


class _LapContext:
    def __init__(self, watch: Stopwatch, name: str):
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_LapContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
