"""Scenario: dispersed facility placement (remote-edge / remote-tree).

Classic dispersion application from the paper's introduction: choose k
locations for noncompeting franchises (or obnoxious facilities) that are
as far from each other as possible.  Demand points cluster around towns;
good solutions pick at most one site per town.

Demonstrates:
* estimating the doubling dimension of the demand set (the parameter the
  core-set sizes depend on);
* sizing k' from the theory (coreset_size_for) vs the small practical
  values Section 7 recommends;
* solving remote-edge (max-min separation) and remote-tree (max spanning
  structure) on the same data — different measures, different optima.

Run:  python examples/facility_dispersion.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MRDiversityMaximizer,
    coreset_size_for,
    estimate_doubling_dimension,
    gaussian_clusters,
)

K = 6
N = 15_000


def main() -> None:
    demand = gaussian_clusters(N, centers=12, dim=2, spread=0.03, box=10.0,
                               seed=33)
    print(f"demand set: {N} points around 12 towns in a 10x10 region\n")

    dimension = estimate_doubling_dimension(demand, num_balls=16, seed=0,
                                            quantile=0.9)
    print(f"estimated doubling dimension: {dimension:.2f}")

    theoretical = coreset_size_for(K, epsilon=1.0,
                                   doubling_dimension=dimension,
                                   objective="remote-edge")
    practical = 8 * K
    print(f"theoretical k' for eps=1: {theoretical}  |  practical k': {practical}")
    print("(Section 7: small multiples of k already give ratios near 1)\n")

    for objective in ("remote-edge", "remote-tree"):
        algo = MRDiversityMaximizer(k=K, k_prime=practical,
                                    objective=objective, parallelism=4,
                                    seed=0)
        result = algo.run(demand)
        sites = result.solution.points
        print(f"{objective}: value = {result.value:.3f}")
        for i, site in enumerate(sites):
            print(f"   site {i}: ({site[0]:6.2f}, {site[1]:6.2f})")
        # Separation diagnostic: distance between the two closest sites.
        dist = result.solution.pairwise()
        iu, ju = np.triu_indices(len(sites), k=1)
        print(f"   closest pair of sites: {dist[iu, ju].min():.3f}\n")


if __name__ == "__main__":
    main()
