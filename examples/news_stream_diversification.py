"""Scenario: diversifying a live document stream (Section 1's web/news use).

A feed of short documents arrives as word-count vectors (synthetic Zipf
bag-of-words standing in for the paper's musiXmatch lyrics).  We maintain
an SMM-EXT sketch under the cosine (angular) distance and, whenever asked,
produce k documents maximizing total pairwise dissimilarity
(remote-clique) — the "show the user a diverse sample" primitive behind
search-result and aggregator diversification.

Also demonstrates the throughput measurement of Figure 3: the sketch
sustains rates far above typical feed rates (the paper cites Twitter's
5,700 tweets/s average), so the stream source — not the core-set
construction — is the bottleneck.

Run:  python examples/news_stream_diversification.py
"""

from __future__ import annotations

import numpy as np

from repro import SMMExt, solve_sequential, zipf_bag_of_words
from repro.streaming.stream import ArrayStream
from repro.streaming.throughput import measure_throughput

K = 6
K_PRIME = 24
FEED_SIZE = 3_000


def main() -> None:
    feed = zipf_bag_of_words(FEED_SIZE, vocab_size=500, topics=20, seed=11)
    print(f"feed: {FEED_SIZE} documents, vocab 500, cosine distance\n")

    sketch = SMMExt(k=K, k_prime=K_PRIME, metric="cosine")
    report = measure_throughput(sketch, ArrayStream(feed.points))
    print(f"sketch throughput: {report.kernel_points_per_second:,.0f} docs/s "
          f"(kernel), memory {sketch.peak_memory_points} docs\n")

    coreset = sketch.finalize()
    indices, value = solve_sequential(coreset, K, "remote-clique")
    selection = coreset.subset(indices)

    print(f"selected {K} documents, total pairwise angular distance = {value:.3f}")
    print("pairwise angles (radians) between selected documents:")
    angles = selection.pairwise()
    for i in range(K):
        row = "  ".join(f"{angles[i, j]:.2f}" for j in range(K))
        print(f"  doc {i}: {row}")

    # Diversity sanity: compare against picking the first K documents.
    head = feed.subset(range(K))
    _, head_value = solve_sequential(head, K, "remote-clique")
    print(f"\nbaseline (first {K} docs of the feed): {head_value:.3f}")
    print(f"diversified selection improves on it by "
          f"{value / max(head_value, 1e-9):.2f}x")

    # Word-support overlap: diverse docs should use nearly disjoint words.
    supports = [set(np.flatnonzero(selection.points[i])) for i in range(K)]
    overlaps = [
        len(supports[i] & supports[j])
        for i in range(K) for j in range(i + 1, K)
    ]
    print(f"mean shared words between selected docs: {np.mean(overlaps):.1f}")


if __name__ == "__main__":
    main()
