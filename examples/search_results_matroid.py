"""Scenario: diversified search results under per-site caps (matroid).

The paper's motivating applications (web search, e-commerce) rarely want
*pure* diversity: result pages impose constraints like "at most two results
per site" or "at most one product per brand".  That is diversity
maximization under a partition matroid — the extension of remote-clique
studied by Abbassi et al. [1], which this library implements on top of its
core-set machinery.

We synthesize result embeddings grouped by source site, then compare:
* unconstrained remote-clique top-k (may flood the page with one site),
* matroid-constrained selection with "<= 1 result per site",
both solved at scale through a GMM-EXT core-set.

Run:  python examples/search_results_matroid.py
"""

from __future__ import annotations

import numpy as np

from repro import PointSet, solve_sequential
from repro.diversity.matroid import (
    PartitionMatroid,
    TruncatedMatroid,
    solve_matroid_clique,
)
from repro.utils.rng import ensure_rng

SITES = 12
RESULTS_PER_SITE = 600
K = 8


def main() -> None:
    rng = ensure_rng(99)
    # Each site's results cluster in embedding space (near-duplicates).
    site_centers = 5.0 * rng.normal(size=(SITES, 6))
    embeddings = np.vstack([
        site_centers[site] + 0.15 * rng.normal(size=(RESULTS_PER_SITE, 6))
        for site in range(SITES)
    ])
    site_of = np.repeat(np.arange(SITES), RESULTS_PER_SITE)
    order = rng.permutation(len(embeddings))
    results = PointSet(embeddings[order])
    site_of = site_of[order]
    print(f"{len(results)} search results from {SITES} sites\n")

    # Unconstrained diversity: may pick several results of one far-out site.
    indices, value = solve_sequential(results, K, "remote-clique")
    sites_used = site_of[indices]
    print(f"unconstrained remote-clique: value {value:.2f}, "
          f"sites used: {sorted(sites_used.tolist())}")

    # Matroid constraint: at most one result per site AND at most K total
    # (a partition matroid truncated to rank K — exactly a result page).
    per_site = PartitionMatroid(site_of, {site: 1 for site in range(SITES)})
    matroid = TruncatedMatroid(per_site, K)
    constrained, constrained_value = solve_matroid_clique(
        results, matroid, k_prime=8 * K, use_coreset=True)
    constrained_sites = site_of[constrained]
    print(f"matroid-constrained (<=1/site, {K} total): "
          f"value {constrained_value:.2f}, "
          f"sites used: {sorted(constrained_sites.tolist())}")

    assert len(constrained) == K
    assert len(set(constrained_sites.tolist())) == len(constrained_sites), \
        "matroid constraint violated"
    print(f"\nconstrained selection spans {len(set(constrained_sites.tolist()))} "
          f"distinct sites (unconstrained heuristic: "
          f"{len(set(sites_used.tolist()))} — near-duplicates flood the page),")
    print("and the matroid local search here even beats the unconstrained "
          "matching heuristic on raw value, "
          f"{constrained_value:.1f} vs {value:.1f}.")


if __name__ == "__main__":
    main()
