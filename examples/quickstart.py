"""Quickstart: diversity maximization in three ways.

Generates the paper's adversarial sphere-shell dataset (a handful of
genuinely diverse points hidden in a dense ball), then recovers a diverse
subset with

1. the sequential baseline on the full data (small-data gold standard),
2. the 2-round MapReduce algorithm (composable GMM core-sets),
3. the 1-pass streaming algorithm (SMM core-sets),

and prints achieved diversity values plus resource usage.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ArrayStream,
    MRDiversityMaximizer,
    StreamingDiversityMaximizer,
    solve_sequential,
    sphere_shell,
)

K = 8              # how many diverse points we want
K_PRIME = 4 * K    # core-set size parameter (bigger = more accurate)
N = 20_000


def main() -> None:
    points = sphere_shell(N, K, dim=3, seed=7)
    print(f"dataset: {N} points in R^3, {K} planted far points\n")

    # 1. Sequential on the full dataset (feasible here, not at paper scale).
    _, sequential_value = solve_sequential(points, K, "remote-edge")
    print(f"sequential GMM on all points      remote-edge = {sequential_value:.4f}")

    # 2. Two-round MapReduce with composable core-sets.
    mr = MRDiversityMaximizer(k=K, k_prime=K_PRIME, objective="remote-edge",
                              parallelism=8, seed=0)
    mr_result = mr.run(points)
    print(f"MapReduce (2 rounds, 8 reducers)  remote-edge = {mr_result.value:.4f}"
          f"   [core-set {mr_result.coreset_size} pts, "
          f"M_L {mr_result.stats.max_local_memory_points} pts]")

    # 3. One-pass streaming.
    streaming = StreamingDiversityMaximizer(k=K, k_prime=K_PRIME,
                                            objective="remote-edge")
    st_result = streaming.run(ArrayStream(points.points))
    print(f"Streaming (1 pass)                remote-edge = {st_result.value:.4f}"
          f"   [memory {st_result.peak_memory_points} pts, "
          f"{st_result.kernel_throughput:,.0f} pts/s]")

    print("\nBoth big-data algorithms track the sequential value while "
          "touching each point once\nand holding only a core-set in memory.")


if __name__ == "__main__":
    main()
