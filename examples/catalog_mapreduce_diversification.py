"""Scenario: diversifying a sharded product catalog (e-commerce use case).

A catalog of feature vectors lives pre-partitioned across shards (as in a
distributed store).  We run the full MapReduce family on it:

* the deterministic 2-round algorithm (Theorem 6),
* the randomized 2-round variant with capped delegates (Theorem 7),
* the 3-round generalized-core-set algorithm (Theorem 10),

comparing solution quality, aggregate core-set size (the round-2 reducer's
memory), and rounds — the trade-off surface a deployment would choose from.

Run:  python examples/catalog_mapreduce_diversification.py
"""

from __future__ import annotations

from repro import MRDiversityMaximizer, gaussian_clusters
from repro.experiments.report import format_table

K = 32          # products for the landing page
K_PRIME = 64
SHARDS = 8
CATALOG = 40_000


def main() -> None:
    # Product embeddings: a clustered catalog (brands/categories).
    catalog = gaussian_clusters(CATALOG, centers=25, dim=8, spread=0.08,
                                seed=21)
    print(f"catalog: {CATALOG} products, 8-d features, {SHARDS} shards\n")

    algo = MRDiversityMaximizer(k=K, k_prime=K_PRIME,
                                objective="remote-clique",
                                parallelism=SHARDS, seed=0)

    two_round = algo.run(catalog)
    randomized = algo.run(catalog, randomized=True)
    three_round = algo.run_three_round(catalog)

    rows = [
        ["2-round deterministic", two_round.rounds, two_round.coreset_size,
         round(two_round.value, 3)],
        ["2-round randomized", randomized.rounds, randomized.coreset_size,
         round(randomized.value, 3)],
        ["3-round generalized", three_round.rounds, three_round.coreset_size,
         round(three_round.value, 3)],
    ]
    print(format_table(
        ["algorithm", "rounds", "aggregate core-set (pts)", "remote-clique"],
        rows,
    ))

    saving = two_round.coreset_size / max(three_round.coreset_size, 1)
    print(f"\nThe 3-round algorithm shrinks the aggregation memory "
          f"{saving:.1f}x (Theorem 10's sqrt(k)-type saving)\n"
          f"while keeping {100 * three_round.value / two_round.value:.1f}% "
          "of the 2-round quality.")
    cap = randomized.extra["delegate_cap"]
    cut = 100 * (1 - randomized.coreset_size / two_round.coreset_size)
    print(f"Randomized delegates (cap = {cap} < k = {K}) cut the aggregate "
          f"core-set by {cut:.0f}%\nwith high-probability guarantees "
          "(Theorem 7).")


if __name__ == "__main__":
    main()
