"""Tests for the SMM family of streaming sketches.

The key checks are the doubling-algorithm invariants (coverage and
separation), the guaranteed output size, the memory bound, and quality
against the offline optimum on planted instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.coresets.smm_gen import SMMGen
from repro.diversity.exact import divk_exact
from repro.diversity.sequential import solve_sequential
from repro.exceptions import NotFittedError
from repro.metricspace.points import PointSet
from repro.streaming.memory import theoretical_memory_points


def _planted_stream(rng, n=400, k=4, spread=10.0):
    """Bulk noise plus k planted far points, shuffled."""
    bulk = rng.normal(scale=0.3, size=(n - k, 2))
    corners = spread * np.asarray([[1, 1], [-1, 1], [1, -1], [-1, -1]])[:k]
    data = np.vstack([bulk, corners])
    return data[rng.permutation(n)]


class TestSMMBasics:
    def test_output_at_least_k(self, rng):
        data = _planted_stream(rng)
        smm = SMM(k=4, k_prime=8)
        smm.process_batch(data)
        assert len(smm.finalize()) >= 4

    def test_short_stream_returns_everything(self):
        smm = SMM(k=2, k_prime=10)
        smm.process_batch(np.asarray([[0.0], [1.0], [2.0]]))
        assert len(smm.finalize()) == 3

    def test_memory_never_exceeds_model_bound(self, rng):
        data = _planted_stream(rng, n=600)
        smm = SMM(k=4, k_prime=8)
        smm.process_batch(data)
        smm.finalize()
        assert smm.peak_memory_points <= theoretical_memory_points(
            "remote-edge", 4, 8
        )

    def test_rejects_processing_after_finalize(self, rng):
        smm = SMM(k=1, k_prime=1)
        smm.process(np.asarray([0.0]))
        smm.finalize()
        with pytest.raises(NotFittedError):
            smm.process(np.asarray([1.0]))

    def test_finalize_before_any_point(self):
        with pytest.raises(NotFittedError):
            SMM(k=1, k_prime=1).finalize()

    def test_k_prime_lt_k_rejected(self):
        with pytest.raises(ValueError):
            SMM(k=5, k_prime=4)

    def test_duplicates_do_not_wedge_doubling(self):
        """Exact duplicates in the prefix must not freeze the threshold at 0."""
        smm = SMM(k=2, k_prime=3)
        data = np.asarray([[0.0], [0.0], [0.0], [1.0], [2.0], [5.0], [9.0]])
        smm.process_batch(data)
        coreset = smm.finalize()
        assert len(coreset) >= 2
        assert smm.threshold > 0.0

    def test_duplicate_evading_distance_kernel_is_still_absorbed(self):
        """The Gram-expansion kernel can report a tiny *nonzero* distance
        for bitwise-identical rows (while the pairwise matrix reports
        exactly 0); such a duplicate must still be absorbed at init or the
        threshold wedges at 0 and the doubling loop never terminates."""
        from repro.metricspace.distance import EuclideanMetric

        class EvasiveMetric(EuclideanMetric):
            name = "evasive-euclidean"

            def point_to_set(self, point, points):
                dist = super().point_to_set(point, points)
                return np.where(dist == 0.0, 2.6e-9, dist)

        rng = np.random.default_rng(7)
        data = rng.normal(scale=0.1, size=(60, 2))
        data[5] = data[2]  # exact duplicate inside the init prefix
        sequential = SMM(k=4, k_prime=9, metric=EvasiveMetric())
        batched = SMM(k=4, k_prime=9, metric=EvasiveMetric())
        for row in data:
            sequential.process(row)
        batched.process_batch(data)
        assert sequential.threshold > 0.0
        assert np.array_equal(batched.centers(), sequential.centers())

    def test_duplicate_in_gaussian_prefix_terminates(self):
        """Seeded replay of a fuzz case where BLAS shape-dependence let an
        exact duplicate evade the zero-distance init check and freeze the
        doubling schedule (infinite loop before the wedge guard)."""
        rng = np.random.default_rng(0)
        for _ in range(8):
            data = rng.normal(scale=0.1, size=(149, 2))
        data[5] = data[2]
        smm = SMM(k=4, k_prime=9)
        smm.process_batch(data)
        assert smm.threshold > 0.0
        assert len(smm.finalize()) >= 4


class TestSMMInvariants:
    def test_separation_invariant(self, rng):
        """After every point, centers are pairwise > d_i apart (invariant 2)."""
        data = _planted_stream(rng, n=300)
        smm = SMM(k=4, k_prime=6)
        for row in data:
            smm.process(row)
            if smm.threshold > 0 and smm.num_centers >= 2:
                centers = smm.centers()
                pair = smm.metric.pairwise(centers)
                iu, ju = np.triu_indices(len(centers), k=1)
                assert float(pair[iu, ju].min()) >= smm.threshold - 1e-9

    def test_coverage_radius(self, rng):
        """Every stream point ends within 4*d_ell of the final centers
        (the r_T <= 4 d_ell bound used by Lemma 3)."""
        data = _planted_stream(rng, n=300)
        smm = SMM(k=4, k_prime=6)
        smm.process_batch(data)
        centers = smm.centers()
        cross = smm.metric.cross(data, centers)
        assert float(cross.min(axis=1).max()) <= 4.0 * smm.threshold + 1e-9

    def test_phase_counter_advances(self, rng):
        data = _planted_stream(rng, n=500, spread=50.0)
        smm = SMM(k=4, k_prime=6)
        smm.process_batch(data)
        assert smm.phases >= 1
        assert smm.points_seen == 500


class TestSMMQuality:
    def test_recovers_planted_diversity(self, rng):
        """On the planted instance the core-set must contain points near
        all four corners, so remote-edge on the core-set is near-optimal."""
        data = _planted_stream(rng, n=500, k=4, spread=10.0)
        pts = PointSet(data)
        smm = SMM(k=4, k_prime=16)
        smm.process_batch(data)
        coreset = smm.finalize()
        _, achieved = solve_sequential(coreset, 4, "remote-edge")
        # Corners are 20 or 20*sqrt(2) apart; optimal min distance is 20.
        assert achieved >= 0.5 * 20.0

    def test_larger_k_prime_no_worse_on_average(self, rng):
        data = _planted_stream(rng, n=400)
        values = []
        for k_prime in (4, 32):
            smm = SMM(k=4, k_prime=k_prime)
            smm.process_batch(data)
            _, achieved = solve_sequential(smm.finalize(), 4, "remote-edge")
            values.append(achieved)
        assert values[1] >= values[0] - 1e-9


class TestSMMExt:
    def test_output_grouped_by_delegates(self, rng):
        data = _planted_stream(rng, n=300)
        sketch = SMMExt(k=3, k_prime=6)
        sketch.process_batch(data)
        coreset = sketch.finalize()
        assert len(coreset) >= 3
        assert all(1 <= size <= 3 for size in sketch.delegate_sizes())

    def test_memory_bound(self, rng):
        data = _planted_stream(rng, n=400)
        sketch = SMMExt(k=3, k_prime=6)
        sketch.process_batch(data)
        sketch.finalize()
        assert sketch.peak_memory_points <= theoretical_memory_points(
            "remote-clique", 3, 6
        )

    def test_delegates_enable_near_optimal_clique(self, rng):
        """Planted instance where the best clique pair sits in ONE tight
        far cluster: plain SMM would keep one point of it, SMM-EXT keeps
        delegates so both can be recovered."""
        bulk = rng.normal(scale=0.1, size=(200, 2))
        far_cluster = np.asarray([[50.0, 0.0], [50.0, 0.6]])
        data = np.vstack([bulk, far_cluster])[rng.permutation(202)]
        sketch = SMMExt(k=2, k_prime=8)
        sketch.process_batch(data)
        coreset = sketch.finalize()
        dist = coreset.pairwise()
        # Both far points (0.6 apart, 50 away from bulk) should survive as
        # center + delegate; the best 2-subset includes at least one.
        assert float(dist.max()) >= 49.0

    def test_ext_memory_greater_than_plain(self, rng):
        data = _planted_stream(rng, n=400)
        plain = SMM(k=8, k_prime=16)
        ext = SMMExt(k=8, k_prime=16)
        plain.process_batch(data)
        ext.process_batch(data)
        assert ext.peak_memory_points >= plain.peak_memory_points


class TestSMMGen:
    def test_counts_match_ext_sizes_in_total(self, rng):
        data = _planted_stream(rng, n=300)
        gen = SMMGen(k=3, k_prime=6)
        ext = SMMExt(k=3, k_prime=6)
        gen.process_batch(data)
        ext.process_batch(data)
        core = gen.finalize_generalized()
        # Same schedule, same absorb decisions: identical total payloads.
        assert core.expanded_size == sum(ext.delegate_sizes())

    def test_generalized_output_shape(self, rng):
        data = _planted_stream(rng, n=300)
        gen = SMMGen(k=3, k_prime=6)
        gen.process_batch(data)
        core = gen.finalize_generalized()
        assert core.size == gen.num_centers
        assert np.all(core.multiplicities >= 1)
        assert np.all(core.multiplicities <= 3)

    def test_memory_matches_plain_smm_bound(self, rng):
        data = _planted_stream(rng, n=400)
        gen = SMMGen(k=6, k_prime=12)
        gen.process_batch(data)
        gen.finalize_generalized()
        assert gen.peak_memory_points <= theoretical_memory_points(
            "remote-clique", 6, 12, generalized=True
        )

    def test_radius_bound_covers_stream(self, rng):
        data = _planted_stream(rng, n=300)
        gen = SMMGen(k=3, k_prime=6)
        gen.process_batch(data)
        core = gen.finalize_generalized()
        cross = core.metric.cross(data, core.points)
        assert float(cross.min(axis=1).max()) <= gen.radius_bound() + 1e-9

    def test_finalize_plain_is_blocked(self):
        gen = SMMGen(k=1, k_prime=1)
        with pytest.raises(NotImplementedError):
            gen.finalize()
