"""Tests for the TSP evaluators (Held-Karp exact and MST-doubling heuristic)."""

from __future__ import annotations

from itertools import permutations

import numpy as np
import pytest

from repro.graph.mst import mst_weight
from repro.graph.tsp import (
    held_karp_tsp,
    mst_doubling_tour,
    tour_weight,
    tsp_weight,
    two_opt_improve,
)


def _brute_force_tsp(dist: np.ndarray) -> float:
    n = dist.shape[0]
    best = np.inf
    for perm in permutations(range(1, n)):
        tour = [0, *perm]
        best = min(best, tour_weight(dist, tour))
    return float(best)


def _random_metric(rng, n):
    pts = rng.random((n, 2))
    return np.linalg.norm(pts[:, None] - pts[None, :], axis=2)


class TestTourWeight:
    def test_trivial_sizes(self):
        dist = np.asarray([[0.0, 2.0], [2.0, 0.0]])
        assert tour_weight(dist, [0]) == 0.0
        assert tour_weight(dist, [0, 1]) == pytest.approx(4.0)  # out and back

    def test_square_cycle(self):
        pts = np.asarray([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        assert tour_weight(dist, [0, 1, 2, 3]) == pytest.approx(4.0)


class TestHeldKarp:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_matches_brute_force(self, n, rng):
        dist = _random_metric(rng, n)
        weight, tour = held_karp_tsp(dist)
        assert weight == pytest.approx(_brute_force_tsp(dist), rel=1e-9)
        assert sorted(tour) == list(range(n))
        assert tour_weight(dist, tour) == pytest.approx(weight, rel=1e-9)

    def test_single_point(self):
        weight, tour = held_karp_tsp(np.zeros((1, 1)))
        assert weight == 0.0 and tour == [0]


class TestHeuristicTour:
    def test_visits_every_point_once(self, rng):
        dist = _random_metric(rng, 20)
        tour = mst_doubling_tour(dist)
        assert sorted(tour) == list(range(20))

    def test_two_approximation_bound(self, rng):
        """MST-doubling tour weight is at most twice the MST weight... and
        the optimum is at least the MST weight, giving the classical 2x."""
        dist = _random_metric(rng, 15)
        tour = mst_doubling_tour(dist)
        assert tour_weight(dist, tour) <= 2.0 * mst_weight(dist) + 1e-9

    def test_two_opt_never_worse(self, rng):
        dist = _random_metric(rng, 15)
        tour = mst_doubling_tour(dist)
        improved = two_opt_improve(dist, tour)
        assert tour_weight(dist, improved) <= tour_weight(dist, tour) + 1e-9
        assert sorted(improved) == list(range(15))

    def test_two_opt_small_tours_unchanged(self):
        dist = np.ones((3, 3)) - np.eye(3)
        assert two_opt_improve(dist, [0, 1, 2]) == [0, 1, 2]


class TestTspWeight:
    def test_exact_for_small(self, rng):
        dist = _random_metric(rng, 8)
        assert tsp_weight(dist) == pytest.approx(_brute_force_tsp(dist), rel=1e-9)

    def test_heuristic_upper_bounds_optimum(self, rng):
        dist = _random_metric(rng, 11)
        exact = tsp_weight(dist, exact_limit=13)
        heuristic = tsp_weight(dist, exact_limit=4)
        assert heuristic >= exact - 1e-9
        assert heuristic <= 2.0 * exact + 1e-9

    def test_triangle(self):
        pts = np.asarray([[0, 0], [1, 0], [0, 1]], dtype=float)
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        assert tsp_weight(dist) == pytest.approx(2.0 + np.sqrt(2.0))
