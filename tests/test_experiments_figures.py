"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.figures import GLYPHS, render_chart


class TestRenderChart:
    def test_single_series(self):
        chart = render_chart({"ratio": ([1, 2, 4, 8], [2.0, 1.5, 1.2, 1.1])},
                             width=20, height=6)
        assert "o" in chart
        assert "o = ratio" in chart
        assert "2" in chart and "1.1" in chart

    def test_multiple_series_get_distinct_glyphs(self):
        chart = render_chart({
            "a": ([0, 1], [0.0, 1.0]),
            "b": ([0, 1], [1.0, 0.0]),
        }, width=12, height=5)
        assert "o = a" in chart and "x = b" in chart

    def test_title_and_labels(self):
        chart = render_chart({"s": ([0, 1], [0, 1])}, width=10, height=4,
                             title="Figure 9", x_label="k", y_label="r")
        lines = chart.splitlines()
        assert lines[0] == "Figure 9"
        assert any(line.rstrip().endswith("k") for line in lines)

    def test_constant_series_does_not_crash(self):
        chart = render_chart({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])},
                             width=10, height=4)
        assert "flat" in chart

    def test_monotone_series_renders_monotone(self):
        """The glyph for a decreasing series appears in non-increasing rows
        as x advances — the visual property we rely on."""
        xs = [0, 1, 2, 3]
        ys = [3.0, 2.0, 1.0, 0.0]
        chart = render_chart({"d": (xs, ys)}, width=16, height=8)
        rows_by_column = {}
        grid_lines = [line.split("|", 1)[1] for line in chart.splitlines()
                      if "|" in line]
        for row, line in enumerate(grid_lines):
            for column, char in enumerate(line):
                if char == "o":
                    rows_by_column[column] = row
        columns = sorted(rows_by_column)
        rows = [rows_by_column[c] for c in columns]
        assert rows == sorted(rows)  # top row index grows as x advances

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            render_chart({"s": ([0], [0])}, width=2, height=2)

    def test_glyph_cycle(self):
        series = {f"s{i}": ([0, 1], [i, i + 1]) for i in range(10)}
        chart = render_chart(series, width=12, height=6)
        # 10 series cycle through the 8 glyphs without crashing.
        assert f"{GLYPHS[0]} = s0" in chart
        assert f"{GLYPHS[1]} = s9".replace(GLYPHS[1], GLYPHS[9 % len(GLYPHS)]) in chart
