"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dataset(tmp_path):
    path = tmp_path / "data"
    code = main(["generate", "sphere-shell", "--n", "400", "--k", "4",
                 "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_generate_defaults(self):
        args = build_parser().parse_args(
            ["generate", "cube", "--out", "/tmp/x"])
        assert args.n == 10_000
        assert args.dim == 3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quantum", "--data", "x",
                                       "--k", "4"])


class TestGenerate:
    @pytest.mark.parametrize("generator", ["sphere-shell", "cube", "clusters"])
    def test_generators(self, tmp_path, generator, capsys):
        out = tmp_path / generator
        assert main(["generate", generator, "--n", "200",
                     "--out", str(out)]) == 0
        assert out.with_suffix(".npy").exists()
        assert "200 points" in capsys.readouterr().out

    def test_bag_of_words(self, tmp_path, capsys):
        out = tmp_path / "docs"
        assert main(["generate", "bag-of-words", "--n", "30",
                     "--out", str(out)]) == 0
        assert "cosine" in capsys.readouterr().out


class TestRun:
    @pytest.mark.parametrize("algorithm", ["streaming", "mapreduce", "immm"])
    def test_algorithms(self, dataset, algorithm, capsys):
        assert main(["run", algorithm, "--data", str(dataset),
                     "--k", "4", "--parallelism", "2"]) == 0
        out = capsys.readouterr().out
        assert "value =" in out

    def test_two_pass_and_three_round(self, dataset, capsys):
        for algorithm in ("streaming-2pass", "mapreduce-3round"):
            assert main(["run", algorithm, "--data", str(dataset),
                         "--k", "4", "--objective", "remote-clique",
                         "--parallelism", "2"]) == 0
        assert "value =" in capsys.readouterr().out

    def test_afz(self, dataset, capsys):
        assert main(["run", "afz", "--data", str(dataset), "--k", "4",
                     "--objective", "remote-clique",
                     "--parallelism", "2"]) == 0
        assert "core-set" in capsys.readouterr().out

    def test_with_ratio(self, dataset, capsys):
        assert main(["run", "mapreduce", "--data", str(dataset),
                     "--k", "4", "--with-ratio"]) == 0
        assert "ratio vs best-found reference" in capsys.readouterr().out

    def test_default_k_prime_is_4k(self, dataset, capsys):
        main(["run", "streaming", "--data", str(dataset), "--k", "4"])
        assert "k'=16" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm,objective",
                             [("streaming", "remote-edge"),
                              ("streaming-2pass", "remote-clique")])
    def test_batch_size_flag(self, dataset, algorithm, objective, capsys):
        assert main(["run", algorithm, "--data", str(dataset), "--k", "4",
                     "--objective", objective, "--batch-size", "128"]) == 0
        assert "value =" in capsys.readouterr().out

    def test_process_executor_flag(self, dataset, capsys):
        assert main(["run", "mapreduce", "--data", str(dataset),
                     "--k", "4", "--parallelism", "2",
                     "--executor", "process"]) == 0
        assert "process" in capsys.readouterr().out

    def test_kernel_budget_flag(self, dataset, capsys):
        from repro.metricspace.blocked import (
            get_default_memory_budget,
            set_default_memory_budget,
        )

        before = get_default_memory_budget()
        try:
            assert main(["run", "mapreduce", "--data", str(dataset),
                         "--k", "4", "--kernel-budget-mb", "8"]) == 0
            assert get_default_memory_budget() == 8 * 2**20
        finally:
            set_default_memory_budget(before)
        assert "value =" in capsys.readouterr().out


class TestAutoBatchSize:
    def test_run_streaming_auto_tunes_when_flag_omitted(
            self, dataset, tmp_path, monkeypatch, capsys):
        import json

        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_fig3_batched_speedup.json").write_text(
            json.dumps({"batch_size": 256, "speedup": 9.0}))
        monkeypatch.setenv("REPRO_BENCH_RESULTS_DIR", str(results))
        assert main(["run", "streaming", "--data", str(dataset),
                     "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "batch size 256 (auto-tuned" in out
        assert "value =" in out

    def test_explicit_flag_suppresses_auto_tuning(self, dataset, capsys):
        assert main(["run", "streaming", "--data", str(dataset), "--k", "4",
                     "--batch-size", "64"]) == 0
        assert "auto-tuned" not in capsys.readouterr().out

    def test_no_trajectory_reports_default_not_auto_tuned(
            self, dataset, tmp_path, monkeypatch, capsys):
        empty = tmp_path / "results"
        empty.mkdir()
        monkeypatch.setenv("REPRO_BENCH_RESULTS_DIR", str(empty))
        assert main(["run", "streaming", "--data", str(dataset),
                     "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "batch size 1024 (default" in out
        assert "auto-tuned" not in out


class TestServiceVerbs:
    def test_index_then_query_roundtrip(self, dataset, tmp_path, capsys):
        idx = tmp_path / "idx"
        assert main(["index", "--data", str(dataset), "--k-max", "8",
                     "--k-min", "4", "--out", str(idx)]) == 0
        out = capsys.readouterr().out
        assert "rung gmm" in out and "rung gmm-ext" in out
        assert idx.with_suffix(".npz").exists()
        assert idx.with_suffix(".json").exists()

        assert main(["query", "--index", str(idx),
                     "--objective", "remote-clique", "--k", "4",
                     "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        assert "value =" in out
        assert "cache hit" in out
        assert "builds during queries: 0" in out

    def test_index_single_family(self, dataset, tmp_path, capsys):
        idx = tmp_path / "idx_gmm"
        assert main(["index", "--data", str(dataset), "--k-max", "4",
                     "--families", "gmm", "--out", str(idx)]) == 0
        out = capsys.readouterr().out
        assert "rung gmm" in out
        assert "gmm-ext" not in out

    def test_serve_bench(self, dataset, capsys):
        assert main(["serve-bench", "--data", str(dataset), "--k-max", "4",
                     "--queries", "6", "--rebuild-queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "rebuild-per-query" in out
        assert "warm service" in out
        assert "LRU-cached replay" in out
        assert "core-set builds during queries: 0" in out
        assert "worker" not in out  # --threads off by default

    def test_serve_bench_threads(self, dataset, capsys):
        assert main(["serve-bench", "--data", str(dataset), "--k-max", "4",
                     "--queries", "6", "--rebuild-queries", "2",
                     "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "serial query_batch" in out
        assert "2 thread workers" in out
        assert "rung matrices computed" in out
        assert "executor: thread" in out

    def test_serve_bench_process_executor(self, dataset, capsys):
        # The acceptance-criterion path: the query sweep runs on worker
        # processes over the shared-memory plane (the harness itself
        # asserts bit-identity to serial query_batch and zero builds).
        assert main(["serve-bench", "--data", str(dataset), "--k-max", "4",
                     "--queries", "6", "--rebuild-queries", "1",
                     "--threads", "1", "--executor", "process"]) == 0
        out = capsys.readouterr().out
        assert "index build" in out and "[process]" in out
        assert "1 process worker" in out
        assert "executor: process" in out

    def test_query_matrix_budget(self, dataset, tmp_path, capsys):
        idx = tmp_path / "idx"
        assert main(["index", "--data", str(dataset), "--k-max", "4",
                     "--out", str(idx)]) == 0
        out = capsys.readouterr().out
        assert "suggested REPRO_MATRIX_BUDGET_MB=" in out
        assert main(["query", "--index", str(idx),
                     "--objective", "remote-edge", "--k", "4",
                     "--matrix-budget-mb", "1"]) == 0
        out = capsys.readouterr().out
        assert "value =" in out
        assert "MiB budget" in out

    def test_refresh_in_place(self, dataset, tmp_path, capsys):
        idx = tmp_path / "idx"
        more = tmp_path / "more"
        assert main(["generate", "sphere-shell", "--n", "250", "--k", "4",
                     "--seed", "9", "--out", str(more)]) == 0
        assert main(["index", "--data", str(dataset), "--k-max", "8",
                     "--k-min", "4", "--out", str(idx)]) == 0
        capsys.readouterr()
        assert main(["refresh", "--index", str(idx),
                     "--data", str(more)]) == 0
        out = capsys.readouterr().out
        assert "400 -> 650 points" in out
        assert "no MapReduce rebuild" in out
        assert "refresh #1" in out
        # The refreshed index still answers queries.
        assert main(["query", "--index", str(idx),
                     "--objective", "remote-clique", "--k", "4"]) == 0
        assert "value =" in capsys.readouterr().out

    def test_refresh_to_new_path(self, dataset, tmp_path, capsys):
        idx = tmp_path / "idx"
        out_path = tmp_path / "idx_v2"
        more = tmp_path / "more"
        assert main(["generate", "sphere-shell", "--n", "150", "--k", "4",
                     "--seed", "3", "--out", str(more)]) == 0
        assert main(["index", "--data", str(dataset), "--k-max", "4",
                     "--out", str(idx)]) == 0
        capsys.readouterr()
        assert main(["refresh", "--index", str(idx), "--data", str(more),
                     "--out", str(out_path), "--batch-size", "64"]) == 0
        assert out_path.with_suffix(".npz").exists()
        # The original index files are untouched by --out.
        import json

        original = json.loads(idx.with_suffix(".json").read_text())
        assert "refreshes" not in original.get("extra", {})


class TestPlannerVerbs:
    """``repro calibrate`` / ``repro plan`` / ``repro query --plan auto``."""

    @pytest.fixture
    def index_path(self, dataset, tmp_path):
        idx = tmp_path / "svc"
        assert main(["index", "--data", str(dataset), "--k-max", "8",
                     "--out", str(idx)]) == 0
        return idx

    def test_calibrate_writes_profile_v3(self, tmp_path, capsys):
        import json

        profile = tmp_path / "profile.json"
        assert main(["calibrate", "--sizes", "48,64", "--executors",
                     "serial", "--repeats", "1",
                     "--profile", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "profile format v3" in out
        assert "ns/cell" in out and "dispatch" in out
        payload = json.loads(profile.read_text())
        assert payload["format_version"] == 3
        assert payload["planner_calibration"]["calibrated"] is True

    def test_calibrate_rejects_unknown_executor(self, capsys):
        assert main(["calibrate", "--executors", "gpu"]) == 2
        assert "unknown executor" in capsys.readouterr().err

    def test_plan_explains_the_choice(self, index_path, capsys):
        assert main(["plan", "--index", str(index_path), "--k", "6",
                     "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "routed rung" in out
        assert "plan: executor" in out
        assert "->" in out  # the winning candidate is marked

    def test_query_plan_auto_reports_planner(self, index_path, capsys):
        assert main(["query", "--index", str(index_path),
                     "--objective", "remote-edge", "--k", "4",
                     "--plan", "auto", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "value =" in out
        assert "planner: 2 planned batches" in out

    def test_query_plan_defaults_to_static(self, index_path, capsys):
        assert main(["query", "--index", str(index_path),
                     "--objective", "remote-edge", "--k", "4"]) == 0
        assert "planner:" not in capsys.readouterr().out


class TestRegistryTune:
    """``repro registry tune``: the adaptive-QoS loop, closed offline."""

    @pytest.fixture
    def registry_dir(self, dataset, tmp_path):
        regdir = tmp_path / "reg"
        for name in ("us", "eu"):
            assert main(["registry", "add", "--dir", str(regdir),
                         "--id", name, "--data", str(dataset),
                         "--k-max", "4"]) == 0
        return regdir

    @staticmethod
    def _snapshot(tmp_path, per_tenant):
        import json

        path = tmp_path / "stats.json"
        path.write_text(json.dumps(
            {"server": {"qos": {"per_tenant": per_tenant}}}))
        return path

    def test_tune_rewrites_manifest_weights(self, registry_dir, tmp_path,
                                            capsys):
        import json

        stats = self._snapshot(tmp_path, {"us": {"dispatched": 400},
                                          "eu": {"dispatched": 100}})
        assert main(["registry", "tune", "--dir", str(registry_dir),
                     "--stats-json", str(stats)]) == 0
        out = capsys.readouterr().out
        assert "restart the daemon to apply" in out
        manifest = json.loads(
            (registry_dir / "registry.json").read_text())
        weights = {entry["dataset_id"]: entry.get("qos", {}).get(
            "weight", 1.0) for entry in manifest["tenants"]}
        assert weights["us"] == 4.0  # busiest tenant gets --max-weight
        assert weights["eu"] == 1.0

    def test_tune_preserves_other_quota_knobs(self, dataset, tmp_path,
                                              capsys):
        import json

        regdir = tmp_path / "reg2"
        assert main(["registry", "add", "--dir", str(regdir), "--id", "us",
                     "--data", str(dataset), "--k-max", "4",
                     "--max-queue", "7", "--rate-limit", "3.5"]) == 0
        stats = self._snapshot(tmp_path, {"us": {"dispatched": 10}})
        assert main(["registry", "tune", "--dir", str(regdir),
                     "--stats-json", str(stats)]) == 0
        (entry,) = json.loads(
            (regdir / "registry.json").read_text())["tenants"]
        assert entry["qos"]["max_queue"] == 7
        assert entry["qos"]["rate_limit_qps"] == 3.5

    def test_tune_needs_exactly_one_source(self, registry_dir, tmp_path,
                                           capsys):
        assert main(["registry", "tune", "--dir", str(registry_dir)]) == 2
        stats = self._snapshot(tmp_path, {"us": {"dispatched": 1}})
        assert main(["registry", "tune", "--dir", str(registry_dir),
                     "--stats-json", str(stats), "--port", "9"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_tune_rejects_snapshot_without_qos(self, registry_dir,
                                               tmp_path, capsys):
        stats = tmp_path / "stats.json"
        stats.write_text("{}")
        assert main(["registry", "tune", "--dir", str(registry_dir),
                     "--stats-json", str(stats)]) == 2
        assert "no per-tenant QoS stats" in capsys.readouterr().err


class TestEstimate:
    def test_reports_dimension_and_sizes(self, dataset, capsys):
        assert main(["estimate", "--data", str(dataset), "--k", "4",
                     "--epsilon", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "doubling dimension" in out
        assert "mapreduce" in out and "streaming" in out
