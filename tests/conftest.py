"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metricspace.points import PointSet


@pytest.fixture(autouse=True)
def _isolated_tile_profile(tmp_path, monkeypatch):
    """Point the per-machine kernel-tile profile at a throwaway location.

    ``recommend_tile_rows`` persists measured tilings to
    ``.repro_profile.json`` by default; tests must neither read a
    developer's real profile nor litter the working tree with one.
    """
    monkeypatch.setenv("REPRO_PROFILE_PATH", str(tmp_path / "profile.json"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_points(rng) -> PointSet:
    """12 well-spread 2-d points — small enough for exact solvers."""
    return PointSet(rng.normal(size=(12, 2)), metric="euclidean")


@pytest.fixture
def medium_points(rng) -> PointSet:
    """300 3-d points: bulk cluster + a few distant outliers."""
    bulk = rng.normal(scale=0.2, size=(290, 3))
    outliers = 5.0 * rng.normal(size=(10, 3))
    data = np.vstack([bulk, outliers])
    return PointSet(data[rng.permutation(len(data))], metric="euclidean")


@pytest.fixture
def line_points() -> PointSet:
    """Deterministic collinear points with known diversity structure."""
    return PointSet(np.asarray([[0.0], [1.0], [2.0], [4.0], [8.0], [16.0]]),
                    metric="euclidean")
