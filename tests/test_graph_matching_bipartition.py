"""Tests for greedy matching and balanced bipartition."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.bipartition import (
    bipartition_cut_weight,
    exact_min_balanced_bipartition,
    local_search_balanced_bipartition,
    min_balanced_bipartition,
)
from repro.graph.matching import greedy_max_matching


def _random_metric(rng, n):
    pts = rng.random((n, 2))
    return np.linalg.norm(pts[:, None] - pts[None, :], axis=2)


class TestGreedyMatching:
    def test_empty(self, rng):
        assert greedy_max_matching(_random_metric(rng, 4), 0) == []

    def test_pairs_are_disjoint(self, rng):
        dist = _random_metric(rng, 12)
        pairs = greedy_max_matching(dist, 5)
        flat = [i for pair in pairs for i in pair]
        assert len(flat) == len(set(flat)) == 10

    def test_first_pair_is_farthest(self, rng):
        dist = _random_metric(rng, 10)
        pairs = greedy_max_matching(dist, 1)
        a, b = pairs[0]
        assert dist[a, b] == pytest.approx(dist.max())

    def test_greedy_order_decreasing(self, rng):
        dist = _random_metric(rng, 12)
        pairs = greedy_max_matching(dist, 6)
        weights = [dist[a, b] for a, b in pairs]
        assert all(weights[i] >= weights[i + 1] - 1e-12 for i in range(len(weights) - 1))

    def test_too_many_pairs_rejected(self, rng):
        with pytest.raises(ValidationError):
            greedy_max_matching(_random_metric(rng, 5), 3)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            greedy_max_matching(np.zeros((2, 3)), 1)


class TestBipartition:
    def test_cut_weight_known(self):
        # Two clusters at distance ~10: the min balanced cut splits within.
        pts = np.asarray([[0.0], [0.1], [10.0], [10.1]])
        dist = np.abs(pts - pts.T)
        side = np.asarray([True, True, False, False])
        assert bipartition_cut_weight(dist, side) == pytest.approx(
            10.0 + 10.1 + 9.9 + 10.0
        )

    def test_exact_prefers_cluster_split(self):
        pts = np.asarray([[0.0], [0.1], [10.0], [10.1]])
        dist = np.abs(pts - pts.T)
        weight, side = exact_min_balanced_bipartition(dist)
        # The cheapest *balanced* cut must put one point of each cluster on
        # each side? No: balanced means |Q| = 2; separating the clusters
        # costs ~40, mixing costs ~20.1; exact should pick the mixed split.
        assert side.sum() == 2
        brute = min(
            bipartition_cut_weight(dist, _mask(4, subset))
            for subset in combinations(range(4), 2)
        )
        assert weight == pytest.approx(brute)

    @pytest.mark.parametrize("n", [4, 6, 7, 9])
    def test_exact_matches_enumeration(self, n, rng):
        dist = _random_metric(rng, n)
        weight, side = exact_min_balanced_bipartition(dist)
        half = n // 2
        brute = min(
            bipartition_cut_weight(dist, _mask(n, subset))
            for subset in combinations(range(n), half)
        )
        assert weight == pytest.approx(brute)
        assert side.sum() == half

    def test_local_search_upper_bounds_exact(self, rng):
        dist = _random_metric(rng, 10)
        exact, _ = exact_min_balanced_bipartition(dist)
        heuristic, side = local_search_balanced_bipartition(dist, seed=0)
        assert heuristic >= exact - 1e-9
        assert side.sum() == 5

    def test_local_search_usually_finds_exact_small(self, rng):
        hits = 0
        for trial in range(5):
            dist = _random_metric(np.random.default_rng(trial), 8)
            exact, _ = exact_min_balanced_bipartition(dist)
            heuristic, _ = local_search_balanced_bipartition(dist, seed=trial)
            if heuristic <= exact * 1.05 + 1e-9:
                hits += 1
        assert hits >= 4

    def test_dispatch_small_vs_large(self, rng):
        dist = _random_metric(rng, 6)
        assert min_balanced_bipartition(dist)[0] == pytest.approx(
            exact_min_balanced_bipartition(dist)[0]
        )
        big = _random_metric(rng, 20)
        weight, side = min_balanced_bipartition(big)
        assert side.sum() == 10

    def test_single_point(self):
        weight, side = min_balanced_bipartition(np.zeros((1, 1)))
        assert weight == 0.0


def _mask(n: int, subset) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[list(subset)] = True
    return mask
