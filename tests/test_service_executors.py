"""Tests for the pluggable executor layer and the shared-memory data plane.

Covers the process-parallel acceptance criteria of the executor PR:

* cross-executor determinism — serial vs thread vs process answers are
  bit-identical over all six objectives for the same seeds;
* zero builds and exactly-once matrix fills **across processes** (the
  cross-process single-flight over flagged shared segments);
* leak-free lifecycle — ``/dev/shm`` holds zero extra segments after
  ``DiversityService.close()``, including across an epoch'd refresh;
* resource-tracker accounting — a subprocess-run service produces no
  tracker warnings (spawn workers must not double-register segments);
* the ``repro.shm`` primitives and the ``SharedMatrixCache`` budget /
  pinning / oversize semantics;
* epsilon-aware result reuse (``eps_hits``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import threading

import numpy as np
import pytest

from repro import shm
from repro.datasets.synthetic import sphere_shell
from repro.diversity.objectives import get_objective, list_objectives
from repro.diversity.sequential.registry import solve_on_matrix
from repro.exceptions import ValidationError
from repro.service import (
    DiversityService,
    Query,
    SharedMatrixCache,
    build_coreset_index,
    make_workload,
)


def _shm_segments() -> set[str]:
    """Names of the POSIX shared-memory segments currently linked."""
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


@pytest.fixture(scope="module")
def dataset():
    return sphere_shell(1600, 8, dim=3, seed=7)


@pytest.fixture(scope="module")
def index(dataset):
    return build_coreset_index(dataset, k_max=8, k_min=4, parallelism=4,
                               seed=0)


@pytest.fixture(scope="module")
def process_service(index):
    """One shared process-backend service (2 spawn workers) per module."""
    service = DiversityService(index, executor="process", executor_workers=2)
    yield service
    service.close()


# -- repro.shm primitives -----------------------------------------------------

class TestSharedNDArray:
    def test_publish_resolve_roundtrip_and_unlink(self):
        data = np.arange(12.0).reshape(3, 4)
        owner = shm.SharedNDArray.publish(data)
        assert np.array_equal(owner.ref.resolve(), data)
        assert owner.nbytes == data.nbytes
        name = owner.ref.name
        assert name in _shm_segments()
        owner.close()
        owner.close()  # idempotent
        assert name not in _shm_segments()
        shm.close_attachments()

    def test_flagged_segment_fill_once(self):
        owner = shm.SharedNDArray((2, 2), np.float64, flagged=True)
        try:
            lock = threading.Lock()
            calls = []

            def compute():
                calls.append(1)
                return np.full((2, 2), 7.0)

            first, computed_first = shm.fill_once(owner.ref, lock, compute)
            again, computed_again = shm.fill_once(owner.ref, lock, compute)
            assert computed_first and not computed_again
            assert len(calls) == 1
            assert np.array_equal(first, np.full((2, 2), 7.0))
            assert np.array_equal(again, first)
        finally:
            owner.close()
            shm.close_attachments()

    def test_unflagged_ref_rejects_flag_access(self):
        owner = shm.SharedNDArray.publish(np.zeros((2, 2)))
        try:
            with pytest.raises(ValueError):
                owner.ref.resolve_flag()
        finally:
            owner.close()

    def test_attachment_cache_evicts_beyond_limit(self):
        owners = [shm.SharedNDArray.publish(np.zeros((4,))) for _ in range(3)]
        try:
            shm.set_attachment_cache_limit(2)
            for owner in owners:
                owner.ref.resolve()
            assert len(shm._ATTACHED) == 2
            # The oldest attachment was evicted; re-resolving re-attaches.
            assert owners[0].ref.resolve() is not None
        finally:
            shm.set_attachment_cache_limit(1)
            shm.close_attachments()
            for owner in owners:
                owner.close()

    def test_dead_attachments_pruned_on_new_attach(self):
        # A publisher-side unlink must not stay pinned by this process's
        # attachment cache once a new segment comes along (the real-RAM
        # half of the matrix budget in process mode).
        first = shm.SharedNDArray.publish(np.zeros((4,)))
        second = shm.SharedNDArray.publish(np.zeros((4,)))
        try:
            shm.set_attachment_cache_limit(8)
            first.ref.resolve()
            name = first.ref.name
            assert name in shm._ATTACHED
            first.close()  # unlinked while still cached here
            assert name in shm._ATTACHED  # ...and still mapped
            second.ref.resolve()  # a new attach prunes the dead mapping
            assert name not in shm._ATTACHED
        finally:
            shm.set_attachment_cache_limit(1)
            shm.close_attachments()
            first.close()
            second.close()

    def test_finalizer_backstop_unlinks(self):
        owner = shm.SharedNDArray.publish(np.zeros((8, 8)))
        name = owner.ref.name
        assert name in _shm_segments()
        del owner
        import gc

        gc.collect()
        assert name not in _shm_segments()


# -- shared matrix cache ------------------------------------------------------

def _segment_bytes(n: int) -> int:
    return n * n * 8 + shm.FLAG_BYTES


class TestSharedMatrixCache:
    def test_lease_hit_miss_and_close(self):
        cache = SharedMatrixCache(budget_bytes=0)
        first = cache.lease("rung", 8)
        again = cache.lease("rung", 8)
        assert again.ref.name == first.ref.name
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert len(cache) == 1
        name = first.ref.name
        cache.release(first)
        cache.release(again)
        assert name in _shm_segments()  # resident entries persist
        cache.close()
        assert name not in _shm_segments()
        with pytest.raises(RuntimeError):
            cache.lease("rung", 8)

    def test_eviction_unlinks_and_recompute_registers(self):
        budget = 2 * _segment_bytes(16) + _segment_bytes(8)
        cache = SharedMatrixCache(budget_bytes=budget)
        names = {}
        for key in ("a", "b", "c"):
            lease = cache.lease(key, 16)
            names[key] = lease.ref.name
            cache.note_computed(key)
            cache.release(lease)
        assert cache.stats.evictions == 1
        assert names["a"] not in _shm_segments()  # LRU victim unlinked
        assert names["b"] in _shm_segments()
        assert cache.nbytes <= budget
        # Re-leasing the evicted key allocates a fresh segment; its fill
        # registers as a recompute (the budget-pressure signal).
        release = cache.lease("a", 16)
        assert release.ref.name != names["a"]
        cache.note_computed("a")
        assert cache.stats.recomputes == 1
        cache.release(release)
        cache.close()

    def test_pinned_entries_survive_eviction_pressure(self):
        budget = _segment_bytes(16)  # room for one matrix
        cache = SharedMatrixCache(budget_bytes=budget)
        pinned = cache.lease("a", 16)
        other = cache.lease("b", 16)  # overflows, but "a" is pinned
        assert pinned.ref.name in _shm_segments()
        assert other.ref.name in _shm_segments()
        cache.release(other)
        # Releasing re-shrinks: the unpinned LRU entry goes first.
        assert cache.nbytes <= budget or len(cache) == 1
        assert pinned.ref.name in _shm_segments()
        cache.release(pinned)
        cache.close()
        assert pinned.ref.name not in _shm_segments()

    def test_oversize_never_resident(self):
        budget = _segment_bytes(4)
        cache = SharedMatrixCache(budget_bytes=budget)
        lease = cache.lease("big", 64)
        shared = cache.lease("big", 64)  # concurrent holder shares it
        assert shared.ref.name == lease.ref.name
        assert len(cache) == 0 and cache.nbytes == 0
        assert lease.ref.name in _shm_segments()
        cache.release(lease)
        assert lease.ref.name in _shm_segments()  # still pinned once
        cache.release(shared)
        assert lease.ref.name not in _shm_segments()  # last release unlinks
        cache.close()

    def test_successor_inherits_budget_and_stats(self):
        cache = SharedMatrixCache(budget_bytes=2 * _segment_bytes(8))
        lease = cache.lease("a", 8)
        cache.note_computed("a")
        cache.release(lease)
        fresh = cache.successor()
        assert fresh.budget_bytes == cache.budget_bytes
        assert fresh.stats.computes == 1
        assert len(fresh) == 0
        cache.close()
        fresh.close()


# -- cross-executor determinism ----------------------------------------------

class TestCrossExecutorDeterminism:
    def _workload(self):
        # Every objective at two k values, plus a mixed randomized tail
        # with in-batch repeats.
        explicit = [Query(name, k)
                    for name in list_objectives() for k in (3, 6)]
        return explicit + explicit[:4] + list(make_workload(8, 10, seed=11))

    def test_serial_thread_process_identical(self, index, process_service):
        workload = self._workload()
        serial = DiversityService(index).query_batch(workload)
        thread = DiversityService(index).query_concurrent(workload,
                                                          max_workers=4)
        process = process_service.query_batch(workload)
        for label, results in (("thread", thread), ("process", process)):
            assert len(results) == len(serial)
            for ours, reference in zip(results, serial):
                assert ours.value == reference.value, label
                assert ours.rung == reference.rung, label
                assert np.array_equal(ours.indices, reference.indices), label
                assert np.array_equal(ours.points, reference.points), label
        # query_batch parity extends to the cached flags, not just values.
        assert [r.cached for r in process] == [r.cached for r in serial]

    def test_process_zero_builds_and_exactly_once_matrices(self, index,
                                                           process_service):
        # Run the workload ourselves (don't rely on test order): repeats
        # of already-cached queries add hits but no computes, so the
        # exactly-once assertion holds standalone and after prior tests.
        process_service.query_batch(self._workload())
        stats = process_service.stats()
        assert stats["counters"]["build_calls"] == 0
        shared = stats["matrices"]["shared"]
        assert shared is not None
        distinct_rungs = len({index.route(q.objective, q.k).key
                              for q in self._workload()})
        assert shared["computes"] == distinct_rungs
        assert shared["recomputes"] == 0
        # Driver-side (serial/thread) matrices were never touched by the
        # process batches.
        assert stats["caches"]["results"]["hits"] + stats["caches"]["results"]["misses"] \
            == stats["counters"]["queries_answered"]

    def test_query_concurrent_process_executor(self, index, process_service):
        workload = make_workload(8, 12, seed=23)
        expected = DiversityService(index).query_batch(workload)
        results = process_service.query_concurrent(workload, max_workers=2,
                                                   executor="process")
        assert [(r.value, r.rung) for r in results] == \
            [(r.value, r.rung) for r in expected]

    def test_budgeted_process_service_identical(self, index):
        # A binding budget on the shared segments (small enough that the
        # largest rung matrix is oversize) forces evictions/recomputes
        # across batches; answers must not change.
        workload = self._workload()
        expected = DiversityService(index).query_batch(workload)
        with DiversityService(index, executor="process", executor_workers=2,
                              matrix_budget_mb=1) as service:
            first = service.query_batch(workload)
            service.cache.clear()  # force re-solves, not LRU replays
            second = service.query_batch(workload)
            for results in (first, second):
                for ours, reference in zip(results, expected):
                    assert ours.value == reference.value
                    assert np.array_equal(ours.indices, reference.indices)
            shared = service.stats()["matrices"]["shared"]
            assert shared["budget_bytes"] == 2**20
            assert shared["resident_bytes"] <= 2**20
            assert shared["recomputes"] > 0  # the budget really bound

    def test_rejects_unknown_executor(self, index):
        with pytest.raises(ValidationError):
            DiversityService(index, executor="mapreduce")
        with pytest.raises(ValidationError):
            DiversityService(index).query_batch([Query("remote-edge", 4)],
                                                executor="fork")

    def test_empty_batch_on_every_executor(self, index, process_service):
        assert DiversityService(index).query_batch([]) == []
        assert DiversityService(index,
                                executor="thread").query_batch([]) == []
        assert DiversityService(index).query_concurrent([]) == []
        assert process_service.query_batch([]) == []

    def test_mixed_eps_workload_identical_across_executors(self, index,
                                                           process_service):
        # A tight-eps and a loose-eps request for the same (objective, k)
        # in ONE batch: epsilon reuse resolves against the batch-start
        # cache only, so the loose query must solve its own rung in every
        # backend — never reuse the tight answer solved mid-batch, which
        # would make results depend on solve order and thread timing.
        workload = [Query("remote-clique", 4, 0.2),
                    Query("remote-clique", 4, 1.0),
                    Query("remote-edge", 4, 0.2),
                    Query("remote-edge", 4, 1.0)]
        serial = DiversityService(index).query_batch(workload)
        assert serial[0].rung != serial[1].rung  # distinct rungs solved
        for executor in ("thread", "process"):
            service = (process_service if executor == "process"
                       else DiversityService(index))
            results = service.query_concurrent(workload, max_workers=2,
                                               executor=executor)
            for ours, reference in zip(results, serial):
                assert ours.rung == reference.rung, executor
                assert ours.value == reference.value, executor
            if executor == "thread":
                assert service.stats()["counters"]["eps_hits"] == 0


# -- lifecycle: leaks, refresh epochs, tracker accounting ---------------------

class TestProcessLifecycle:
    def test_no_leaked_segments_after_close(self, index):
        # Assert on the service's own segment names rather than a raw
        # /dev/shm diff, which races against unrelated shm users (e.g. a
        # second pytest or a benchmark running beside the suite).  The
        # raw before/after count check lives in the isolated subprocess
        # test below.
        with DiversityService(index, executor="process",
                              executor_workers=2) as service:
            service.query_batch([Query("remote-edge", 4),
                                 Query("remote-clique", 4)])
            names = set(service._executor_obj("process").segment_names())
            assert len(names) == 4  # 2 rung core-sets + 2 matrices
            assert names <= _shm_segments()
        assert names & _shm_segments() == set()

    def test_refresh_swaps_epoch_planes(self, index):
        service = DiversityService(index, executor="process",
                                   executor_workers=2)
        try:
            old = service.query_batch([Query("remote-edge", 4)])
            backend = service._executor_obj("process")
            old_segments = set(backend.segment_names())
            assert old_segments <= _shm_segments()
            fresh_points = sphere_shell(400, 8, dim=3, seed=41)
            service.refresh(fresh_points)
            # No process batch in flight: the superseded plane unlinks
            # on the refresh notification itself.
            assert old_segments & _shm_segments() == set()
            new = service.query_batch([Query("remote-edge", 4)])
            new_segments = set(backend.segment_names())
            # New-epoch segments are fresh, answers come from the
            # extended index (identical to a cold serial service on it).
            assert new_segments.isdisjoint(old_segments)
            assert new_segments <= _shm_segments()
            reference = DiversityService(service.index).query_batch(
                [Query("remote-edge", 4)])
            assert new[0].value == reference[0].value
            assert np.array_equal(new[0].indices, reference[0].indices)
            assert old[0].rung == new[0].rung
            # Lifetime stats carry across the epoch swap (successor
            # semantics): one matrix fill per epoch.
            assert service.stats()["matrices"]["shared"]["computes"] == 2
        finally:
            service.close()
        assert (old_segments | new_segments) & _shm_segments() == set()

    def test_inflight_batch_survives_refresh(self, dataset, index):
        # A batch that snapshotted the old epoch must complete correctly
        # even when a refresh lands while it runs.
        service = DiversityService(index, executor="process",
                                   executor_workers=2)
        try:
            workload = make_workload(8, 12, seed=5)
            expected = DiversityService(index).query_batch(workload)
            errors: list[Exception] = []
            results: list = []

            def run_batch():
                try:
                    results.extend(service.query_batch(workload))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            worker = threading.Thread(target=run_batch)
            worker.start()
            service.refresh(sphere_shell(400, 8, dim=3, seed=43))
            worker.join()
            assert not errors
            assert len(results) == len(workload)
            # Whichever epoch the batch snapshotted, its answers must be
            # internally consistent; a pre-refresh snapshot matches the
            # old index bit-for-bit.
            if results[0].rung == expected[0].rung and \
                    results[0].value == expected[0].value:
                assert [(r.value, r.rung) for r in results] == \
                    [(r.value, r.rung) for r in expected]
        finally:
            service.close()

    def test_stale_epoch_batch_gets_self_retiring_plane(self, index):
        # A batch whose snapshot raced a refresh (its epoch is already
        # superseded) must not resurrect a resident plane for the dead
        # epoch: it gets a private plane that drains with the batch.
        service = DiversityService(index, executor="process",
                                   executor_workers=2)
        try:
            backend = service._executor_obj("process")
            backend.on_epoch(1)  # refresh notification arrived first
            plane = backend._plane_for(0)  # straggler batch, old epoch
            ref = plane.coreset_ref(index.all_rungs()[0])
            assert ref.name in _shm_segments()
            assert ("", 0) not in backend._planes  # never registered
            plane.release()  # batch drains -> plane closes itself
            assert ref.name not in _shm_segments()
            # Normal new-epoch traffic is unaffected.
            current = backend._plane_for(1)
            assert ("", 1) in backend._planes
            current.release()
        finally:
            service.close()

    def test_subprocess_run_emits_no_tracker_warnings(self, tmp_path):
        # Spawn-context workers must not double-register segments with
        # the resource tracker: the whole flow runs in a subprocess so
        # tracker output at interpreter shutdown is captured too.
        script = tmp_path / "svc_tracker_probe.py"
        script.write_text(textwrap.dedent("""\
            import os
            from repro.datasets.synthetic import sphere_shell
            from repro.service import (DiversityService, Query,
                                       build_coreset_index)

            def main():
                points = sphere_shell(600, 8, dim=3, seed=3)
                index = build_coreset_index(points, k_max=8, k_min=4,
                                            parallelism=2, seed=0)
                before = {n for n in os.listdir("/dev/shm")
                          if n.startswith("psm_")}
                with DiversityService(index, executor="process",
                                      executor_workers=2) as service:
                    service.query_batch([Query("remote-edge", 4),
                                         Query("remote-clique", 4),
                                         Query("remote-edge", 4)])
                after = {n for n in os.listdir("/dev/shm")
                         if n.startswith("psm_")}
                assert after - before == set(), after - before
                print("OK")

            if __name__ == "__main__":
                main()
        """))
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, str(script)],
                              capture_output=True, text=True, timeout=300,
                              env=env)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr

    def test_warm_executor_prestarts_workers(self, process_service):
        # Warmup is idempotent and leaves the pool serving normally.
        process_service.warm_executor("process", max_workers=2)
        result = process_service.query("remote-edge", 5)
        assert result.k == 5


# -- epsilon-aware result reuse -----------------------------------------------

class TestEpsilonAwareReuse:
    def test_tight_answer_serves_loose_query(self, index):
        service = DiversityService(index)
        tight = service.query("remote-edge", 4, epsilon=0.2)
        loose_rung = index.route("remote-edge", 4, 1.0)
        assert tight.rung != loose_rung.key, \
            "test needs eps to route to different rungs"
        loose = service.query("remote-edge", 4, epsilon=1.0)
        assert loose.cached and loose.solve_seconds == 0.0
        assert loose.value == tight.value
        assert loose.rung == tight.rung  # served from the larger rung
        assert loose.epsilon == 1.0  # caller's own slack echoed back
        stats = service.stats()
        assert stats["counters"]["eps_hits"] == 1
        # Accounting: both queries counted exactly one hit or miss.
        assert stats["caches"]["results"]["hits"] + stats["caches"]["results"]["misses"] == 2

    def test_reused_answer_matches_direct_computation(self, index):
        service = DiversityService(index)
        objective = get_objective("remote-clique")
        tight = service.query(objective.name, 4, epsilon=0.2)
        loose = service.query(objective.name, 4, epsilon=1.0)
        assert service.stats()["counters"]["eps_hits"] == 1
        rung = next(r for r in index.all_rungs() if r.key == tight.rung)
        dist = rung.coreset.pairwise()
        indices = solve_on_matrix(dist, 4, objective)
        value = float(objective.value(dist[np.ix_(indices, indices)]))
        assert loose.value == value
        assert np.array_equal(loose.indices, indices)

    def test_loose_answer_never_serves_tight_query(self, index):
        service = DiversityService(index)
        loose = service.query("remote-edge", 4, epsilon=1.0)
        tight = service.query("remote-edge", 4, epsilon=0.2)
        assert not tight.cached
        assert tight.rung != loose.rung
        assert service.stats()["counters"]["eps_hits"] == 0

    def test_eps_reuse_in_process_mode(self, index):
        with DiversityService(index, executor="process",
                              executor_workers=2) as service:
            tight = service.query("remote-edge", 4, epsilon=0.2)
            loose = service.query("remote-edge", 4, epsilon=1.0)
            assert loose.cached and loose.value == tight.value
            assert service.stats()["counters"]["eps_hits"] == 1


# -- float32 fast path over the shared plane ----------------------------------

class TestDtypeProcessPlane:
    """Process workers fill and solve float32 segments unchanged.

    The dtype rides the rung core-set into
    :meth:`SharedMatrixCache.lease`, so a float32 index's segments cost
    half the bytes of a float64 index's under the same budget — and the
    worker-side solve (attach, fill-once, solve_on_matrix) needs no
    dtype plumbing at all.
    """

    def _workloads(self):
        return [Query(name, k) for name in list_objectives() for k in (3, 5)]

    def test_budgeted_float32_process_identity(self, index):
        """Under one binding budget, the float32 process service answers
        with float64-solver-confirmed selections and half the segment
        residency of the float64 service."""
        workload = self._workloads()
        index32 = index.astype("float32")
        residency = {}
        answers = {}
        # 2 MiB keeps the small rungs resident and evicts the big ones
        # for float64; the float32 plane fits strictly more.
        for label, idx in (("float64", index), ("float32", index32)):
            with DiversityService(idx, executor="process",
                                  executor_workers=2,
                                  matrix_budget_mb=2) as service:
                answers[label] = service.query_batch(workload)
                shared = service.stats()["matrices"]["shared"]
                assert shared["dtype"] == label
                residency[label] = shared
        for ours, reference in zip(answers["float32"], answers["float64"]):
            assert ours.rung == reference.rung
            assert ours.value == pytest.approx(reference.value, rel=1e-4)
        # Identical budgets, half the itemsize: every segment the float32
        # plane allocates is exactly half its float64 twin, so whatever
        # subset stays resident costs at most ~half the bytes.
        assert residency["float32"]["budget_bytes"] \
            == residency["float64"]["budget_bytes"] == 2 * 2**20
        assert residency["float32"]["resident_bytes"] <= \
            0.55 * residency["float64"]["resident_bytes"] + 1024

    def test_float32_segments_verified_in_process_mode(self, index):
        """The float64 shadow verify hooks the process path too."""
        index32 = index.astype("float32")
        with DiversityService(index32, executor="process",
                              executor_workers=2, verify_dtype=True,
                              verify_fraction=1.0) as service:
            service.query_batch(self._workloads())
            verify = service.stats()["verify"]
        assert verify["checks"] > 0
        assert verify["value_mismatches"] == 0
        assert verify["index_mismatches"] == 0

    def test_float32_lease_halves_segment_bytes(self):
        cache = SharedMatrixCache(0)
        try:
            lease64 = cache.lease("a", 64, dtype="float64")
            bytes64 = lease64.ref.resolve().nbytes
            lease32 = cache.lease("b", 64, dtype="float32")
            bytes32 = lease32.ref.resolve().nbytes
            assert bytes32 * 2 == bytes64
            cache.release(lease64)
            cache.release(lease32)
        finally:
            cache.close()
        assert not cache.segment_names()
