"""Tests for the streaming substrate and end-to-end streaming algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.datasets.synthetic import sphere_shell
from repro.exceptions import MemoryBudgetExceededError, StreamExhaustedError
from repro.experiments.reference import reference_value
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.streaming.memory import audit_memory, theoretical_memory_points
from repro.streaming.stream import ArrayStream, IteratorStream, ShuffledStream
from repro.streaming.throughput import measure_throughput


class TestStreams:
    def test_array_stream_replayable(self, rng):
        stream = ArrayStream(rng.random((10, 2)))
        assert len(list(stream)) == 10
        assert len(list(stream.replay())) == 10
        assert len(stream) == 10

    def test_shuffled_stream_is_permutation(self, rng):
        data = np.arange(20, dtype=float).reshape(-1, 1)
        stream = ShuffledStream(data, seed=0)
        seen = sorted(float(p[0]) for p in stream)
        assert seen == [float(i) for i in range(20)]

    def test_shuffled_stream_replay_same_order(self, rng):
        stream = ShuffledStream(rng.random((15, 2)), seed=1)
        first = np.vstack(list(stream))
        second = np.vstack(list(stream.replay()))
        assert np.array_equal(first, second)

    def test_iterator_stream_one_shot(self):
        stream = IteratorStream([np.asarray([1.0]), np.asarray([2.0])])
        assert len(list(stream)) == 2
        with pytest.raises(StreamExhaustedError):
            list(stream)
        with pytest.raises(StreamExhaustedError):
            stream.replay()

    def test_iterator_stream_has_no_length(self):
        with pytest.raises(TypeError):
            len(IteratorStream([np.asarray([1.0])]))


class TestStreamBatches:
    def test_array_stream_blocks_cover_stream_in_order(self, rng):
        data = rng.random((25, 3))
        blocks = list(ArrayStream(data).batches(10))
        assert [len(block) for block in blocks] == [10, 10, 5]
        assert np.array_equal(np.vstack(blocks), data)

    def test_batch_size_larger_than_stream(self, rng):
        data = rng.random((7, 2))
        blocks = list(ArrayStream(data).batches(100))
        assert len(blocks) == 1
        assert np.array_equal(blocks[0], data)

    def test_shuffled_stream_batches_match_iteration_order(self, rng):
        stream = ShuffledStream(rng.random((23, 2)), seed=3)
        assert np.array_equal(np.vstack(list(stream.batches(6))),
                              np.vstack(list(stream)))

    def test_iterator_stream_batches_one_shot(self):
        stream = IteratorStream([np.asarray([1.0]), np.asarray([2.0]),
                                 np.asarray([3.0])])
        blocks = list(stream.batches(2))
        assert [len(block) for block in blocks] == [2, 1]
        with pytest.raises(StreamExhaustedError):
            list(stream.batches(2))

    def test_batch_size_must_be_positive(self, rng):
        from repro.exceptions import ValidationError
        with pytest.raises(ValidationError):
            list(ArrayStream(rng.random((5, 2))).batches(0))


class TestOnePassAlgorithm:
    @pytest.mark.parametrize("objective", [
        "remote-edge", "remote-clique", "remote-star",
        "remote-bipartition", "remote-tree", "remote-cycle",
    ])
    def test_runs_for_every_objective(self, objective):
        pts = sphere_shell(300, 4, dim=3, seed=7)
        algo = StreamingDiversityMaximizer(k=4, k_prime=8, objective=objective)
        result = algo.run(ArrayStream(pts.points))
        assert result.k == 4
        assert result.value > 0.0
        assert result.passes == 1
        assert result.points_processed == 300

    def test_sketch_choice_matches_objective(self):
        edge = StreamingDiversityMaximizer(k=2, k_prime=4, objective="remote-edge")
        clique = StreamingDiversityMaximizer(k=2, k_prime=4, objective="remote-clique")
        assert type(edge.make_sketch()) is SMM
        assert type(clique.make_sketch()) is SMMExt

    def test_quality_on_planted_instance(self):
        pts = sphere_shell(2000, 8, dim=3, seed=3)
        algo = StreamingDiversityMaximizer(k=8, k_prime=64, objective="remote-edge")
        result = algo.run(ArrayStream(pts.points))
        reference = reference_value(pts, 8, "remote-edge")
        assert reference / result.value <= 2.0  # streaming guarantee is ~2+eps

    def test_memory_independent_of_stream_length(self):
        peaks = []
        for n in (500, 5000):
            pts = sphere_shell(n, 8, dim=3, seed=1)
            algo = StreamingDiversityMaximizer(k=8, k_prime=16,
                                               objective="remote-edge")
            result = algo.run(ArrayStream(pts.points))
            peaks.append(result.peak_memory_points)
        bound = theoretical_memory_points("remote-edge", 8, 16)
        assert max(peaks) <= bound

    def test_throughput_reported(self):
        pts = sphere_shell(300, 4, dim=3, seed=0)
        algo = StreamingDiversityMaximizer(k=4, k_prime=8, objective="remote-edge")
        result = algo.run(ArrayStream(pts.points))
        assert result.kernel_throughput > 0
        assert result.kernel_seconds > 0

    def test_works_on_iterator_stream(self):
        pts = sphere_shell(200, 4, dim=3, seed=0)
        algo = StreamingDiversityMaximizer(k=4, k_prime=8, objective="remote-edge")
        result = algo.run(IteratorStream(iter(pts.points)))
        assert result.k == 4

    @pytest.mark.parametrize("objective", ["remote-edge", "remote-clique"])
    def test_batched_run_identical_to_point_wise(self, objective):
        """batch_size is a pure throughput knob: solution, value, core-set,
        and memory accounting must match the per-point run exactly."""
        pts = sphere_shell(800, 6, dim=3, seed=4)
        base = StreamingDiversityMaximizer(
            k=6, k_prime=18, objective=objective).run(ArrayStream(pts.points))
        batched = StreamingDiversityMaximizer(
            k=6, k_prime=18, objective=objective,
            batch_size=128).run(ArrayStream(pts.points))
        assert np.array_equal(batched.solution.points, base.solution.points)
        assert batched.value == base.value
        assert batched.coreset_size == base.coreset_size
        assert batched.peak_memory_points == base.peak_memory_points
        assert batched.points_processed == base.points_processed
        assert batched.extra["batch_size"] == 128

    def test_batched_run_on_iterator_stream(self):
        pts = sphere_shell(300, 4, dim=3, seed=0)
        algo = StreamingDiversityMaximizer(k=4, k_prime=8,
                                           objective="remote-edge",
                                           batch_size=64)
        result = algo.run(IteratorStream(iter(pts.points)))
        assert result.k == 4
        assert result.points_processed == 300

    def test_batch_size_must_be_positive(self):
        from repro.exceptions import ValidationError
        with pytest.raises(ValidationError):
            StreamingDiversityMaximizer(k=4, k_prime=8,
                                        objective="remote-edge",
                                        batch_size=0)


class TestTwoPassAlgorithm:
    def test_memory_saving_vs_one_pass(self):
        pts = sphere_shell(1500, 8, dim=3, seed=5)
        one_pass = StreamingDiversityMaximizer(k=8, k_prime=32,
                                               objective="remote-clique")
        two_pass = TwoPassStreamingDiversityMaximizer(k=8, k_prime=32,
                                                      objective="remote-clique")
        r1 = one_pass.run(ArrayStream(pts.points))
        r2 = two_pass.run(ArrayStream(pts.points))
        assert r2.peak_memory_points < r1.peak_memory_points
        assert r2.passes == 2
        # Quality within a factor ~2 of the one-pass answer.
        assert r2.value >= r1.value / 2.5

    def test_solution_has_k_points(self):
        pts = sphere_shell(500, 4, dim=3, seed=2)
        algo = TwoPassStreamingDiversityMaximizer(k=4, k_prime=16,
                                                  objective="remote-tree")
        result = algo.run(ArrayStream(pts.points))
        assert result.k == 4

    def test_rejects_non_injective_objective(self):
        with pytest.raises(ValueError):
            TwoPassStreamingDiversityMaximizer(k=4, k_prime=8,
                                               objective="remote-edge")

    def test_rejects_one_shot_stream(self):
        pts = sphere_shell(300, 4, dim=3, seed=2)
        algo = TwoPassStreamingDiversityMaximizer(k=4, k_prime=8,
                                                  objective="remote-clique")
        with pytest.raises(StreamExhaustedError):
            algo.run(IteratorStream(iter(pts.points)))

    def test_batched_run_identical_to_point_wise(self):
        """Both passes — the SMM-GEN sketch and the delegate
        instantiation — must pick the same points under batching."""
        pts = sphere_shell(900, 6, dim=3, seed=6)
        base = TwoPassStreamingDiversityMaximizer(
            k=6, k_prime=18, objective="remote-clique").run(
                ArrayStream(pts.points))
        batched = TwoPassStreamingDiversityMaximizer(
            k=6, k_prime=18, objective="remote-clique",
            batch_size=97).run(ArrayStream(pts.points))
        assert np.array_equal(batched.solution.points, base.solution.points)
        assert batched.value == base.value
        assert batched.points_processed == base.points_processed
        assert batched.peak_memory_points == base.peak_memory_points
        assert batched.extra["instantiation_shortfall"] == \
            base.extra["instantiation_shortfall"]


class TestMemoryAudit:
    def test_audit_passes_for_honest_sketch(self, rng):
        sketch = SMM(k=4, k_prime=8)
        sketch.process_batch(rng.random((300, 2)))
        observed = audit_memory(sketch, "remote-edge", 4, 8)
        assert observed <= theoretical_memory_points("remote-edge", 4, 8)

    def test_audit_raises_on_violation(self, rng):
        sketch = SMM(k=4, k_prime=8)
        sketch.process_batch(rng.random((300, 2)))
        sketch._peak_memory = 10**6  # simulate a violation
        with pytest.raises(MemoryBudgetExceededError):
            audit_memory(sketch, "remote-edge", 4, 8)

    def test_theoretical_bounds_ordering(self):
        """EXT needs ~k times the memory of plain/generalized sketches."""
        plain = theoretical_memory_points("remote-edge", 8, 32)
        ext = theoretical_memory_points("remote-clique", 8, 32)
        gen = theoretical_memory_points("remote-clique", 8, 32, generalized=True)
        assert gen == plain
        assert ext > 3 * plain


class TestThroughput:
    def test_reports_counts_and_rates(self, rng):
        sketch = SMM(k=4, k_prime=8)
        report = measure_throughput(sketch, ArrayStream(rng.random((200, 2))))
        assert report.points == 200
        assert report.batch_size == 0
        assert report.kernel_points_per_second > 0
        assert report.wall_points_per_second <= report.kernel_points_per_second

    def test_batched_measurement_same_sketch_state(self, rng):
        data = rng.random((500, 2))
        per_point, batched = SMM(k=4, k_prime=8), SMM(k=4, k_prime=8)
        measure_throughput(per_point, ArrayStream(data))
        report = measure_throughput(batched, ArrayStream(data), batch_size=64)
        assert report.points == 500
        assert report.batch_size == 64
        assert report.kernel_points_per_second > 0
        assert np.array_equal(batched.centers(), per_point.centers())
        assert batched.peak_memory_points == per_point.peak_memory_points
