"""Tests for Prim's MST — checked against networkx on random matrices."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.graph.mst import mst_weight, prim_mst


def _symmetric(matrix: np.ndarray) -> np.ndarray:
    sym = np.abs(matrix) + np.abs(matrix).T
    np.fill_diagonal(sym, 0.0)
    return sym


def _networkx_mst_weight(dist: np.ndarray) -> float:
    graph = nx.Graph()
    n = dist.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j, weight=float(dist[i, j]))
    if n == 1:
        return 0.0
    tree = nx.minimum_spanning_tree(graph)
    return float(sum(data["weight"] for *_edge, data in tree.edges(data=True)))


class TestPrim:
    def test_single_vertex(self):
        assert prim_mst(np.zeros((1, 1))) == []
        assert mst_weight(np.zeros((1, 1))) == 0.0

    def test_two_vertices(self):
        dist = np.asarray([[0.0, 3.0], [3.0, 0.0]])
        assert mst_weight(dist) == pytest.approx(3.0)

    def test_path_graph(self):
        # Points on a line: MST is the chain of consecutive gaps.
        xs = np.asarray([0.0, 1.0, 3.0, 7.0])
        dist = np.abs(xs[:, None] - xs[None, :])
        assert mst_weight(dist) == pytest.approx(7.0)

    def test_edge_count(self, rng):
        dist = _symmetric(rng.random((10, 10)))
        assert len(prim_mst(dist)) == 9

    def test_edges_form_spanning_tree(self, rng):
        dist = _symmetric(rng.random((12, 12)))
        edges = prim_mst(dist)
        graph = nx.Graph(edges)
        assert graph.number_of_nodes() == 12
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == 11

    @pytest.mark.parametrize("n", [2, 5, 9, 16])
    def test_weight_matches_networkx(self, n, rng):
        dist = _symmetric(rng.random((n, n)))
        assert mst_weight(dist) == pytest.approx(_networkx_mst_weight(dist))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            mst_weight(np.zeros((2, 3)))


@settings(max_examples=30, deadline=None)
@given(matrix=arrays(np.float64, (7, 7), elements=st.floats(0.01, 10.0)))
def test_prim_matches_networkx_property(matrix):
    dist = _symmetric(matrix)
    assert mst_weight(dist) == pytest.approx(_networkx_mst_weight(dist), rel=1e-9)
