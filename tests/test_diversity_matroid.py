"""Tests for the matroid-constrained diversity extension."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.diversity.matroid import (
    PartitionMatroid,
    UniformMatroid,
    greedy_matroid_basis,
    local_search_matroid_clique,
    solve_matroid_clique,
)
from repro.diversity.measures import remote_clique_value
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet


def _dist(points):
    points = np.asarray(points, dtype=float)
    return np.linalg.norm(points[:, None] - points[None, :], axis=2)


def _exact_matroid_optimum(dist, matroid):
    n = dist.shape[0]
    best = -np.inf
    for size in range(matroid.rank, 0, -1):
        for subset in combinations(range(n), size):
            if matroid.is_independent(subset):
                idx = np.asarray(subset)
                best = max(best, remote_clique_value(dist[np.ix_(idx, idx)]))
        if best > -np.inf:
            break  # only maximum-size independent sets matter for max-sum
    return best


class TestUniformMatroid:
    def test_independence(self):
        matroid = UniformMatroid(2)
        assert matroid.is_independent([0, 1])
        assert not matroid.is_independent([0, 1, 2])
        assert not matroid.is_independent([0, 0])
        assert matroid.rank == 2

    def test_bad_k(self):
        with pytest.raises(ValidationError):
            UniformMatroid(0)


class TestPartitionMatroid:
    def test_independence(self):
        matroid = PartitionMatroid([0, 0, 1, 1, 2], {0: 1, 1: 2, 2: 0})
        assert matroid.is_independent([0, 2, 3])
        assert not matroid.is_independent([0, 1])   # two from category 0
        assert not matroid.is_independent([4])      # category 2 capped at 0
        assert matroid.rank == 3

    def test_rank_caps_by_availability(self):
        matroid = PartitionMatroid([0, 0], {0: 5, 1: 3})
        assert matroid.rank == 2  # only two elements of category 0 exist

    def test_restrict(self):
        matroid = PartitionMatroid([0, 0, 1, 1], {0: 1, 1: 1})
        restricted = matroid.restrict([2, 3])
        assert restricted.rank == 1
        assert restricted.is_independent([0])
        assert not restricted.is_independent([0, 1])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            PartitionMatroid([0], {0: -1})


class TestGreedyBasis:
    def test_reaches_rank(self, rng):
        dist = _dist(rng.random((12, 2)))
        matroid = PartitionMatroid(np.arange(12) % 3, {0: 2, 1: 2, 2: 2})
        basis = greedy_matroid_basis(dist, matroid)
        assert len(basis) == 6
        assert matroid.is_independent(basis)


class TestLocalSearch:
    def test_respects_constraints(self, rng):
        pts = rng.random((20, 2))
        dist = _dist(pts)
        categories = np.arange(20) % 4
        matroid = PartitionMatroid(categories, {0: 1, 1: 1, 2: 1, 3: 1})
        indices, _ = local_search_matroid_clique(dist, matroid)
        assert matroid.is_independent(indices.tolist())
        assert len(indices) == 4

    def test_half_approximation_on_small_instances(self):
        for trial in range(5):
            rng = np.random.default_rng(trial)
            pts = rng.random((10, 2))
            dist = _dist(pts)
            categories = np.arange(10) % 2
            matroid = PartitionMatroid(categories, {0: 2, 1: 1})
            optimum = _exact_matroid_optimum(dist, matroid)
            indices, _ = local_search_matroid_clique(dist, matroid)
            achieved = remote_clique_value(dist[np.ix_(indices, indices)])
            assert achieved >= optimum / 2.0 - 1e-9

    def test_uniform_matroid_matches_unconstrained_quality(self, rng):
        from repro.diversity.local_search import local_search_remote_clique
        pts = rng.random((15, 2))
        dist = _dist(pts)
        uniform_indices, _ = local_search_matroid_clique(dist, UniformMatroid(4))
        plain_indices, _ = local_search_remote_clique(dist, 4)
        uniform_value = remote_clique_value(
            dist[np.ix_(uniform_indices, uniform_indices)])
        plain_value = remote_clique_value(
            dist[np.ix_(plain_indices, plain_indices)])
        assert uniform_value >= plain_value * 0.8

    def test_bad_initial_rejected(self, rng):
        dist = _dist(rng.random((6, 2)))
        matroid = PartitionMatroid([0] * 6, {0: 1})
        with pytest.raises(ValidationError):
            local_search_matroid_clique(dist, matroid, initial=[0, 1])


class TestSolveMatroidClique:
    def test_direct_small(self, rng):
        points = PointSet(rng.random((30, 2)))
        matroid = PartitionMatroid(np.arange(30) % 3, {0: 2, 1: 2, 2: 2})
        indices, value = solve_matroid_clique(points, matroid)
        assert matroid.is_independent(indices.tolist())
        assert value > 0.0

    def test_coreset_path_matches_constraints(self, rng):
        points = PointSet(rng.random((500, 2)))
        categories = (rng.random(500) * 5).astype(int)
        matroid = PartitionMatroid(categories, {c: 1 for c in range(5)})
        indices, value = solve_matroid_clique(points, matroid,
                                              use_coreset=True, k_prime=40)
        assert matroid.is_independent(indices.tolist())
        assert len(indices) == 5

    def test_coreset_quality_near_direct(self, rng):
        points = PointSet(rng.random((600, 2)) * 10.0)
        categories = (np.arange(600) % 4)
        matroid = PartitionMatroid(categories, {c: 2 for c in range(4)})
        _, direct_value = solve_matroid_clique(points, matroid,
                                               use_coreset=False)
        _, coreset_value = solve_matroid_clique(points, matroid,
                                                use_coreset=True, k_prime=64)
        assert coreset_value >= 0.8 * direct_value

    def test_rank_zero_rejected(self, rng):
        points = PointSet(rng.random((5, 2)))
        matroid = PartitionMatroid([0] * 5, {0: 0})
        with pytest.raises(ValidationError):
            solve_matroid_clique(points, matroid)


class TestTruncatedMatroid:
    def test_truncation_caps_rank(self):
        from repro.diversity.matroid import TruncatedMatroid
        inner = PartitionMatroid([0, 0, 1, 1, 2, 2], {0: 2, 1: 2, 2: 2})
        truncated = TruncatedMatroid(inner, 4)
        assert truncated.rank == 4
        assert truncated.is_independent([0, 2, 4])
        assert truncated.is_independent([0, 1, 2, 4])
        assert not truncated.is_independent([0, 1, 2, 3, 4])  # size 5 > 4
        assert truncated.is_independent([0, 1, 2, 3])  # caps respected
        assert not truncated.is_independent([0, 0, 2, 4])  # duplicate

    def test_truncation_above_inner_rank_is_inner_rank(self):
        from repro.diversity.matroid import TruncatedMatroid
        inner = PartitionMatroid([0, 1], {0: 1, 1: 1})
        assert TruncatedMatroid(inner, 10).rank == 2

    def test_truncated_solve_end_to_end(self, rng):
        from repro.diversity.matroid import TruncatedMatroid
        points = PointSet(rng.random((300, 2)) * 10.0)
        categories = np.arange(300) % 6
        inner = PartitionMatroid(categories, {c: 1 for c in range(6)})
        matroid = TruncatedMatroid(inner, 4)
        indices, value = solve_matroid_clique(points, matroid,
                                              use_coreset=True, k_prime=32)
        assert len(indices) == 4
        assert matroid.is_independent(indices.tolist())
        assert value > 0.0

    def test_bad_truncation_rank(self):
        from repro.diversity.matroid import TruncatedMatroid
        with pytest.raises(ValidationError):
            TruncatedMatroid(UniformMatroid(3), 0)
