"""Tests for the k'/tile/batch auto-tuning module."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell, uniform_cube
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.streaming.memory import theoretical_memory_points
from repro.tuning import (
    load_tile_profile,
    recommend_batch_size,
    recommend_k_prime,
    recommend_matrix_budget_mb,
    recommend_tile_rows,
    save_tile_profile,
    tile_profile_path,
)


class TestRecommendation:
    def test_returns_sane_band(self):
        points = uniform_cube(2000, dim=3, seed=0)
        advice = recommend_k_prime(points, k=8, seed=0)
        assert 8 <= advice.k_prime <= 16 * 8
        assert advice.estimated_dimension > 0
        assert advice.theoretical_k_prime >= advice.k_prime

    def test_higher_dimension_recommends_more(self):
        line = PointSet(np.linspace(0, 1, 1500).reshape(-1, 1))
        cube = uniform_cube(1500, dim=5, seed=1)
        low = recommend_k_prime(line, k=8, seed=0)
        high = recommend_k_prime(cube, k=8, seed=0)
        assert high.estimated_dimension > low.estimated_dimension
        assert high.k_prime >= low.k_prime

    def test_memory_budget_respected(self):
        points = uniform_cube(2000, dim=3, seed=2)
        budget = 200
        advice = recommend_k_prime(points, k=8, objective="remote-clique",
                                   memory_budget_points=budget, seed=0)
        assert advice.memory_points <= budget or advice.k_prime == 8
        assert advice.memory_points == theoretical_memory_points(
            "remote-clique", 8, advice.k_prime)

    def test_never_below_k(self):
        points = uniform_cube(500, dim=2, seed=3)
        advice = recommend_k_prime(points, k=16,
                                   memory_budget_points=10, seed=0)
        assert advice.k_prime >= 16

    def test_deterministic_for_seed(self):
        points = sphere_shell(1000, 8, seed=4)
        a = recommend_k_prime(points, k=8, seed=9)
        b = recommend_k_prime(points, k=8, seed=9)
        assert a == b

    def test_bad_epsilon(self):
        points = uniform_cube(100, seed=5)
        with pytest.raises(ValidationError):
            recommend_k_prime(points, k=4, epsilon=0.0)

class TestTileProfile:
    """The per-machine kernel-tile profile (.repro_profile.json)."""

    def test_recommendation_is_recorded(self):
        # The autouse conftest fixture points REPRO_PROFILE_PATH at a tmp
        # file, so this exercises the env-overridable path too.
        tuning = recommend_tile_rows("manhattan", 4096, 512, 8,
                                     memory_budget_bytes=2 * 2**20)
        path = tile_profile_path()
        assert path.exists()
        entries = load_tile_profile()
        key = f"manhattan:4096x512x8:budget={2 * 2**20}:dtype=float64"
        assert entries[key] == tuning.as_dict()

    def test_profile_entry_is_reused(self):
        recommend_tile_rows("euclidean", 1000, 1000, 4,
                            memory_budget_bytes=2**20)
        # Doctor the stored tiling: a later call must return the measured
        # (stored) value instead of re-deriving it.
        entries = load_tile_profile()
        (key,) = entries
        entries[key]["tile_rows"] = 77
        save_tile_profile(entries)
        tuning = recommend_tile_rows("euclidean", 1000, 1000, 4,
                                     memory_budget_bytes=2**20)
        assert tuning.tile_rows == 77

    def test_use_profile_false_ignores_profile(self):
        baseline = recommend_tile_rows("euclidean", 1000, 1000, 4,
                                       memory_budget_bytes=2**20,
                                       use_profile=False)
        entries = load_tile_profile()
        assert entries == {}  # nothing recorded either
        save_tile_profile({
            f"euclidean:1000x1000x4:budget={2**20}:dtype=float64":
            {**baseline.as_dict(), "tile_rows": 99}})
        fresh = recommend_tile_rows("euclidean", 1000, 1000, 4,
                                    memory_budget_bytes=2**20,
                                    use_profile=False)
        assert fresh.tile_rows == baseline.tile_rows != 99

    def test_different_budget_is_a_different_key(self):
        recommend_tile_rows("euclidean", 2000, 2000, 4,
                            memory_budget_bytes=2**20)
        recommend_tile_rows("euclidean", 2000, 2000, 4,
                            memory_budget_bytes=2**22)
        assert len(load_tile_profile()) == 2

    def test_malformed_profile_degrades_gracefully(self):
        path = tile_profile_path()
        path.write_text("{not json")
        assert load_tile_profile() == {}
        tuning = recommend_tile_rows("euclidean", 500, 500, 3)
        assert tuning.tile_rows >= 1

    def test_version_mismatch_invalidates_profile(self):
        recommend_tile_rows("euclidean", 600, 600, 3,
                            memory_budget_bytes=2**20)
        path = tile_profile_path()
        payload = json.loads(path.read_text())
        assert payload["kernel_tuning"]  # something was recorded
        payload["format_version"] = 99   # a future, incompatible layout
        path.write_text(json.dumps(payload))
        # Stale-version entries must not pin an outdated derivation.
        assert load_tile_profile() == {}

    def test_dtype_is_a_distinct_key_with_wider_tiles(self):
        narrow = recommend_tile_rows("manhattan", 100_000, 4096, 16,
                                     memory_budget_bytes=2**20)
        wide = recommend_tile_rows("manhattan", 100_000, 4096, 16,
                                   memory_budget_bytes=2**20,
                                   dtype="float32")
        assert len(load_tile_profile()) == 2  # keyed per dtype
        assert narrow.dtype == "float64" and wide.dtype == "float32"
        # Same byte budget, half the itemsize: 2x the tile rows.
        assert wide.tile_rows == 2 * narrow.tile_rows

    def test_stale_entry_layout_falls_back_to_derivation(self):
        derived = recommend_tile_rows("cosine", 800, 800, 6,
                                      memory_budget_bytes=2**20,
                                      use_profile=False)
        save_tile_profile({f"cosine:800x800x6:budget={2**20}:dtype=float64":
                           {"unexpected": "layout"}})
        tuning = recommend_tile_rows("cosine", 800, 800, 6,
                                     memory_budget_bytes=2**20)
        assert tuning.tile_rows == derived.tile_rows


class TestRecommendBatchSize:
    """Batch-size auto-tuning from the BENCH_fig3_*.json trajectory."""

    @staticmethod
    def _write(directory, name, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(payload))

    def test_best_measured_batch_size_wins(self, tmp_path):
        self._write(tmp_path, "BENCH_fig3_batched_speedup.json",
                    {"batch_size": 2048, "speedup": 7.5})
        self._write(tmp_path, "BENCH_fig3_throughput.json",
                    {"batch_size": 512, "cells": [
                        {"per_point_pps": 100.0, "batched_pps": 300.0},
                        {"per_point_pps": 100.0, "batched_pps": 500.0}]})
        assert recommend_batch_size(tmp_path) == 2048

    def test_batch_size_sweep_is_arg_maxed(self, tmp_path):
        self._write(tmp_path, "BENCH_fig3_batched_speedup.json",
                    {"batch_size": 1024, "speedup": 50.0, "sweep": [
                        {"batch_size": 256, "speedup": 40.0},
                        {"batch_size": 1024, "speedup": 50.0},
                        {"batch_size": 4096, "speedup": 62.0},
                        {"batch_size": "bad", "speedup": 99.0}]})
        assert recommend_batch_size(tmp_path) == 4096

    def test_throughput_sweep_alone_suffices(self, tmp_path):
        self._write(tmp_path, "BENCH_fig3_throughput.json",
                    {"batch_size": 256, "cells": [
                        {"per_point_pps": 10.0, "batched_pps": 80.0}]})
        assert recommend_batch_size(tmp_path) == 256

    def test_losing_trajectory_disables_batching(self, tmp_path):
        self._write(tmp_path, "BENCH_fig3_batched_speedup.json",
                    {"batch_size": 4096, "speedup": 0.6})
        assert recommend_batch_size(tmp_path) == 1

    def test_no_trajectory_returns_default(self, tmp_path):
        assert recommend_batch_size(tmp_path / "empty") == 1024
        assert recommend_batch_size(tmp_path / "empty", default=64) == 64
        # The None sentinel lets callers distinguish "no measurement".
        assert recommend_batch_size(tmp_path / "empty", default=None) is None

    def test_env_var_is_authoritative(self, tmp_path, monkeypatch):
        self._write(tmp_path / "env", "BENCH_fig3_batched_speedup.json",
                    {"batch_size": 128, "speedup": 3.0})
        monkeypatch.setenv("REPRO_BENCH_RESULTS_DIR", str(tmp_path / "env"))
        assert recommend_batch_size() == 128

    def test_garbage_files_are_skipped(self, tmp_path):
        self._write(tmp_path, "BENCH_fig3_throughput.json",
                    {"batch_size": "huge", "cells": []})
        (tmp_path / "BENCH_fig3_other.json").write_text("not json")
        assert recommend_batch_size(tmp_path) == 1024

    def test_non_numeric_cells_are_skipped(self, tmp_path):
        self._write(tmp_path, "BENCH_fig3_throughput.json",
                    {"batch_size": 512, "cells": [
                        {"per_point_pps": "100", "batched_pps": 300.0},
                        {"per_point_pps": 0.0, "batched_pps": 300.0},
                        {"per_point_pps": 100.0, "batched_pps": None},
                        "not a cell",
                        {"per_point_pps": 100.0, "batched_pps": 250.0}]})
        # Only the last cell is usable; it shows batching winning.
        assert recommend_batch_size(tmp_path) == 512


class TestMatrixBudgetRecommendation:
    def test_sizes_for_largest_rungs(self):
        # Two largest rungs: 1024 and 512 points -> 8*(1024^2 + 512^2)
        # bytes = 10 MiB.
        assert recommend_matrix_budget_mb([64, 512, 1024]) == 10

    def test_resident_rungs_widens_budget(self):
        small = recommend_matrix_budget_mb([256, 256, 256], resident_rungs=1)
        large = recommend_matrix_budget_mb([256, 256, 256], resident_rungs=3)
        assert large > small

    def test_float32_halves_the_budget(self):
        # The same two largest rungs in float32: 4*(1024^2 + 512^2)
        # bytes = 5 MiB — exactly half the float64 recommendation.
        assert recommend_matrix_budget_mb([64, 512, 1024],
                                          dtype="float32") == 5
        assert recommend_matrix_budget_mb([64, 512, 1024],
                                          dtype="float64") == \
            recommend_matrix_budget_mb([64, 512, 1024])

    def test_minimum_is_one_mib(self):
        assert recommend_matrix_budget_mb([4]) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            recommend_matrix_budget_mb([])
        with pytest.raises(ValidationError):
            recommend_matrix_budget_mb([128], resident_rungs=0)
        with pytest.raises(ValidationError):
            recommend_matrix_budget_mb([0])

    def test_budget_really_holds_the_rungs(self):
        from repro.service import MatrixCache

        counts = [100, 200, 300]
        budget = recommend_matrix_budget_mb(counts) * 2**20
        cache = MatrixCache(budget_bytes=budget)
        for n in sorted(counts)[-2:]:
            cache.get_or_compute(n, lambda n=n: np.zeros((n, n)))
        assert cache.stats.evictions == 0  # both largest fit together


class TestRegistryBudget:
    def test_sums_the_hottest_tenants(self):
        from repro.tuning import recommend_registry_budget_mb

        fleet = [[64, 512, 1024], [64, 512, 1024], [32, 64]]
        # Two identical heavy tenants at 10 MiB each; the light tail
        # rides the headroom.
        assert recommend_registry_budget_mb(fleet, hot_tenants=2) == 20
        assert recommend_registry_budget_mb(fleet, hot_tenants=1) == 10
        # A budget for the whole fleet is strictly wider.
        assert recommend_registry_budget_mb(fleet, hot_tenants=3) > 20
        # dtype threads through to the per-tenant sizing.
        assert recommend_registry_budget_mb(fleet, hot_tenants=2,
                                            dtype="float32") == 10

    def test_validation(self):
        from repro.tuning import recommend_registry_budget_mb

        with pytest.raises(ValidationError):
            recommend_registry_budget_mb([])
        with pytest.raises(ValidationError):
            recommend_registry_budget_mb([[128]], hot_tenants=0)
        with pytest.raises(ValidationError):
            recommend_registry_budget_mb([[]])


class TestTenantWeights:
    def test_weights_proportional_to_traffic_and_clamped(self):
        from repro.tuning import recommend_tenant_weights

        weights = recommend_tenant_weights(
            {"hot": 1000, "warm": 500, "cool": 250, "cold": 1})
        assert weights == {"hot": 4, "warm": 2, "cool": 1, "cold": 1}
        # The clamp keeps a zipf-hot tenant from monopolizing dispatch.
        assert recommend_tenant_weights(
            {"whale": 10**9, "minnow": 1}, max_weight=8)["whale"] == 8
        # Every tenant gets at least weight 1 — nobody is starved out
        # of the round by the recommender itself.
        assert set(recommend_tenant_weights(
            {"a": 0, "b": 0}).values()) == {1}

    def test_round_trips_into_valid_quotas(self):
        from repro.service import TenantQuota
        from repro.tuning import recommend_tenant_weights

        weights = recommend_tenant_weights({"eu": 300, "us": 100})
        for weight in weights.values():
            TenantQuota(weight=weight)  # always a valid manifest quota

    def test_validation(self):
        from repro.tuning import recommend_tenant_weights

        with pytest.raises(ValidationError):
            recommend_tenant_weights({})
        with pytest.raises(ValidationError):
            recommend_tenant_weights({"eu": -1})
        with pytest.raises(ValidationError):
            recommend_tenant_weights({"eu": 5}, max_weight=0)


class TestProfileMigration:
    """Profile format v3: the planner calibration block rides along."""

    @staticmethod
    def _write_raw(payload):
        path = tile_profile_path()
        path.write_text(json.dumps(payload))
        return path

    def test_v1_profile_loads_as_empty(self):
        # Pre-dtype v1 files must not pin outdated tilings — and they
        # never carried a calibration block.
        from repro.tuning import load_calibration

        self._write_raw({"format_version": 1,
                         "kernel_tuning": {"stale": {"tile_rows": 7}}})
        assert load_tile_profile() == {}
        assert load_calibration() == {}

    def test_v2_profile_loads_with_default_calibration(self):
        from repro.service.planner import CostModel
        from repro.tuning import load_calibration

        entry = {"euclidean:10x10x2:budget=1:dtype=float64":
                 {"tile_rows": 5}}
        self._write_raw({"format_version": 2, "kernel_tuning": entry})
        assert load_tile_profile() == entry  # v2 entries stay usable
        assert load_calibration() == {}
        model = CostModel.from_payload(load_calibration())
        assert model.calibrated is False
        assert model == CostModel.default()

    def test_v3_round_trip_preserves_calibration(self):
        from repro.service.planner import CostModel
        from repro.tuning import load_calibration, save_calibration

        model = CostModel.default()
        model.calibrated = True
        model.dispatch_seconds["process"] = 0.125
        save_calibration(model.to_payload())
        path = tile_profile_path()
        assert json.loads(path.read_text())["format_version"] == 3
        restored = CostModel.from_payload(load_calibration())
        assert restored == model

    def test_save_tile_profile_preserves_calibration(self):
        from repro.tuning import load_calibration, save_calibration

        save_calibration({"scale": 2.0})
        save_tile_profile({"key": {"tile_rows": 3}})
        assert load_calibration() == {"scale": 2.0}
        assert load_tile_profile() == {"key": {"tile_rows": 3}}

    def test_save_calibration_preserves_kernel_entries(self):
        from repro.tuning import load_calibration, save_calibration

        save_tile_profile({"key": {"tile_rows": 3}})
        save_calibration({"scale": 2.0})
        assert load_tile_profile() == {"key": {"tile_rows": 3}}
        assert load_calibration() == {"scale": 2.0}

    def test_save_calibration_upgrades_v2_in_place(self):
        from repro.tuning import save_calibration

        entry = {"k": {"tile_rows": 9}}
        self._write_raw({"format_version": 2, "kernel_tuning": entry})
        save_calibration({"scale": 1.5})
        payload = json.loads(tile_profile_path().read_text())
        assert payload["format_version"] == 3
        assert payload["kernel_tuning"] == entry  # survives the upgrade

    def test_calibration_block_ignored_when_malformed(self):
        from repro.tuning import CALIBRATION_KEY, load_calibration

        self._write_raw({"format_version": 3, "kernel_tuning": {},
                         CALIBRATION_KEY: ["not", "a", "dict"]})
        assert load_calibration() == {}


class TestRecommendationPipeline:
    def test_recommendation_actually_performs(self):
        """End-to-end: the recommended k' achieves a good ratio."""
        from repro.experiments.harness import approximation_ratio
        from repro.experiments.reference import reference_value
        from repro.streaming.algorithm import StreamingDiversityMaximizer
        from repro.streaming.stream import ArrayStream

        points = sphere_shell(5000, 8, dim=3, seed=6)
        advice = recommend_k_prime(points, k=8, seed=0)
        algo = StreamingDiversityMaximizer(k=8, k_prime=advice.k_prime,
                                           objective="remote-edge")
        result = algo.run(ArrayStream(points.points))
        reference = reference_value(points, 8, "remote-edge")
        assert approximation_ratio(reference, result.value) <= 1.8
