"""Tests for the k' auto-tuning module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell, uniform_cube
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.streaming.memory import theoretical_memory_points
from repro.tuning import recommend_k_prime


class TestRecommendation:
    def test_returns_sane_band(self):
        points = uniform_cube(2000, dim=3, seed=0)
        advice = recommend_k_prime(points, k=8, seed=0)
        assert 8 <= advice.k_prime <= 16 * 8
        assert advice.estimated_dimension > 0
        assert advice.theoretical_k_prime >= advice.k_prime

    def test_higher_dimension_recommends_more(self):
        line = PointSet(np.linspace(0, 1, 1500).reshape(-1, 1))
        cube = uniform_cube(1500, dim=5, seed=1)
        low = recommend_k_prime(line, k=8, seed=0)
        high = recommend_k_prime(cube, k=8, seed=0)
        assert high.estimated_dimension > low.estimated_dimension
        assert high.k_prime >= low.k_prime

    def test_memory_budget_respected(self):
        points = uniform_cube(2000, dim=3, seed=2)
        budget = 200
        advice = recommend_k_prime(points, k=8, objective="remote-clique",
                                   memory_budget_points=budget, seed=0)
        assert advice.memory_points <= budget or advice.k_prime == 8
        assert advice.memory_points == theoretical_memory_points(
            "remote-clique", 8, advice.k_prime)

    def test_never_below_k(self):
        points = uniform_cube(500, dim=2, seed=3)
        advice = recommend_k_prime(points, k=16,
                                   memory_budget_points=10, seed=0)
        assert advice.k_prime >= 16

    def test_deterministic_for_seed(self):
        points = sphere_shell(1000, 8, seed=4)
        a = recommend_k_prime(points, k=8, seed=9)
        b = recommend_k_prime(points, k=8, seed=9)
        assert a == b

    def test_bad_epsilon(self):
        points = uniform_cube(100, seed=5)
        with pytest.raises(ValidationError):
            recommend_k_prime(points, k=4, epsilon=0.0)

    def test_recommendation_actually_performs(self):
        """End-to-end: the recommended k' achieves a good ratio."""
        from repro.experiments.harness import approximation_ratio
        from repro.experiments.reference import reference_value
        from repro.streaming.algorithm import StreamingDiversityMaximizer
        from repro.streaming.stream import ArrayStream

        points = sphere_shell(5000, 8, dim=3, seed=6)
        advice = recommend_k_prime(points, k=8, seed=0)
        algo = StreamingDiversityMaximizer(k=8, k_prime=advice.k_prime,
                                           objective="remote-edge")
        result = algo.run(ArrayStream(points.points))
        reference = reference_value(points, 8, "remote-edge")
        assert approximation_ratio(reference, result.value) <= 1.8
